"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments where the ``wheel`` package is unavailable (pip then falls back
to the legacy ``setup.py develop`` code path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Robust Estimation of Resource Consumption for SQL "
        "Queries using Statistical Techniques' (Li et al., VLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
