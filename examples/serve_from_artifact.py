"""Train-once / serve-many: persist a trained estimator and serve from it.

The paper's Section 7.3 deployment argument is that trained models are tiny
(kilobytes) and prediction is negligible next to query optimisation — which
only pays off if the trained model can be *kept*.  This example walks the
full workflow:

1. train a SCALING estimator through the unified Estimator protocol;
2. save it as a versioned binary artifact and inspect its size;
3. load it back in a fresh :class:`~repro.api.EstimationService` session
   and serve several workloads from it, without retraining;
4. verify the served estimates are bit-identical to the in-memory model's.

Run with::

    PYTHONPATH=src python examples/serve_from_artifact.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import EstimationService, TrainingCorpus, make_estimator
from repro.catalog.statistics import StatisticsCatalog
from repro.core.serialization import ModelSizeReport
from repro.core.trainer import TrainerConfig
from repro.ml.mart import MARTConfig
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import split_workload
from repro.workloads.tpch import build_tpch_workload


def main() -> None:
    # -- 1. train through the unified Estimator protocol --------------------
    print("building the training workload (TPC-H, 72 queries) ...")
    workload = build_tpch_workload(scale_factor=0.1, skew_z=1.5, n_queries=72, seed=11)
    train, _ = split_workload(workload, train_fraction=0.8, seed=3)

    estimator = make_estimator(
        "scaling",
        trainer_config=TrainerConfig(mart=MARTConfig(n_iterations=60, max_leaves=8)),
    )
    started = time.perf_counter()
    estimator.fit(TrainingCorpus(queries=tuple(train)))
    print(f"trained in {time.perf_counter() - started:.1f}s "
          f"({len(estimator.model_sets)} model sets)")

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "model.bin"

        # -- 2. persist and inspect ------------------------------------------
        estimator.save(artifact)
        report = ModelSizeReport.for_estimator(estimator)
        print(f"artifact: {artifact.stat().st_size / 1024.0:.1f} KB on disk, "
              f"{report.total_bytes / 1024.0:.1f} KB compact-encoded, "
              f"{report.n_models} models")

        # -- 3. serve many workloads from the loaded artifact ----------------
        started = time.perf_counter()
        service = EstimationService.from_artifact(artifact)
        print(f"service loaded the artifact once in "
              f"{(time.perf_counter() - started) * 1e3:.1f} ms")

        planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
        queries = tpch_template_set().generate(workload.catalog, 60, seed=42)
        plans = [planner.plan(query) for query in queries]

        started = time.perf_counter()
        for _ in range(5):  # admission control asks about the same plans repeatedly
            estimate = service.estimate_workload(plans)
        serve_seconds = time.perf_counter() - started
        print(f"served 5 x {len(plans)} queries in {serve_seconds:.3f}s "
              f"(feature-cache hit rate {service.stats.hit_rate:.0%})")
        for resource in service.resources:
            print(f"  workload total ({resource}): "
                  f"{float(estimate.query_totals(resource).sum()):,.0f}")

        # -- 4. served estimates == in-memory estimates, bit for bit ---------
        direct = estimator.estimate_workload(plans)
        for resource in service.resources:
            assert np.array_equal(
                estimate.query_totals(resource), direct.query_totals(resource)
            )
        print("served estimates are bit-identical to the in-memory estimator's")


if __name__ == "__main__":
    main()
