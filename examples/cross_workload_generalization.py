"""Cross-workload generalisation: train on TPC-H, estimate an unseen workload.

This is the paper's hardest setting (Tables 6, 9 and 12): the model never
sees the test schema, queries or data.  The example trains SCALING and the
plain MART baseline on a TPC-H workload and applies both to the synthetic
"Real-1" reporting workload, showing how the scaling framework keeps the
estimates usable while plain MART collapses.

Run with ``python examples/cross_workload_generalization.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    FeatureMode,
    MARTBaseline,
    ScalingTechnique,
    build_real1_workload,
    build_tpch_workload,
)
from repro.ml.metrics import ErrorSummary, ratio_error


def main() -> None:
    print("Training workload: skewed TPC-H (scale factor 0.2)...")
    train = build_tpch_workload(scale_factor=0.2, skew_z=1.5, n_queries=108, seed=13).queries
    print("Test workload: 'Real-1' sales reporting (unseen schema, bigger data)...")
    test = build_real1_workload(n_queries=48, seed=14).queries

    print("\nFitting SCALING and the plain MART baseline on TPC-H only...")
    scaling = ScalingTechnique().fit(train, resource="cpu", mode=FeatureMode.EXACT)
    mart = MARTBaseline().fit(train, resource="cpu", mode=FeatureMode.EXACT)

    actuals = np.array([q.total_cpu_us for q in test])
    results = {
        "SCALING": scaling.predict_queries(test),
        "MART": mart.predict_queries(test),
    }

    print("\nQuery-level CPU estimation on the unseen workload:")
    for name, estimates in results.items():
        summary = ErrorSummary.from_predictions(estimates, actuals)
        print(f"  {name:<8s} {summary}")

    print("\nWhere the difference comes from (five most expensive test queries):")
    order = np.argsort(actuals)[::-1][:5]
    print(f"{'query':<30s} {'actual (s)':>12s} {'SCALING (s)':>13s} {'MART (s)':>11s}")
    for index in order:
        query = test[index]
        print(
            f"{query.query.name:<30s} {actuals[index] / 1e6:>12.1f} "
            f"{results['SCALING'][index] / 1e6:>13.1f} {results['MART'][index] / 1e6:>11.1f}"
        )

    mart_ratios = ratio_error(results["MART"], actuals)
    scaling_ratios = ratio_error(results["SCALING"], actuals)
    print(
        f"\nMedian ratio error — SCALING: {np.median(scaling_ratios):.2f}x,  "
        f"MART: {np.median(mart_ratios):.2f}x"
    )
    print("Plain MART cannot estimate above the largest training query; the scaling "
          "functions extrapolate the per-unit costs instead.")


if __name__ == "__main__":
    main()
