"""Pipeline-aware scheduling: pack concurrent pipelines under a CPU budget.

Section 5.2 of the paper argues for operator/pipeline-level estimates
because pipelines that do not execute concurrently never compete for
resources.  This example uses the estimator's pipeline-level output to build
a simple scheduler: given a batch of queries and a per-slot CPU budget, it
greedily packs pipelines into execution slots and reports how well the
packing would have worked against the true per-pipeline costs.

Run with ``python examples/pipeline_scheduling.py``.
"""

from __future__ import annotations

from repro import FeatureMode, ScalingTechnique, build_tpch_workload, split_workload


def greedy_pack(items: list[tuple[str, float]], budget: float) -> list[list[tuple[str, float]]]:
    """First-fit-decreasing bin packing of (label, cost) items."""
    slots: list[tuple[float, list[tuple[str, float]]]] = []
    for label, cost in sorted(items, key=lambda item: -item[1]):
        for index, (used, slot_items) in enumerate(slots):
            if used + cost <= budget:
                slot_items.append((label, cost))
                slots[index] = (used + cost, slot_items)
                break
        else:
            slots.append((cost, [(label, cost)]))
    return [slot_items for _, slot_items in slots]


def main() -> None:
    print("Building workload and training the estimator...")
    workload = build_tpch_workload(scale_factor=0.2, skew_z=1.5, n_queries=108, seed=9)
    train, batch = split_workload(workload, train_fraction=0.8, seed=9)
    model = ScalingTechnique().fit(train, resource="cpu", mode=FeatureMode.EXACT)

    # Collect pipeline-level estimates and truths for the incoming batch.
    estimated_items: list[tuple[str, float]] = []
    true_costs: dict[str, float] = {}
    for query in batch[:12]:
        estimates = model.estimator.estimate_pipelines(query.plan, "cpu")
        actual_by_pipeline: dict[int, float] = {}
        for op in query.operators:
            actual_by_pipeline[op.pipeline] = (
                actual_by_pipeline.get(op.pipeline, 0.0) + op.actual_cpu_us
            )
        for pipeline_index, estimate in estimates.items():
            label = f"{query.query.name}/p{pipeline_index}"
            estimated_items.append((label, estimate / 1e6))
            true_costs[label] = actual_by_pipeline.get(pipeline_index, 0.0) / 1e6

    budget_s = max(cost for _, cost in estimated_items) * 1.2
    slots = greedy_pack(estimated_items, budget_s)

    print(f"\nPacked {len(estimated_items)} pipelines into {len(slots)} slots "
          f"(budget {budget_s:.2f} CPU-seconds per slot)\n")
    overloaded = 0
    for index, slot in enumerate(slots):
        estimated_total = sum(cost for _, cost in slot)
        true_total = sum(true_costs[label] for label, _ in slot)
        status = "ok"
        if true_total > budget_s * 1.25:
            status = "OVERLOADED"
            overloaded += 1
        print(f"slot {index:>2d}: {len(slot):>2d} pipelines  estimated={estimated_total:6.2f}s  "
              f"actual={true_total:6.2f}s  {status}")

    print(f"\nSlots whose true load exceeds 125% of the budget: {overloaded}/{len(slots)}")
    print("Accurate pipeline-level estimates keep that number at or near zero.")


if __name__ == "__main__":
    main()
