"""Admission control: gate incoming queries on their estimated resource needs.

The paper motivates resource estimation with admission control: when a query
arrives, the system must decide whether to run it now, queue it, or reject
it, based on how much CPU and I/O it is expected to consume.  This example
builds a small admission controller on top of the trained estimator and
compares its decisions against an oracle that knows the true costs.

Run with ``python examples/admission_control.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import FeatureMode, ScalingTechnique, build_tpch_workload, split_workload


@dataclass
class AdmissionPolicy:
    """Admit, queue or reject queries based on estimated CPU seconds."""

    admit_below_cpu_s: float
    reject_above_cpu_s: float

    def decide(self, estimated_cpu_us: float) -> str:
        cpu_s = estimated_cpu_us / 1e6
        if cpu_s <= self.admit_below_cpu_s:
            return "admit"
        if cpu_s >= self.reject_above_cpu_s:
            return "reject"
        return "queue"


def main() -> None:
    print("Building workload and training the estimator...")
    workload = build_tpch_workload(scale_factor=0.2, skew_z=1.5, n_queries=108, seed=5)
    train, incoming = split_workload(workload, train_fraction=0.7, seed=5)
    model = ScalingTechnique().fit(train, resource="cpu", mode=FeatureMode.EXACT)

    # Thresholds chosen from the training distribution: admit anything below
    # the median training cost, reject anything above the 90th percentile.
    train_costs = sorted(q.total_cpu_us / 1e6 for q in train)
    policy = AdmissionPolicy(
        admit_below_cpu_s=train_costs[len(train_costs) // 2],
        reject_above_cpu_s=train_costs[int(len(train_costs) * 0.9)],
    )
    print(f"Policy: admit < {policy.admit_below_cpu_s:.2f}s, "
          f"reject > {policy.reject_above_cpu_s:.2f}s of estimated CPU time\n")

    agreement = 0
    print(f"{'query':<22s} {'estimate (s)':>13s} {'actual (s)':>12s} {'decision':>10s} {'oracle':>10s}")
    for query in incoming:
        estimate = model.predict_query(query)
        decision = policy.decide(estimate)
        oracle = policy.decide(query.total_cpu_us)
        agreement += decision == oracle
        print(
            f"{query.query.name:<22s} {estimate / 1e6:>13.2f} {query.total_cpu_us / 1e6:>12.2f} "
            f"{decision:>10s} {oracle:>10s}"
        )

    rate = 100.0 * agreement / len(incoming)
    print(f"\nDecisions matching the true-cost oracle: {agreement}/{len(incoming)} ({rate:.0f}%)")


if __name__ == "__main__":
    main()
