"""Quickstart: train a resource estimator on a TPC-H workload and use it.

The script walks the full pipeline of the paper:

1. build a (skewed) TPC-H catalog and generate a query workload;
2. plan and "execute" the queries on the simulated engine, observing actual
   CPU time and logical I/O per operator;
3. train the SCALING technique (MART + scaling functions) on 80% of the
   queries;
4. estimate CPU time and logical I/O for the held-out queries and report the
   paper's error metrics.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import FeatureMode, ScalingTechnique, build_tpch_workload, split_workload
from repro.ml.metrics import ErrorSummary


def main() -> None:
    print("Building a skewed TPC-H workload (scale factor 0.2, Zipf z=1.5)...")
    workload = build_tpch_workload(scale_factor=0.2, skew_z=1.5, n_queries=108, seed=1)
    print(f"  {len(workload)} queries, {len(workload.operators())} operator observations")

    train, test = split_workload(workload, train_fraction=0.8, seed=1)
    print(f"  {len(train)} training queries, {len(test)} test queries")

    print("Training the SCALING estimator (MART + scaling functions)...")
    cpu_model = ScalingTechnique().fit(train, resource="cpu", mode=FeatureMode.EXACT)
    io_model = ScalingTechnique().fit(train, resource="io", mode=FeatureMode.EXACT)

    print("\nPer-query estimates on the held-out test set:")
    print(f"{'query':<22s} {'est CPU (ms)':>14s} {'actual CPU (ms)':>16s} "
          f"{'est I/O':>12s} {'actual I/O':>12s}")
    for query in test[:10]:
        est_cpu = cpu_model.predict_query(query) / 1e3
        est_io = io_model.predict_query(query)
        print(
            f"{query.query.name:<22s} {est_cpu:>14.1f} {query.total_cpu_us / 1e3:>16.1f} "
            f"{est_io:>12.0f} {query.total_logical_io:>12.0f}"
        )

    cpu_estimates = cpu_model.predict_queries(test)
    cpu_actuals = np.array([q.total_cpu_us for q in test])
    io_estimates = io_model.predict_queries(test)
    io_actuals = np.array([q.total_logical_io for q in test])
    print("\nAccuracy over the whole test set (paper metrics):")
    print(f"  CPU time   : {ErrorSummary.from_predictions(cpu_estimates, cpu_actuals)}")
    print(f"  logical I/O: {ErrorSummary.from_predictions(io_estimates, io_actuals)}")

    # Pipeline-level estimates (the granularity used for scheduling).
    sample = test[0]
    pipelines = cpu_model.estimator.estimate_pipelines(sample.plan, "cpu")
    print(f"\nPipeline-level CPU estimates for {sample.query.name}:")
    for index, value in sorted(pipelines.items()):
        print(f"  pipeline {index}: {value / 1e3:.1f} ms")


if __name__ == "__main__":
    main()
