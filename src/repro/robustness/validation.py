"""Input guardrails: reject or flag bad plans before estimation.

:class:`PlanValidator` checks extracted workload features against two
criteria:

* **finiteness** — any NaN/inf feature value is a fatal ``"non-finite"``
  issue; such rows cannot be served by any model and (in ``reject`` mode)
  fail the whole request up front with a :class:`PlanValidationError`;
* **distribution** — rows outside the per-family training envelopes by more
  than ``ood_threshold`` training-ranges are flagged
  ``"out-of-distribution"``; operator families with no recorded envelope are
  flagged ``"unknown-family"``.  Both are advisory: the paper's scaling
  fallbacks exist precisely to serve such inputs, just with wider error
  bars, so they degrade rather than reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.features.definitions import OperatorFamily, features_for_family
from repro.robustness.envelope import FeatureEnvelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import ResourceEstimator
    from repro.features.extractor import OperatorFeatures

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "PlanValidationError",
    "PlanValidator",
]

#: Issue kinds, in decreasing severity.
KIND_NON_FINITE = "non-finite"
KIND_OOD = "out-of-distribution"
KIND_UNKNOWN_FAMILY = "unknown-family"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in one operator's extracted features."""

    plan_index: int
    node_id: int
    kind: str
    family: OperatorFamily
    detail: str
    score: float = 0.0

    @property
    def fatal(self) -> bool:
        """Fatal issues cannot be served by any model tier."""

        return self.kind == KIND_NON_FINITE


@dataclass(frozen=True)
class ValidationReport:
    """All issues found across one extracted workload."""

    issues: tuple[ValidationIssue, ...] = ()
    n_plans: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def fatal_issues(self) -> tuple[ValidationIssue, ...]:
        return tuple(issue for issue in self.issues if issue.fatal)

    @property
    def advisory_issues(self) -> tuple[ValidationIssue, ...]:
        return tuple(issue for issue in self.issues if not issue.fatal)

    def plans_with(self, kind: str) -> tuple[int, ...]:
        """Plan indices carrying at least one issue of ``kind``, sorted."""

        return tuple(
            sorted({issue.plan_index for issue in self.issues if issue.kind == kind})
        )

    def summary(self) -> str:
        if self.ok:
            return f"validated {self.n_plans} plans: clean"
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.kind] = counts.get(issue.kind, 0) + 1
        parts = ", ".join(f"{kind}={count}" for kind, count in sorted(counts.items()))
        return f"validated {self.n_plans} plans: {parts}"


class PlanValidationError(ValueError):
    """Raised in ``reject`` mode when a workload has fatal feature issues."""

    def __init__(self, report: ValidationReport) -> None:
        fatal = report.fatal_issues
        preview = "; ".join(
            f"plan {issue.plan_index} node {issue.node_id} ({issue.family.value}): "
            f"{issue.detail}"
            for issue in fatal[:3]
        )
        suffix = "" if len(fatal) <= 3 else f" (+{len(fatal) - 3} more)"
        super().__init__(
            f"{len(fatal)} operator(s) with non-finite features: {preview}{suffix}"
        )
        self.report = report


@dataclass(frozen=True)
class PlanValidator:
    """Checks extracted workloads against the training-feature envelopes."""

    envelopes: Mapping[OperatorFamily, FeatureEnvelope] = field(default_factory=dict)
    ood_threshold: float = 1.0

    @classmethod
    def for_estimator(
        cls, estimator: "ResourceEstimator", ood_threshold: float = 1.0
    ) -> "PlanValidator":
        """A validator bound to the envelopes the estimator recorded at fit."""

        return cls(envelopes=dict(estimator.envelopes), ood_threshold=ood_threshold)

    def validate_workload(
        self, extracted: Sequence[Mapping[int, "OperatorFeatures"]]
    ) -> ValidationReport:
        """Check every operator row of an extracted workload.

        ``extracted[i]`` is the per-plan ``{node_id: OperatorFeatures}``
        mapping produced by
        :meth:`~repro.core.estimator.ResourceEstimator.extract_plan_features`.
        """

        issues: list[ValidationIssue] = []
        groups: dict[OperatorFamily, list[tuple[int, int, Mapping[str, float]]]] = {}
        for plan_index, plan_features in enumerate(extracted):
            for node_id, op_features in plan_features.items():
                groups.setdefault(op_features.family, []).append(
                    (plan_index, node_id, op_features.values)
                )

        for family, rows in groups.items():
            names = features_for_family(family)
            matrix = np.array(
                [[values.get(name, 0.0) for name in names] for _, _, values in rows],
                dtype=np.float64,
            ).reshape(len(rows), len(names))
            finite = np.isfinite(matrix)
            row_finite = finite.all(axis=1)
            for row_index in np.flatnonzero(~row_finite):
                plan_index, node_id, _ = rows[row_index]
                bad = [names[col] for col in np.flatnonzero(~finite[row_index])]
                issues.append(
                    ValidationIssue(
                        plan_index=plan_index,
                        node_id=node_id,
                        kind=KIND_NON_FINITE,
                        family=family,
                        detail=f"non-finite feature(s): {', '.join(bad)}",
                        score=float("inf"),
                    )
                )

            envelope = self.envelopes.get(family)
            if envelope is None:
                for plan_index, node_id, _ in rows:
                    issues.append(
                        ValidationIssue(
                            plan_index=plan_index,
                            node_id=node_id,
                            kind=KIND_UNKNOWN_FAMILY,
                            family=family,
                            detail="no training envelope recorded for this family",
                        )
                    )
                continue

            scores = envelope.out_scores(matrix)
            ood_rows = np.flatnonzero(row_finite & (scores > self.ood_threshold))
            for row_index in ood_rows:
                plan_index, node_id, _ = rows[row_index]
                issues.append(
                    ValidationIssue(
                        plan_index=plan_index,
                        node_id=node_id,
                        kind=KIND_OOD,
                        family=family,
                        detail=(
                            f"features {scores[row_index]:.3g} training-ranges "
                            f"outside the fit envelope"
                        ),
                        score=float(scores[row_index]),
                    )
                )

        issues.sort(key=lambda issue: (issue.plan_index, issue.node_id, issue.kind))
        return ValidationReport(issues=tuple(issues), n_plans=len(extracted))

    def require_valid(
        self, extracted: Sequence[Mapping[int, "OperatorFeatures"]]
    ) -> ValidationReport:
        """Validate and raise :class:`PlanValidationError` on fatal issues."""

        report = self.validate_workload(extracted)
        if report.fatal_issues:
            raise PlanValidationError(report)
        return report
