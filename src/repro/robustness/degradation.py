"""The explicit fallback ladder and its per-estimate report.

When the guarded estimation path cannot serve a (plan, operator, resource)
from the trained MART model set it walks down an explicit ladder:

====================  =========================================================
tier                  source of the estimate
====================  =========================================================
``MODEL``             per-family MART model set (the paper's full technique)
``SCALING``           fitted ``alpha · g(cardinality)`` scaling function
                      (the paper's designed fallback, ``core/scaling.py``)
``FAMILY_RATE``       per-(family, resource) median per-tuple rate
``GLOBAL_DEFAULT``    global per-resource median per-tuple rate
====================  =========================================================

Every guarded :class:`~repro.core.estimator.WorkloadEstimate` carries a
:class:`DegradationReport` recording which tier served each (plan, resource),
so callers and tests can *see* degradation instead of inferring it from
suspicious numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.scaling import FittedScaling, make_scaling_function

__all__ = [
    "DegradationTier",
    "DegradedOperator",
    "DegradationReport",
    "ScalingFallback",
]


class DegradationTier(IntEnum):
    """Fallback ladder position; larger values mean deeper degradation."""

    MODEL = 0
    SCALING = 1
    FAMILY_RATE = 2
    GLOBAL_DEFAULT = 3


@dataclass(frozen=True)
class DegradedOperator:
    """One operator estimate that was served below the ``MODEL`` tier."""

    plan_index: int
    node_id: int
    resource: str
    tier: DegradationTier
    reason: str


@dataclass(frozen=True)
class DegradationReport:
    """Which tier served each (plan, resource) of a workload estimate.

    ``entries`` lists only operators served *below* the model tier; a clean
    estimate has an empty report.  ``ood_plans`` maps plan index to the worst
    out-of-distribution score among its operators, for plans whose score
    exceeded the caller's threshold.
    """

    entries: tuple[DegradedOperator, ...] = ()
    ood_plans: Mapping[int, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.entries and not self.ood_plans

    @property
    def count(self) -> int:
        return len(self.entries)

    def tier(self, plan_index: int, resource: str) -> DegradationTier:
        """Worst (deepest) tier that served any operator of the plan."""

        worst = DegradationTier.MODEL
        for entry in self.entries:
            if entry.plan_index == plan_index and entry.resource == resource:
                worst = max(worst, entry.tier)
        return worst

    def tiers_used(self) -> tuple[DegradationTier, ...]:
        """Distinct tiers present in the report, shallowest first."""

        return tuple(sorted({entry.tier for entry in self.entries}))

    def by_tier(self) -> dict[DegradationTier, int]:
        counts: dict[DegradationTier, int] = {}
        for entry in self.entries:
            counts[entry.tier] = counts.get(entry.tier, 0) + 1
        return counts

    def summary(self) -> str:
        if self.clean:
            return "all estimates served by the model tier"
        parts = [
            f"{tier.name}={count}" for tier, count in sorted(self.by_tier().items())
        ]
        if self.ood_plans:
            parts.append(f"ood_plans={len(self.ood_plans)}")
        return "degraded: " + ", ".join(parts)

    @classmethod
    def merge(cls, reports: Iterable["DegradationReport"]) -> "DegradationReport":
        entries: list[DegradedOperator] = []
        ood: dict[int, float] = {}
        for report in reports:
            entries.extend(report.entries)
            for plan_index, score in report.ood_plans.items():
                ood[plan_index] = max(score, ood.get(plan_index, 0.0))
        return cls(entries=tuple(entries), ood_plans=ood)


@dataclass(frozen=True)
class ScalingFallback:
    """A fitted ``alpha · g(cardinality)`` curve for one (family, resource).

    This is the paper's scaling technique repurposed as the first degradation
    tier below the MART models: fitted at training time from (cardinality,
    resource) pairs, it needs only an output cardinality at serving time.
    """

    function: str
    alpha: float

    def predict_rows(self, cardinalities: np.ndarray) -> np.ndarray:
        """Vectorised prediction over sanitised (non-negative) cardinalities."""

        g = make_scaling_function(self.function)
        cards = np.maximum(np.asarray(cardinalities, dtype=np.float64), 0.0)
        return np.maximum(self.alpha * np.asarray(g(cards), dtype=np.float64), 0.0)

    @classmethod
    def from_fitted(cls, fitted: FittedScaling) -> "ScalingFallback":
        return cls(function=fitted.function.name, alpha=float(fitted.alpha))

    def record(self) -> dict[str, Any]:
        return {"function": self.function, "alpha": float(self.alpha)}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ScalingFallback":
        fallback = cls(function=str(record["function"]), alpha=float(record["alpha"]))
        make_scaling_function(fallback.function)  # validate eagerly
        return fallback
