"""Safe artifact lifecycle: retried loads and canary-checked hot swaps.

Two failure classes threaten a long-running estimation service:

* **transient IO** while reading an artifact (network filesystem hiccup,
  artifact mid-publish) — handled by :func:`load_estimator_with_retry`,
  bounded retries with exponential backoff on :class:`OSError`;
* **plausible-but-broken artifacts** — a candidate that decodes fine (CRC
  intact) yet predicts garbage.  :func:`run_canary_checks` probes every
  model set with envelope-derived canary inputs and requires finite,
  non-negative, envelope-scaled-bounded predictions before
  :meth:`~repro.api.EstimationService.swap_artifact` will promote it.

Decode errors (:class:`~repro.core.serialization.EstimatorCodecError`) are
never retried: a corrupt artifact stays corrupt.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.features.definitions import OperatorFamily

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import ResourceEstimator

__all__ = [
    "ArtifactSwapError",
    "CanaryFailure",
    "CanaryReport",
    "load_estimator_with_retry",
    "run_canary_checks",
]

_LOGGER = logging.getLogger("repro.robustness.lifecycle")

#: Synthetic canary cardinalities used when no envelope is recorded
#: (v1 artifacts): one typical and one large-but-sane row.
_SYNTHETIC_CANARY_VALUES = (1.0, 1000.0)


class ArtifactSwapError(RuntimeError):
    """A candidate artifact failed validation; the live estimator is kept."""


def load_estimator_with_retry(
    path: str | Path,
    retries: int = 3,
    backoff: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
    reader: "Callable[[Path], bytes] | None" = None,
    mmap: bool = False,
) -> "ResourceEstimator":
    """Load an artifact, retrying transient IO errors with backoff.

    Reads are attempted up to ``retries + 1`` times; attempt ``n`` sleeps
    ``backoff * 2**n`` seconds first.  Only :class:`OSError` is retried —
    and not :class:`FileNotFoundError`, which is almost always permanent
    (atomic publishes via ``os.replace`` never expose a missing file).
    Decode failures raise
    :class:`~repro.core.serialization.EstimatorCodecError` immediately; so
    does the final IO failure, chained from the underlying ``OSError``.

    With ``mmap=True`` (and no custom ``reader``) the artifact is
    memory-mapped instead of read, so version-3 inference arrays are
    zero-copy views into the file (see
    :func:`repro.core.serialization.load_estimator`).
    """

    from repro.core.serialization import (
        EstimatorCodecError,
        estimator_from_bytes,
        mmap_artifact,
    )

    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    resolved = Path(path)
    read: "Callable[[Path], bytes | memoryview]"
    if reader is not None:
        read = reader
    elif mmap:
        read = mmap_artifact
    else:
        read = Path.read_bytes
    last_error: OSError | None = None
    for attempt in range(retries + 1):
        if attempt:
            sleep(backoff * 2 ** (attempt - 1))
        try:
            data = read(resolved)
        except FileNotFoundError:
            raise
        except OSError as exc:
            last_error = exc
            _LOGGER.warning(
                "transient read failure for %s (attempt %d/%d): %s",
                resolved,
                attempt + 1,
                retries + 1,
                exc,
            )
            continue
        return estimator_from_bytes(data)
    raise EstimatorCodecError(
        f"failed to read estimator artifact {resolved} after "
        f"{retries + 1} attempt(s): {last_error}"
    ) from last_error


@dataclass(frozen=True)
class CanaryFailure:
    """One canary probe a candidate artifact failed.

    ``family`` is ``None`` for estimator-wide failures (e.g. a non-finite
    global fallback rate).
    """

    family: "OperatorFamily | None"
    resource: str
    reason: str


@dataclass(frozen=True)
class CanaryReport:
    """Outcome of probing a candidate estimator with canary inputs."""

    failures: tuple[CanaryFailure, ...]
    n_model_sets: int
    n_predictions: int

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "passed" if self.passed else f"FAILED ({len(self.failures)} probes)"
        return (
            f"canary {status}: {self.n_predictions} predictions across "
            f"{self.n_model_sets} model sets"
        )


def _canary_matrix(
    estimator: "ResourceEstimator", family: OperatorFamily
) -> np.ndarray:
    """Envelope-derived canary rows, or synthetic rows for v1 artifacts."""

    from repro.features.definitions import features_for_family

    envelope = estimator.envelopes.get(family)
    if envelope is not None:
        return envelope.canary_rows()
    width = len(features_for_family(family))
    return np.array(
        [[value] * width for value in _SYNTHETIC_CANARY_VALUES], dtype=np.float64
    )


def _canary_bound(
    estimator: "ResourceEstimator",
    family: OperatorFamily,
    resource: str,
    cardinalities: np.ndarray,
    margin: float,
) -> "np.ndarray | None":
    """Upper bound per canary row, scaled from the recorded per-tuple rates."""

    rate = estimator.family_rates.get((family, resource))
    if rate is None:
        fallback = estimator.fallbacks.get(resource)
        rate = fallback.per_tuple if fallback is not None else None
    if rate is None or not np.isfinite(rate) or rate <= 0.0:
        return None
    return margin * rate * np.maximum(cardinalities, 1.0)


def run_canary_checks(
    estimator: "ResourceEstimator", margin: float = 1e9
) -> CanaryReport:
    """Probe every model set of an estimator with canary predictions.

    A probe fails when a prediction is non-finite, negative, or exceeds
    ``margin`` times the recorded per-tuple rate at the canary cardinality
    (the bound is skipped when no rate was recorded, e.g. for artifacts
    written before rates existed).  Global fallback rates are checked for
    finiteness as well.
    """

    from repro.features.definitions import features_for_family

    failures: list[CanaryFailure] = []
    n_predictions = 0
    for (family, resource), model_set in sorted(
        estimator.model_sets.items(), key=lambda item: (item[0][0].value, item[0][1])
    ):
        matrix = _canary_matrix(estimator, family)
        names = features_for_family(family)
        cards = np.maximum(
            matrix[:, names.index("COUT")], matrix[:, names.index("CIN1")]
        )
        try:
            predictions = np.asarray(
                model_set.predict_batch(matrix), dtype=np.float64
            )
        except (ValueError, ArithmeticError, RuntimeError) as exc:
            failures.append(
                CanaryFailure(family, resource, f"canary prediction raised: {exc}")
            )
            continue
        n_predictions += int(predictions.shape[0])
        if not np.isfinite(predictions).all():
            failures.append(
                CanaryFailure(family, resource, "non-finite canary prediction")
            )
            continue
        if (predictions < 0.0).any():
            failures.append(
                CanaryFailure(family, resource, "negative canary prediction")
            )
            continue
        bound = _canary_bound(estimator, family, resource, cards, margin)
        if bound is not None and (predictions > bound).any():
            worst = float(np.max(predictions))
            failures.append(
                CanaryFailure(
                    family,
                    resource,
                    f"canary prediction {worst:.3g} exceeds envelope-scaled bound",
                )
            )
    for resource, fallback in sorted(estimator.fallbacks.items()):
        if not np.isfinite(fallback.per_tuple):
            failures.append(
                CanaryFailure(
                    None,
                    resource,
                    f"non-finite global fallback rate for {resource!r}",
                )
            )
    return CanaryReport(
        failures=tuple(failures),
        n_model_sets=len(estimator.model_sets),
        n_predictions=n_predictions,
    )
