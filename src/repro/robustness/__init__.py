"""Guardrailed serving: validation, degradation, safe artifact lifecycle.

The paper's headline claim is *robust* estimation — accuracy degrades
gracefully on unseen plans and changed hardware, with the scaling technique
as the designed fallback when no exact-profile model applies.  This package
gives the serving stack the matching defensive structure:

* :mod:`repro.robustness.envelope` — per-family training-feature envelopes
  (min/max/quantiles) recorded at fit time, used for out-of-distribution
  detection and canary inputs;
* :mod:`repro.robustness.validation` — :class:`PlanValidator`, which rejects
  or flags plans with non-finite feature values and detects OOD inputs;
* :mod:`repro.robustness.degradation` — the explicit fallback ladder (MART
  model → scaling technique → per-family rate → global default) and the
  :class:`DegradationReport` attached to every guarded
  :class:`~repro.core.estimator.WorkloadEstimate`;
* :mod:`repro.robustness.lifecycle` — bounded-retry artifact loading and
  canary-checked hot swap for :class:`~repro.api.EstimationService`;
* :mod:`repro.robustness.faults` — a seeded, deterministic
  :class:`FaultInjector` that makes every degradation tier and rollback
  path reachable from tests.

Exports resolve lazily (PEP 562): :mod:`repro.core.estimator` imports the
``degradation`` and ``envelope`` submodules while ``lifecycle`` imports the
codec, so an eager ``__init__`` would close an import cycle through
``core.serialization``.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.degradation import (
        DegradationReport,
        DegradationTier,
        DegradedOperator,
        ScalingFallback,
    )
    from repro.robustness.envelope import FeatureEnvelope
    from repro.robustness.faults import FaultInjector
    from repro.robustness.lifecycle import (
        ArtifactSwapError,
        CanaryFailure,
        CanaryReport,
        load_estimator_with_retry,
        run_canary_checks,
    )
    from repro.robustness.validation import (
        PlanValidationError,
        PlanValidator,
        ValidationIssue,
        ValidationReport,
    )

_EXPORTS: dict[str, str] = {
    "DegradationTier": "degradation",
    "DegradedOperator": "degradation",
    "DegradationReport": "degradation",
    "ScalingFallback": "degradation",
    "FeatureEnvelope": "envelope",
    "PlanValidator": "validation",
    "PlanValidationError": "validation",
    "ValidationIssue": "validation",
    "ValidationReport": "validation",
    "ArtifactSwapError": "lifecycle",
    "CanaryFailure": "lifecycle",
    "CanaryReport": "lifecycle",
    "load_estimator_with_retry": "lifecycle",
    "run_canary_checks": "lifecycle",
    "FaultInjector": "faults",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
