"""Deterministic fault injection for robustness tests.

Every fault is derived from a seeded RNG (:func:`repro.data.rng.make_rng`),
so a failing test reproduces byte-for-byte.  The injector covers the four
failure classes the serving guardrails defend against:

* **artifact corruption** — flipped bytes, truncation, wrong format version
  (all CRC-/version-detectable by the codec);
* **feature corruption** — NaN/inf values planted in extracted features;
* **model faults** — shims that make a trained model set raise, return NaN
  or return negatives, driving the degradation ladder;
* **plausible-but-broken artifacts** — CRC-valid artifacts whose models
  predict garbage, catchable only by the canary checks.
"""

from __future__ import annotations

import copy
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.data.rng import make_rng
from repro.features.definitions import OperatorFamily

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import ResourceEstimator
    from repro.features.extractor import OperatorFeatures

__all__ = ["FaultInjector", "TransientReader"]

#: Artifact layout: 8-byte magic, then ``<HI`` (version u16, CRC u32).
_MAGIC_BYTES = 8
_VERSION_OFFSET = _MAGIC_BYTES
_HEADER_BYTES = _MAGIC_BYTES + struct.calcsize("<HI")


class TransientReader:
    """A file reader that fails with :class:`OSError` for the first N calls."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def __call__(self, path: Path) -> bytes:
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError(f"injected transient IO failure #{self.calls}")
        return Path(path).read_bytes()


class _BrokenModelSet:
    """Shim standing in for a trained model set; fails in a chosen mode."""

    def __init__(self, mode: str) -> None:
        if mode not in ("raise", "nan", "negative"):
            raise ValueError(f"unknown poison mode {mode!r}")
        self.mode = mode

    def predict_batch(self, matrix: np.ndarray) -> np.ndarray:
        n = int(np.asarray(matrix).shape[0])
        if self.mode == "raise":
            raise RuntimeError("injected model fault")
        if self.mode == "nan":
            return np.full(n, np.nan, dtype=np.float64)
        return np.full(n, -1.0, dtype=np.float64)


@dataclass
class FaultInjector:
    """Seeded source of deterministic faults for robustness tests."""

    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed, "fault-injector")

    # -- artifact faults -----------------------------------------------------------------
    def corrupt_artifact(
        self, source: str | Path, dest: str | Path, n_flips: int = 4
    ) -> Path:
        """Copy an artifact with ``n_flips`` random body bytes XOR-flipped.

        Flips land strictly after the envelope header, so the corruption is
        caught by the CRC check rather than the magic/version checks.
        """

        data = bytearray(Path(source).read_bytes())
        if len(data) <= _HEADER_BYTES:
            raise ValueError(f"artifact {source} is too small to corrupt")
        offsets = self._rng.integers(_HEADER_BYTES, len(data), size=n_flips)
        for offset in offsets:
            data[int(offset)] ^= int(self._rng.integers(1, 256))
        out = Path(dest)
        out.write_bytes(bytes(data))
        return out

    def truncate_artifact(
        self, source: str | Path, dest: str | Path, keep_fraction: float = 0.5
    ) -> Path:
        """Copy an artifact keeping only the leading ``keep_fraction`` bytes."""

        if not 0.0 < keep_fraction < 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1), got {keep_fraction}")
        data = Path(source).read_bytes()
        out = Path(dest)
        out.write_bytes(data[: max(1, int(len(data) * keep_fraction))])
        return out

    def wrong_version_artifact(
        self, source: str | Path, dest: str | Path, version_bump: int = 100
    ) -> Path:
        """Copy an artifact with its format version field patched upward.

        The CRC covers only the body, so the copy remains CRC-consistent —
        the loader must reject it on the version check alone.
        """

        data = bytearray(Path(source).read_bytes())
        if len(data) < _HEADER_BYTES:
            raise ValueError(f"artifact {source} is too small to re-version")
        (current,) = struct.unpack_from("<H", data, _VERSION_OFFSET)
        struct.pack_into("<H", data, _VERSION_OFFSET, current + version_bump)
        out = Path(dest)
        out.write_bytes(bytes(data))
        return out

    def poisoned_artifact(
        self, estimator: "ResourceEstimator", dest: str | Path, mode: str = "nan"
    ) -> Path:
        """Write a CRC-valid artifact whose models predict garbage.

        ``mode="nan"`` plants a NaN initial prediction in every model of the
        first (sorted) model set; ``mode="huge"`` plants ``1e200``, which
        stays finite but blows the canary's envelope-scaled bound.  Only the
        canary checks can catch these — the codec round-trips them happily.
        """

        from repro.core.serialization import save_estimator

        if mode not in ("nan", "huge"):
            raise ValueError(f"unknown poison mode {mode!r}")
        poisoned = copy.deepcopy(estimator)
        if not poisoned.model_sets:
            raise ValueError("estimator has no model sets to poison")
        key = min(poisoned.model_sets, key=lambda k: (k[0].value, k[1]))
        model_set = poisoned.model_sets[key]
        value = float("nan") if mode == "nan" else 1e200
        for model in model_set.models:
            if model.model_ is not None:
                model.model_.initial_prediction_ = value
        # Scaled models clip their MART output to the training target range,
        # which would neutralise the poison; the plain (no-steps) model never
        # clips, so pointing the set's default at it guarantees the poison
        # survives to the canary probe.
        model_set.default_model = next(
            (m for m in model_set.models if not m.steps), model_set.default_model
        )
        return save_estimator(poisoned, dest)

    # -- feature faults -----------------------------------------------------------------
    def corrupt_features(
        self,
        extracted: Sequence[Mapping[int, "OperatorFeatures"]],
        rate: float = 0.25,
        kind: str = "nan",
    ) -> list[dict[int, "OperatorFeatures"]]:
        """Deep-copy extracted features with ~``rate`` of operators corrupted.

        Each corrupted operator has one randomly chosen feature replaced by
        NaN (``kind="nan"``) or +inf (``kind="inf"``).  At least one operator
        is always corrupted.  The input is never mutated.
        """

        from repro.features.extractor import OperatorFeatures

        if kind not in ("nan", "inf"):
            raise ValueError(f"unknown corruption kind {kind!r}")
        poison = float("nan") if kind == "nan" else float("inf")
        corrupted: list[dict[int, OperatorFeatures]] = []
        n_corrupted = 0
        first_slot: tuple[int, int] | None = None
        for plan_index, plan_features in enumerate(extracted):
            plan_copy: dict[int, OperatorFeatures] = {}
            for node_id, op_features in plan_features.items():
                values = dict(op_features.values)
                if first_slot is None:
                    first_slot = (plan_index, node_id)
                if values and self._rng.random() < rate:
                    target = sorted(values)[int(self._rng.integers(0, len(values)))]
                    values[target] = poison
                    n_corrupted += 1
                plan_copy[node_id] = OperatorFeatures(
                    family=op_features.family, values=values
                )
            corrupted.append(plan_copy)
        if n_corrupted == 0 and first_slot is not None:
            plan_index, node_id = first_slot
            op_features = corrupted[plan_index][node_id]
            values = dict(op_features.values)
            target = sorted(values)[0]
            values[target] = poison
            corrupted[plan_index][node_id] = OperatorFeatures(
                family=op_features.family, values=values
            )
        return corrupted

    # -- model faults -------------------------------------------------------------------
    def poison_model(
        self,
        estimator: "ResourceEstimator",
        family: OperatorFamily,
        resource: str,
        mode: str = "raise",
    ) -> "ResourceEstimator":
        """A deep copy of the estimator whose (family, resource) model fails.

        ``mode`` is ``"raise"`` (prediction raises :class:`RuntimeError`),
        ``"nan"`` or ``"negative"``.  The original estimator is untouched.
        """

        poisoned = copy.deepcopy(estimator)
        key = (family, resource)
        if key not in poisoned.model_sets:
            raise KeyError(f"no model set for {family.value}/{resource}")
        poisoned.model_sets[key] = _BrokenModelSet(mode)  # type: ignore[assignment]
        return poisoned

    # -- IO faults ----------------------------------------------------------------------
    def transient_reader(self, failures: int = 2) -> TransientReader:
        """A reader for ``load_estimator_with_retry`` failing ``failures`` times."""

        return TransientReader(failures)
