"""Per-family training-feature envelopes for OOD detection and canaries.

An envelope records, for one operator family, the observed range and a few
quantiles of every feature column seen at ``fit`` time.  At serving time the
envelope answers two questions cheaply and vectorised:

* *how far outside the training distribution is this row?*
  (:meth:`FeatureEnvelope.out_scores`), and
* *what does a typical / extreme-but-seen input look like?*
  (:meth:`FeatureEnvelope.canary_rows`), used by the artifact hot-swap
  canary checks.

Envelopes are plain data: they round-trip through :meth:`record` /
:meth:`from_record` and are persisted in the versioned artifact codec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.features.definitions import OperatorFamily, features_for_family

__all__ = ["FeatureEnvelope"]

# Guards the normalisation denominator for constant feature columns.
_MIN_SPAN = 1e-9


@dataclass(frozen=True)
class FeatureEnvelope:
    """Observed per-feature bounds and quantiles for one operator family."""

    family: OperatorFamily
    feature_names: tuple[str, ...]
    low: np.ndarray
    high: np.ndarray
    q05: np.ndarray
    q50: np.ndarray
    q95: np.ndarray
    n_rows: int

    @classmethod
    def fit(cls, family: OperatorFamily, matrix: np.ndarray) -> "FeatureEnvelope":
        """Summarise a dense ``(rows, features)`` training matrix."""

        data = np.asarray(matrix, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"envelope for {family.value} needs a non-empty 2-d matrix, "
                f"got shape {data.shape}"
            )
        names = tuple(features_for_family(family))
        if data.shape[1] != len(names):
            raise ValueError(
                f"envelope for {family.value}: expected {len(names)} feature "
                f"columns, got {data.shape[1]}"
            )
        quantiles = np.quantile(data, (0.05, 0.5, 0.95), axis=0)
        return cls(
            family=family,
            feature_names=names,
            low=np.min(data, axis=0),
            high=np.max(data, axis=0),
            q05=quantiles[0],
            q50=quantiles[1],
            q95=quantiles[2],
            n_rows=int(data.shape[0]),
        )

    def out_scores(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row OOD score: worst normalised excursion outside [low, high].

        A row fully inside the training box scores 0.0; a score of 1.0 means
        some feature lies a full training-range beyond the observed bounds.
        Non-finite features score ``inf`` — they are out of any envelope.
        """

        data = np.asarray(matrix, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(self.feature_names):
            raise ValueError(
                f"envelope for {self.family.value}: expected "
                f"(rows, {len(self.feature_names)}) matrix, got shape {data.shape}"
            )
        span = np.maximum(self.high - self.low, _MIN_SPAN)
        below = np.maximum(self.low - data, 0.0)
        above = np.maximum(data - self.high, 0.0)
        scores = np.max((below + above) / span, axis=1)
        scores[~np.isfinite(data).all(axis=1)] = np.inf
        return scores

    def canary_rows(self) -> np.ndarray:
        """Representative inputs for canary predictions: median, p95, max."""

        return np.stack((self.q50, self.q95, self.high)).astype(np.float64)

    def record(self) -> dict[str, Any]:
        """JSON-serialisable representation for the artifact codec."""

        return {
            "family": self.family.value,
            "feature_names": list(self.feature_names),
            "low": [float(v) for v in self.low],
            "high": [float(v) for v in self.high],
            "q05": [float(v) for v in self.q05],
            "q50": [float(v) for v in self.q50],
            "q95": [float(v) for v in self.q95],
            "n_rows": self.n_rows,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FeatureEnvelope":
        family = OperatorFamily(record["family"])
        names: Sequence[str] = record["feature_names"]

        def _column(key: str) -> np.ndarray:
            values = np.asarray(record[key], dtype=np.float64)
            if values.shape != (len(names),):
                raise ValueError(
                    f"envelope record for {family.value}: field {key!r} has "
                    f"shape {values.shape}, expected ({len(names)},)"
                )
            return values

        return cls(
            family=family,
            feature_names=tuple(str(name) for name in names),
            low=_column("low"),
            high=_column("high"),
            q05=_column("q05"),
            q50=_column("q50"),
            q95=_column("q95"),
            n_rows=int(record["n_rows"]),
        )
