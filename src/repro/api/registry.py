"""The single registry of estimation techniques.

Every technique the paper evaluates is constructible here by key — both as
the raw :class:`~repro.baselines.base.BaselineEstimator` the experiment
harness consumes (:func:`make_technique`, :func:`standard_lineup`) and as a
unified :class:`~repro.api.protocol.Estimator` with persistence
(:func:`make_estimator`).  The experiment tables, the CLI and the examples
all construct techniques through this module instead of importing baseline
classes ad hoc, so adding a technique means one :func:`register_estimator`
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.baselines.akdere import AkdereOperatorBaseline
from repro.baselines.base import BaselineEstimator
from repro.baselines.linear import LinearBaseline
from repro.baselines.mart import MARTBaseline
from repro.baselines.opt import OptimizerBaseline
from repro.baselines.regtree import RegTreeBaseline
from repro.baselines.scaling import ScalingTechnique
from repro.baselines.svm import SVMBaseline
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.ml.mart import MARTConfig
from repro.api.adapters import TechniqueAdapter
from repro.api.protocol import Estimator

__all__ = [
    "EstimatorSpec",
    "register_estimator",
    "available_estimators",
    "get_spec",
    "make_technique",
    "make_estimator",
    "standard_lineup",
    "DEFAULT_LINEUP",
]


@dataclass(frozen=True)
class EstimatorSpec:
    """One registered estimation technique."""

    key: str
    summary: str
    #: Builds the raw baseline the experiment harness evaluates.
    factory: Callable[..., BaselineEstimator]
    #: Optional native protocol implementation; when ``None`` the technique
    #: is adapted through :class:`~repro.api.adapters.TechniqueAdapter`.
    estimator_factory: Callable[..., Estimator] | None = None


_REGISTRY: dict[str, EstimatorSpec] = {}


def register_estimator(
    key: str,
    summary: str,
    factory: Callable[..., BaselineEstimator],
    estimator_factory: Callable[..., Estimator] | None = None,
) -> None:
    """Register a technique under ``key`` (lower-case identifier)."""
    if key in _REGISTRY:
        raise ValueError(f"estimator key {key!r} is already registered")
    _REGISTRY[key] = EstimatorSpec(
        key=key, summary=summary, factory=factory, estimator_factory=estimator_factory
    )


def available_estimators() -> tuple[str, ...]:
    """All registered technique keys, in registration order."""
    return tuple(_REGISTRY)


def get_spec(key: str) -> EstimatorSpec:
    """The registered spec for ``key``; raises ``KeyError`` with the known keys."""
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown estimator {key!r}; known: {known}") from None


def make_technique(key: str, **options: Any) -> BaselineEstimator:
    """Construct the raw baseline technique registered under ``key``."""
    return get_spec(key).factory(**options)


def make_estimator(key: str, **options: Any) -> Estimator:
    """Construct the technique behind the unified Estimator protocol.

    The SCALING technique returns a native
    :class:`~repro.core.estimator.ResourceEstimator` (pickle-free binary
    persistence); every other key returns a
    :class:`~repro.api.adapters.TechniqueAdapter`.
    """
    spec = get_spec(key)
    if spec.estimator_factory is not None:
        return spec.estimator_factory(**options)
    return TechniqueAdapter(key, spec.factory, options)


def _scaling_estimator(
    mart_config: MARTConfig | None = None,
    trainer_config: TrainerConfig | None = None,
) -> ResourceEstimator:
    if trainer_config is None:
        trainer_config = TrainerConfig(mart=mart_config or MARTConfig())
    return ResourceEstimator(trainer_config=trainer_config)


register_estimator(
    "opt",
    "optimizer cost x per-operator adjustment factor (Section 7, technique 1)",
    OptimizerBaseline,
)
register_estimator(
    "akdere",
    "operator-level linear models with bottom-up propagation (Akdere et al. [8])",
    AkdereOperatorBaseline,
)
register_estimator(
    "linear",
    "per-family linear regression with greedy feature selection",
    LinearBaseline,
)
register_estimator(
    "mart",
    "per-family MART without the scaling framework",
    MARTBaseline,
)
register_estimator(
    "svm",
    "per-family kernel regression (WEKA SVM substitute)",
    SVMBaseline,
)
register_estimator(
    "regtree",
    "boosted piecewise-linear trees (transform-regression stand-in)",
    RegTreeBaseline,
)
register_estimator(
    "scaling",
    "MART + scaling functions + online model selection (the paper's method)",
    ScalingTechnique,
    estimator_factory=_scaling_estimator,
)

#: Technique keys of the paper's full CPU-experiment line-up, in table order.
DEFAULT_LINEUP: tuple[str, ...] = (
    "opt",
    "akdere",
    "linear",
    "mart",
    "svm",
    "regtree",
    "scaling",
)


def standard_lineup(
    fast: bool = True, mart_config: MARTConfig | None = None
) -> list[BaselineEstimator]:
    """The full line-up of techniques compared in the CPU experiments.

    ``fast`` selects smaller model capacities so the whole experiment suite
    runs quickly; the benchmark harness can request paper-scale settings.
    An explicit ``mart_config`` overrides the capacity of every MART-based
    technique (plain MART and SCALING).
    """
    if mart_config is None:
        mart_config = MARTConfig(n_iterations=150 if fast else 1000)
    per_key_options: dict[str, dict[str, Any]] = {
        "mart": {"mart_config": mart_config},
        "scaling": {"mart_config": mart_config},
    }
    return [
        make_technique(key, **per_key_options.get(key, {})) for key in DEFAULT_LINEUP
    ]
