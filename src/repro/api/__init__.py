"""Public train-once / serve-many API.

Three pieces turn the library's estimation internals into a deployable
surface (the redesign layered *above* the scalar/batch estimation core):

* the unified :class:`Estimator` protocol (:mod:`repro.api.protocol`) —
  ``fit`` / ``predict_batch`` / ``save`` / ``load`` — implemented natively
  by :class:`~repro.core.estimator.ResourceEstimator` and by an adapter
  over every baseline technique;
* the technique **registry** (:mod:`repro.api.registry`), through which the
  experiment harness, the CLI and user code construct any technique by key;
* the :class:`EstimationService` facade (:mod:`repro.api.service`), which
  loads a persisted model once and serves many ``estimate_workload`` calls
  with per-plan feature-row caching.

Typical workflow::

    from repro.api import TrainingCorpus, make_estimator, EstimationService

    estimator = make_estimator("scaling")
    estimator.fit(TrainingCorpus.from_workload(train_workload))
    estimator.save("model.bin")
    ...
    service = EstimationService.from_artifact("model.bin")   # loads once
    estimate = service.estimate_workload(plans)              # serves many
"""

from typing import TYPE_CHECKING

from repro.api.adapters import TechniqueAdapter, featureize_plan
from repro.api.protocol import Estimator, TrainingCorpus
from repro.api.registry import (
    DEFAULT_LINEUP,
    EstimatorSpec,
    available_estimators,
    get_spec,
    make_estimator,
    make_technique,
    register_estimator,
    standard_lineup,
)
from repro.api.service import (
    EstimationObserver,
    EstimationService,
    ServiceStats,
    StatsSnapshot,
)
from repro.core.serialization import (
    ARTIFACT_MAGIC,
    EstimatorCodecError,
    load_estimator as load_native_estimator,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.core.estimator import ResourceEstimator

__all__ = [
    "Estimator",
    "TrainingCorpus",
    "TechniqueAdapter",
    "featureize_plan",
    "EstimatorSpec",
    "DEFAULT_LINEUP",
    "available_estimators",
    "get_spec",
    "make_estimator",
    "make_technique",
    "register_estimator",
    "standard_lineup",
    "EstimationObserver",
    "EstimationService",
    "ServiceStats",
    "StatsSnapshot",
    "EstimatorCodecError",
    "load_artifact",
]


def load_artifact(path: "str | Path") -> "ResourceEstimator | TechniqueAdapter":
    """Load any estimator artifact, dispatching on the leading magic bytes.

    Native :class:`~repro.core.estimator.ResourceEstimator` artifacts load
    through the binary codec; technique-adapter artifacts load through
    :meth:`~repro.api.adapters.TechniqueAdapter.load`.  Anything else raises
    :class:`~repro.core.serialization.EstimatorCodecError`.
    """
    from pathlib import Path

    from repro.api.adapters import ADAPTER_MAGIC

    try:
        with Path(path).open("rb") as handle:
            data_prefix = handle.read(len(ARTIFACT_MAGIC))
    except OSError as exc:
        raise EstimatorCodecError(f"cannot read artifact {path}: {exc}") from exc
    if data_prefix == ARTIFACT_MAGIC:
        return load_native_estimator(path)
    if data_prefix == ADAPTER_MAGIC:
        return TechniqueAdapter.load(path)
    raise EstimatorCodecError(
        f"{path}: not a repro estimator artifact (unrecognised magic bytes)"
    )
