"""The unified Estimator protocol and its training-corpus input.

Every estimation technique in the library — the paper's SCALING method
(:class:`~repro.core.estimator.ResourceEstimator`) and all seven baselines
adapted through :mod:`repro.api.adapters` — presents the same four-method
surface, so callers can train, persist and serve any technique without
knowing which one they hold:

* ``fit(training_data)`` — train on a :class:`TrainingCorpus`;
* ``predict_batch(plans, resource)`` — query-level totals for many plans;
* ``save(path)`` / ``load(path)`` — full round-trip persistence.

The protocol deliberately mirrors the deployment shape of Section 7.3:
training is an offline phase producing a small artifact, prediction is an
online phase that never retrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.features.definitions import FeatureMode
from repro.workloads.runner import ObservedQuery, ObservedWorkload

__all__ = ["Estimator", "TrainingCorpus", "DEFAULT_RESOURCES"]

#: The resources the library models, as in the paper.
DEFAULT_RESOURCES: tuple[str, ...] = ("cpu", "io")


@dataclass(frozen=True)
class TrainingCorpus:
    """Everything an estimation technique needs to train.

    Bundles the observed training queries with the feature mode they should
    be read in and the resources to model, so ``fit`` has a single argument
    regardless of technique.
    """

    queries: tuple[ObservedQuery, ...]
    mode: FeatureMode = FeatureMode.EXACT
    resources: tuple[str, ...] = DEFAULT_RESOURCES
    #: Label used in logs and cache keys (e.g. the workload name).
    name: str = "train"

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", tuple(self.queries))
        object.__setattr__(self, "resources", tuple(self.resources))
        if not self.resources:
            raise ValueError("a training corpus must name at least one resource")

    @classmethod
    def from_workload(
        cls,
        workload: ObservedWorkload,
        mode: FeatureMode = FeatureMode.EXACT,
        resources: Sequence[str] = DEFAULT_RESOURCES,
    ) -> "TrainingCorpus":
        """A corpus over every query of an observed workload."""
        return cls(
            queries=tuple(workload.queries),
            mode=mode,
            resources=tuple(resources),
            name=workload.name,
        )

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def n_operators(self) -> int:
        return sum(len(query.operators) for query in self.queries)


@runtime_checkable
class Estimator(Protocol):
    """Train-once / serve-many surface shared by every estimation technique.

    ``predict_batch`` accepts :class:`~repro.plan.plan.QueryPlan` objects or
    observed queries (anything with a ``plan`` attribute) and returns one
    query-level estimate per input, in order.
    """

    name: str

    def fit(self, training_data: TrainingCorpus) -> "Estimator": ...

    def predict_batch(
        self, plans: Sequence[Any], resource: str
    ) -> np.ndarray[Any, np.dtype[np.float64]]: ...

    def save(self, path: str | Path) -> None: ...

    @classmethod
    def load(cls, path: str | Path) -> "Estimator": ...
