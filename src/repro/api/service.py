"""The serving session layer: load a model once, estimate many workloads.

The paper's Section 7.3 deployment argument — trained models are tiny and
prediction overhead is negligible — assumes a resident model that serves
many requests.  :class:`EstimationService` is that resident session: it
loads a persisted :class:`~repro.core.estimator.ResourceEstimator` once
(:meth:`EstimationService.from_artifact`, with bounded retry for transient
IO) and then answers any number of ``estimate_workload`` calls without
retraining or reloading.

The service adds one serving-side optimisation over the bare estimator:
**per-plan feature-row caching**.  Feature extraction is the only
per-operator Python-loop work left on the batched estimation path, and
serving scenarios (admission control, repeated what-if costing, scheduling)
ask about the same plans repeatedly — so extraction results are memoised per
plan object in a bounded LRU.  Cached or not, the service's numbers are
bit-identical to ``estimator.estimate_workload``: both paths feed the same
feature rows through the same family-batched model evaluation.

Serving is guardrailed (:mod:`repro.robustness`): inputs are validated
against the training-feature envelopes (``on_invalid`` selects whether
non-finite features reject the request or degrade down the fallback
ladder), every estimate carries a
:class:`~repro.robustness.degradation.DegradationReport`, and
:meth:`EstimationService.swap_artifact` hot-swaps the live model only after
the candidate passes canary predictions — rolling back to the incumbent
otherwise.

The session is **thread-safe**: the feature cache, the stats counters and
the estimator/validator pair are guarded by locks, so any number of caller
threads (or the micro-batch coalescer in :mod:`repro.serving`) can share
one service.  A concurrent :meth:`swap_artifact` is atomic with respect to
readers — every ``estimate_workload`` call runs entirely against one
(estimator, validator) pair, never a half-swapped mix.

The session is also **observable**: :meth:`EstimationService.add_observer`
registers a callback that sees every served ``(plans, estimate)`` pair
after the fact.  The adaptive serving loop (:mod:`repro.adaptive`) attaches
its :class:`~repro.adaptive.observation.ObservationLog` here, joining the
predictions with simulated-actual execution feedback to drive drift
detection and background refits.  Observers run outside every service
lock and never fail the serving path — a raising observer is logged and
dropped from the estimate's critical path, nothing more.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import logging
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from repro.core.estimator import ResourceEstimator, WorkloadEstimate
from repro.core.serialization import ModelSizeReport
from repro.features.extractor import OperatorFeatures
from repro.plan.plan import QueryPlan
from repro.robustness.lifecycle import (
    ArtifactSwapError,
    load_estimator_with_retry,
    run_canary_checks,
)
from repro.robustness.validation import PlanValidator, ValidationReport

__all__ = ["EstimationObserver", "EstimationService", "ServiceStats", "StatsSnapshot"]

_LOGGER = logging.getLogger("repro.api.service")

#: Post-serve callback signature: ``observer(plans, estimate)`` is invoked
#: after every successful ``estimate_workload`` call, outside all locks.
EstimationObserver = Callable[[list[QueryPlan], WorkloadEstimate], None]

#: Sliding-window size of the queue-wait reservoir (newest samples win).
_QUEUE_WAIT_WINDOW = 4096


@dataclass(frozen=True)
class StatsSnapshot:
    """A consistent point-in-time copy of one session's :class:`ServiceStats`.

    Taken under the stats lock, so the counters are mutually consistent even
    while other threads keep serving.
    """

    workloads_served: int
    plans_served: int
    cache_hits: int
    cache_misses: int
    degraded_operators: int
    ood_plans_flagged: int
    swaps: int
    failed_swaps: int
    batches_served: int
    plans_coalesced: int
    hit_rate: float
    queue_wait_p50_ms: float
    queue_wait_p95_ms: float
    #: Queue-wait samples currently in the sliding window.
    queue_wait_samples: int


@dataclass
class ServiceStats:
    """Counters describing one service session.

    All fields stay directly readable (and, in tests, writable); concurrent
    writers must hold :attr:`lock` — :class:`EstimationService` and the
    micro-batch coalescer do.  :meth:`snapshot` returns a consistent copy
    taken under the lock.
    """

    workloads_served: int = 0
    plans_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Operator estimates served below the MODEL tier (degradation ladder).
    degraded_operators: int = 0
    #: Plans flagged outside the training envelopes.
    ood_plans_flagged: int = 0
    #: Successful / rejected artifact hot-swaps.
    swaps: int = 0
    failed_swaps: int = 0
    #: Micro-batches served by a coalescing front (``repro.serving``).
    batches_served: int = 0
    #: Plans that rode a coalesced micro-batch.
    plans_coalesced: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._queue_waits_ms: deque[float] = deque(maxlen=_QUEUE_WAIT_WINDOW)

    @property
    def lock(self) -> threading.Lock:
        """The lock serialising every mutation of this stats object."""
        return self._lock

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def record_batch(
        self, n_requests: int, n_plans: int, queue_waits_ms: Sequence[float]
    ) -> None:
        """Account one served micro-batch (coalescer bookkeeping)."""
        with self._lock:
            self.batches_served += 1
            self.plans_coalesced += n_plans
            self._queue_waits_ms.extend(float(wait) for wait in queue_waits_ms)

    def _queue_wait_percentile(self, percentile: float) -> float:
        if not self._queue_waits_ms:
            return 0.0
        return float(
            np.percentile(
                np.asarray(self._queue_waits_ms, dtype=np.float64), percentile
            )
        )

    @property
    def queue_wait_p50_ms(self) -> float:
        """Median queue wait over the sliding sample window (ms)."""
        with self._lock:
            return self._queue_wait_percentile(50.0)

    @property
    def queue_wait_p95_ms(self) -> float:
        """95th-percentile queue wait over the sliding sample window (ms)."""
        with self._lock:
            return self._queue_wait_percentile(95.0)

    def snapshot(self) -> StatsSnapshot:
        """A mutually consistent copy of every counter, taken under the lock."""
        with self._lock:
            counters = {
                f.name: getattr(self, f.name) for f in fields(ServiceStats)
            }
            hits, misses = counters["cache_hits"], counters["cache_misses"]
            return StatsSnapshot(
                hit_rate=hits / (hits + misses) if hits + misses else 0.0,
                queue_wait_p50_ms=self._queue_wait_percentile(50.0),
                queue_wait_p95_ms=self._queue_wait_percentile(95.0),
                queue_wait_samples=len(self._queue_waits_ms),
                **counters,
            )


@dataclass
class EstimationService:
    """A long-lived serving session over one trained estimator."""

    estimator: ResourceEstimator
    #: Maximum number of plans whose extracted feature rows stay cached.
    cache_size: int = 2048
    stats: ServiceStats = field(default_factory=ServiceStats)
    #: Run the degradation-ladder guardrails on every estimate.
    guardrails: bool = True
    #: What to do when a plan carries non-finite feature values: ``"flag"``
    #: degrades the affected operators down the fallback ladder, ``"reject"``
    #: raises :class:`~repro.robustness.validation.PlanValidationError` before
    #: any estimation happens.
    on_invalid: Literal["flag", "reject"] = "flag"
    #: Out-of-distribution score above which plans are flagged in the
    #: degradation report (training-range units); ``None`` disables scoring.
    ood_threshold: float | None = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.estimator, ResourceEstimator):
            raise TypeError(
                "EstimationService serves ResourceEstimator artifacts; got "
                f"{type(self.estimator).__name__}"
            )
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.on_invalid not in ("flag", "reject"):
            raise ValueError(
                f"on_invalid must be 'flag' or 'reject', got {self.on_invalid!r}"
            )
        # id(plan) -> (plan, features); the plan reference keeps the id stable.
        self._feature_cache: OrderedDict[
            int, tuple[QueryPlan, dict[int, OperatorFeatures]]
        ] = OrderedDict()
        # Guards the feature cache and the (estimator, validator) pair; RLock
        # so promote -> _build_validator can nest.  Never held while stats
        # counters are updated (no nested lock orders to deadlock on).
        self._lock = threading.RLock()
        self._validator = self._build_validator()
        # Post-serve observers (adaptive loop hooks); guarded by _lock for
        # registration, iterated over a snapshot so callbacks run lock-free.
        self._observers: list[EstimationObserver] = []

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        cache_size: int = 2048,
        retries: int = 3,
        backoff: float = 0.05,
        reader: "Callable[[Path], bytes] | None" = None,
        mmap: bool = False,
    ) -> "EstimationService":
        """Load a persisted estimator once and wrap it in a serving session.

        Transient IO errors are retried up to ``retries`` times with
        exponential backoff (``backoff * 2**attempt`` seconds); decode
        errors fail immediately.  ``reader`` overrides the file reader
        (used by fault-injection tests).  With ``mmap=True`` a version-3
        artifact's inference arrays are memory-mapped zero-copy instead of
        decoded, shrinking artifact-to-first-estimate cold start.
        """
        estimator = load_estimator_with_retry(
            path, retries=retries, backoff=backoff, reader=reader, mmap=mmap
        )
        return cls(estimator=estimator, cache_size=cache_size)

    # -- serving --------------------------------------------------------------------------------
    def estimate_workload(
        self,
        plans: Iterable[QueryPlan],
        resources: Sequence[str] | None = None,
    ) -> WorkloadEstimate:
        """Batch-estimate a workload, reusing cached feature rows per plan.

        Same grouping, matrices and model evaluation as
        :meth:`ResourceEstimator.estimate_workload`, so the results are
        identical — the service only skips re-extracting features for plans
        it has served before.  With guardrails on, the returned estimate
        carries a degradation report; in ``on_invalid="reject"`` mode a
        workload with non-finite features raises
        :class:`~repro.robustness.validation.PlanValidationError` instead of
        being estimated.
        """
        plans = list(plans)
        # One consistent (estimator, validator) pair for the whole call, so a
        # concurrent swap_artifact can never mix models mid-estimate.
        with self._lock:
            estimator = self.estimator
            validator = self._validator
        extracted = [self._plan_features(plan, estimator) for plan in plans]
        if self.guardrails and self.on_invalid == "reject":
            validator.require_valid(extracted)
        estimate = estimator.estimate_extracted_workload(
            plans,
            extracted,
            resources,
            guardrails=self.guardrails,
            ood_threshold=self.ood_threshold if self.guardrails else None,
        )
        report = estimate.degradation
        with self.stats.lock:
            self.stats.workloads_served += 1
            self.stats.plans_served += len(plans)
            if report is not None and not report.clean:
                self.stats.degraded_operators += report.count
                self.stats.ood_plans_flagged += len(report.ood_plans)
        self._notify_observers(plans, estimate)
        return estimate

    def estimate_query(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Query-level estimate for one plan (cached like any other)."""
        return self.estimate_workload([plan], (resource,)).query(0, resource)

    def validate_workload(self, plans: Iterable[QueryPlan]) -> ValidationReport:
        """Pre-flight validation only: no estimation, no stats updates."""
        with self._lock:
            estimator = self.estimator
            validator = self._validator
        return validator.validate_workload(
            [self._plan_features(plan, estimator) for plan in plans]
        )

    # -- artifact lifecycle ----------------------------------------------------------------------
    def swap_artifact(
        self,
        path: str | Path,
        retries: int = 3,
        backoff: float = 0.05,
        reader: "Callable[[Path], bytes] | None" = None,
        canary_margin: float = 1e9,
    ) -> "ResourceEstimator":
        """Validate a candidate artifact and atomically promote it.

        The candidate is loaded (with the same bounded retry as
        :meth:`from_artifact`), checked for compatibility with the live
        session (same feature mode, covers every currently served resource)
        and probed with canary predictions
        (:func:`~repro.robustness.lifecycle.run_canary_checks`).  Only after
        every check passes is the live estimator replaced — a single
        reference assignment, so concurrent readers see either the old or
        the new model, never a mix.  Any failure raises
        :class:`~repro.robustness.lifecycle.ArtifactSwapError` and leaves
        the incumbent serving (rollback is keeping the reference).

        Returns the estimator that was replaced.
        """
        with self._lock:
            incumbent = self.estimator
        try:
            candidate = load_estimator_with_retry(
                path, retries=retries, backoff=backoff, reader=reader
            )
        except (OSError, ValueError) as exc:
            self._count_failed_swap()
            _LOGGER.warning("artifact swap rejected (load failed): %s", exc)
            raise ArtifactSwapError(
                f"candidate artifact {path} failed to load: {exc}"
            ) from exc
        if candidate.feature_mode is not incumbent.feature_mode:
            self._count_failed_swap()
            raise ArtifactSwapError(
                f"candidate feature mode {candidate.feature_mode.value!r} does not "
                f"match the live session ({incumbent.feature_mode.value!r})"
            )
        missing = [r for r in incumbent.resources if r not in candidate.resources]
        if missing:
            self._count_failed_swap()
            raise ArtifactSwapError(
                f"candidate artifact does not model resource(s) {missing} served "
                "by the live session"
            )
        report = run_canary_checks(candidate, margin=canary_margin)
        if not report.passed:
            self._count_failed_swap()
            details = "; ".join(
                f"{f.family.value if f.family else 'global'}/{f.resource}: {f.reason}"
                for f in report.failures[:3]
            )
            _LOGGER.warning("artifact swap rejected (canary failed): %s", details)
            raise ArtifactSwapError(
                f"candidate artifact {path} failed canary checks: {details}"
            )
        # Promote atomically: estimator, validator and cache flip together
        # under the lock, so in-flight estimates (which captured the previous
        # pair up front) finish on the old model and new calls see only the
        # new one — never a mix.
        with self._lock:
            previous = self.estimator
            self.estimator = candidate
            self._validator = self._build_validator()
            self._feature_cache.clear()
        with self.stats.lock:
            self.stats.swaps += 1
        return previous

    # -- observation hook ------------------------------------------------------------------------
    def add_observer(self, observer: EstimationObserver) -> None:
        """Register a post-serve callback (the adaptive-loop tap).

        The callback receives every ``(plans, estimate)`` pair this session
        serves, after stats accounting and outside all service locks.  A
        raising observer is logged and skipped for that estimate; it is
        never allowed to fail the serving path.
        """
        with self._lock:
            if observer not in self._observers:
                self._observers.append(observer)

    def remove_observer(self, observer: EstimationObserver) -> None:
        """Unregister a callback added by :meth:`add_observer` (idempotent)."""
        with self._lock:
            if observer in self._observers:
                self._observers.remove(observer)

    def _notify_observers(
        self, plans: list[QueryPlan], estimate: WorkloadEstimate
    ) -> None:
        with self._lock:
            observers = tuple(self._observers)
        for observer in observers:
            try:
                observer(plans, estimate)
            except Exception as exc:
                _LOGGER.warning(
                    "estimation observer %r failed (estimate already served): %s",
                    observer,
                    exc,
                )

    # -- introspection ---------------------------------------------------------------------------
    @property
    def resources(self) -> tuple[str, ...]:
        return self.estimator.resources

    @property
    def validator(self) -> PlanValidator:
        return self._validator

    def model_size_report(self) -> ModelSizeReport:
        """Compact-encoding size summary of the served model collection."""
        return ModelSizeReport.for_estimator(self.estimator)

    def clear_cache(self) -> None:
        with self._lock:
            self._feature_cache.clear()

    # -- internals ---------------------------------------------------------------------------------
    def _count_failed_swap(self) -> None:
        with self.stats.lock:
            self.stats.failed_swaps += 1

    def _build_validator(self) -> PlanValidator:
        return PlanValidator.for_estimator(
            self.estimator,
            ood_threshold=self.ood_threshold if self.ood_threshold is not None else 1.0,
        )

    def _plan_features(
        self, plan: QueryPlan, estimator: ResourceEstimator | None = None
    ) -> dict[int, OperatorFeatures]:
        if estimator is None:
            with self._lock:
                estimator = self.estimator
        key = id(plan)
        with self._lock:
            cached = self._feature_cache.get(key)
            if cached is not None:
                if cached[0] is plan:
                    self._feature_cache.move_to_end(key)
                else:
                    # id() was recycled for a new plan object: the cached entry
                    # is stale and can never hit again — drop it before
                    # re-populating.
                    del self._feature_cache[key]
                    cached = None
        if cached is not None:
            with self.stats.lock:
                self.stats.cache_hits += 1
            return cached[1]
        # Extraction runs outside the lock: concurrent misses on the same plan
        # may extract twice, but the results are identical and last-write-wins
        # keeps the cache coherent.
        features = estimator.extract_plan_features(plan)
        with self.stats.lock:
            self.stats.cache_misses += 1
        if self.cache_size > 0:
            with self._lock:
                self._feature_cache[key] = (plan, features)
                self._feature_cache.move_to_end(key)
                while len(self._feature_cache) > self.cache_size:
                    self._feature_cache.popitem(last=False)
        return features
