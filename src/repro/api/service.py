"""The serving session layer: load a model once, estimate many workloads.

The paper's Section 7.3 deployment argument — trained models are tiny and
prediction overhead is negligible — assumes a resident model that serves
many requests.  :class:`EstimationService` is that resident session: it
loads a persisted :class:`~repro.core.estimator.ResourceEstimator` once
(:meth:`EstimationService.from_artifact`) and then answers any number of
``estimate_workload`` calls without retraining or reloading.

The service adds one serving-side optimisation over the bare estimator:
**per-plan feature-row caching**.  Feature extraction is the only
per-operator Python-loop work left on the batched estimation path, and
serving scenarios (admission control, repeated what-if costing, scheduling)
ask about the same plans repeatedly — so extraction results are memoised per
plan object in a bounded LRU.  Cached or not, the service's numbers are
bit-identical to ``estimator.estimate_workload``: both paths feed the same
feature rows through the same family-batched model evaluation.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.estimator import ResourceEstimator, WorkloadEstimate
from repro.core.serialization import ModelSizeReport, load_estimator
from repro.features.extractor import OperatorFeatures
from repro.plan.plan import QueryPlan

__all__ = ["EstimationService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Counters describing one service session."""

    workloads_served: int = 0
    plans_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class EstimationService:
    """A long-lived serving session over one trained estimator."""

    estimator: ResourceEstimator
    #: Maximum number of plans whose extracted feature rows stay cached.
    cache_size: int = 2048
    stats: ServiceStats = field(default_factory=ServiceStats)

    def __post_init__(self) -> None:
        if not isinstance(self.estimator, ResourceEstimator):
            raise TypeError(
                "EstimationService serves ResourceEstimator artifacts; got "
                f"{type(self.estimator).__name__}"
            )
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        # id(plan) -> (plan, features); the plan reference keeps the id stable.
        self._feature_cache: OrderedDict[
            int, tuple[QueryPlan, dict[int, OperatorFeatures]]
        ] = OrderedDict()

    @classmethod
    def from_artifact(cls, path: str | Path, cache_size: int = 2048) -> "EstimationService":
        """Load a persisted estimator once and wrap it in a serving session."""
        return cls(estimator=load_estimator(path), cache_size=cache_size)

    # -- serving --------------------------------------------------------------------------------
    def estimate_workload(
        self,
        plans: Iterable[QueryPlan],
        resources: Sequence[str] | None = None,
    ) -> WorkloadEstimate:
        """Batch-estimate a workload, reusing cached feature rows per plan.

        Same grouping, matrices and model evaluation as
        :meth:`ResourceEstimator.estimate_workload`, so the results are
        identical — the service only skips re-extracting features for plans
        it has served before.
        """
        plans = list(plans)
        extracted = [self._plan_features(plan) for plan in plans]
        estimate = self.estimator.estimate_extracted_workload(plans, extracted, resources)
        self.stats.workloads_served += 1
        self.stats.plans_served += len(plans)
        return estimate

    def estimate_query(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Query-level estimate for one plan (cached like any other)."""
        return self.estimate_workload([plan], (resource,)).query(0, resource)

    # -- introspection ---------------------------------------------------------------------------
    @property
    def resources(self) -> tuple[str, ...]:
        return self.estimator.resources

    def model_size_report(self) -> ModelSizeReport:
        """Compact-encoding size summary of the served model collection."""
        return ModelSizeReport.for_estimator(self.estimator)

    def clear_cache(self) -> None:
        self._feature_cache.clear()

    # -- internals ---------------------------------------------------------------------------------
    def _plan_features(self, plan: QueryPlan) -> dict[int, OperatorFeatures]:
        key = id(plan)
        cached = self._feature_cache.get(key)
        if cached is not None and cached[0] is plan:
            self._feature_cache.move_to_end(key)
            self.stats.cache_hits += 1
            return cached[1]
        features = self.estimator.extract_plan_features(plan)
        self.stats.cache_misses += 1
        if self.cache_size > 0:
            self._feature_cache[key] = (plan, features)
            self._feature_cache.move_to_end(key)
            while len(self._feature_cache) > self.cache_size:
                self._feature_cache.popitem(last=False)
        return features
