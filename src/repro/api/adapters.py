"""Adapters presenting every baseline technique as a unified Estimator.

:class:`TechniqueAdapter` wraps one :class:`~repro.baselines.base.BaselineEstimator`
per modelled resource behind the four-method protocol of
:mod:`repro.api.protocol`.  Because baselines predict over *observed*
queries (operator features pre-extracted by the workload runner), the
adapter featurises bare :class:`~repro.plan.plan.QueryPlan` inputs on the
fly — feature values are derived purely from the plan and catalog metadata,
so no execution is needed to predict.

Persistence: baseline learners are plain numpy-backed Python objects, so the
adapter serializes them with :mod:`pickle` inside the same
magic + version + CRC envelope the native codec uses, and
:meth:`TechniqueAdapter.load` is exactly as strict about corruption and
version mismatches.  Only load artifacts you produced yourself — pickle
executes code on load by design.  The SCALING technique does not go through
this path: :class:`~repro.core.estimator.ResourceEstimator` implements the
protocol natively with the pickle-free codec in
:mod:`repro.core.serialization`.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.baselines.base import BaselineEstimator
from repro.core.serialization import EstimatorCodecError, pack_envelope, unpack_envelope
from repro.features.definitions import FeatureMode
from repro.features.extractor import FeatureExtractor
from repro.plan.plan import QueryPlan
from repro.api.protocol import TrainingCorpus
from repro.workloads.runner import ObservedOperator, ObservedQuery

__all__ = ["TechniqueAdapter", "featureize_plan", "ADAPTER_MAGIC", "ADAPTER_VERSION"]

#: Leading magic of adapter (pickle-envelope) artifacts.
ADAPTER_MAGIC = b"RPROPKL\x00"
#: Current adapter artifact version.
ADAPTER_VERSION = 1

_EXACT_EXTRACTOR = FeatureExtractor(FeatureMode.EXACT)
_ESTIMATED_EXTRACTOR = FeatureExtractor(FeatureMode.ESTIMATED)


def featureize_plan(plan: QueryPlan, mode: FeatureMode | None = None) -> ObservedQuery:
    """An :class:`ObservedQuery` view of an unexecuted plan (zero actuals).

    Every feature a baseline consumes is computable from the plan and the
    catalog alone (paper Figure 4), so prediction-side inputs never require
    execution; only the ``actual_*`` counters — meaningless before a query
    runs — are left at zero.  When the consumer reads only one feature mode
    (a fitted technique does), pass ``mode`` to skip the other extraction
    pass; both feature fields then share the one extracted dictionary.
    """
    if mode is FeatureMode.EXACT:
        exact = _EXACT_EXTRACTOR.extract_plan(plan)
        estimated = exact
    elif mode is FeatureMode.ESTIMATED:
        estimated = _ESTIMATED_EXTRACTOR.extract_plan(plan)
        exact = estimated
    else:
        exact = _EXACT_EXTRACTOR.extract_plan(plan)
        estimated = _ESTIMATED_EXTRACTOR.extract_plan(plan)
    pipeline_of = {
        op.node_id: pipeline.index
        for pipeline in plan.pipelines()
        for op in pipeline.operators
    }
    operators = [
        ObservedOperator(
            family=exact[op.node_id].family,
            exact_features=exact[op.node_id].values,
            estimated_features=estimated[op.node_id].values,
            actual_cpu_us=0.0,
            actual_logical_io=0.0,
            pipeline=pipeline_of.get(op.node_id, 0),
            node_id=op.node_id,
        )
        for op in plan.operators()
    ]
    return ObservedQuery(
        query=plan.query,
        plan=plan,
        operators=operators,
        total_cpu_us=0.0,
        total_logical_io=0.0,
        optimizer_cost=plan.total_estimated_cost,
    )


class TechniqueAdapter:
    """One baseline technique behind the unified Estimator protocol.

    A baseline fits for one resource at a time, so the adapter holds one
    fitted underlying technique per resource of the training corpus.
    Featureised views of bare plans are memoised per plan object (bounded
    LRU), so serving several resources — or the same plans repeatedly —
    pays the feature-extraction loop once per plan, mirroring the
    per-plan caching of :class:`~repro.api.service.EstimationService`.
    """

    #: Maximum number of plans whose featureised views stay cached.
    _FEATURE_CACHE_SIZE = 1024

    def __init__(
        self,
        key: str,
        factory: Callable[..., BaselineEstimator],
        options: dict[str, Any] | None = None,
    ) -> None:
        self.key = key
        self._factory = factory
        self.options: dict[str, Any] = dict(options or {})
        self.name = factory(**self.options).name
        self.mode: FeatureMode = FeatureMode.EXACT
        self.resources: tuple[str, ...] = ()
        self.fitted_: dict[str, BaselineEstimator] = {}
        # id(plan) -> (plan, featureised view); the reference pins the id.
        self._featureized: OrderedDict[int, tuple[object, ObservedQuery]] = OrderedDict()

    def _as_observed(self, plans: Sequence[Any]) -> list[ObservedQuery]:
        observed: list[ObservedQuery] = []
        for plan in plans:
            if hasattr(plan, "plan"):  # already an observed query
                observed.append(plan)
                continue
            key = id(plan)
            cached = self._featureized.get(key)
            if cached is not None and cached[0] is plan:
                self._featureized.move_to_end(key)
                observed.append(cached[1])
                continue
            view = featureize_plan(plan, self.mode)
            self._featureized[key] = (plan, view)
            self._featureized.move_to_end(key)
            while len(self._featureized) > self._FEATURE_CACHE_SIZE:
                self._featureized.popitem(last=False)
            observed.append(view)
        return observed

    # -- protocol ------------------------------------------------------------------------------
    def fit(self, training_data: TrainingCorpus) -> "TechniqueAdapter":
        """Fit one underlying technique per resource of the corpus."""
        self.mode = training_data.mode
        self.resources = tuple(training_data.resources)
        self._featureized.clear()  # cached views are mode-specific
        queries = list(training_data.queries)
        self.fitted_ = {
            resource: self._factory(**self.options).fit(queries, resource, training_data.mode)
            for resource in self.resources
        }
        return self

    def predict_batch(
        self, plans: Sequence[Any], resource: str
    ) -> np.ndarray[Any, np.dtype[np.float64]]:
        """Query-level totals for plans or observed queries, in input order."""
        fitted = self.fitted_.get(resource)
        if fitted is None:
            raise RuntimeError(
                f"{self.name} has no fitted model for resource {resource!r}; "
                f"fitted resources: {self.resources or '()'}"
            )
        return fitted.predict_queries(self._as_observed(plans))

    # -- persistence ----------------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the fitted adapter as a versioned, checksummed pickle artifact."""
        payload = pickle.dumps(  # repro: noqa[REPRO-R3] — documented pickle envelope
            {
                "key": self.key,
                "options": self.options,
                "name": self.name,
                "mode": self.mode.value,
                "resources": self.resources,
                "fitted": self.fitted_,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        Path(path).write_bytes(pack_envelope(ADAPTER_MAGIC, ADAPTER_VERSION, payload))

    @classmethod
    def load(cls, path: str | Path) -> "TechniqueAdapter":
        """Load an adapter artifact written by :meth:`save` (strict).

        The artifact embeds a pickle; only load files you trust.  The
        underlying factory is re-resolved from the estimator registry by the
        stored key, so a loaded adapter can be re-fitted as well as served.
        """
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise EstimatorCodecError(f"cannot read artifact {path}: {exc}") from exc
        _, payload = unpack_envelope(data, ADAPTER_MAGIC, ADAPTER_VERSION, "technique")
        try:
            state = pickle.loads(payload)  # repro: noqa[REPRO-R3] — inside CRC envelope
        except Exception as exc:  # pickle raises a zoo of exception types
            raise EstimatorCodecError(f"cannot unpickle technique artifact: {exc}") from exc

        from repro.api.registry import get_spec

        try:
            spec = get_spec(state["key"])
        except KeyError as exc:
            raise EstimatorCodecError(
                f"artifact references estimator key {state['key']!r}, which is "
                "not registered in this process"
            ) from exc
        adapter = cls(state["key"], spec.factory, state["options"])
        adapter.name = state["name"]
        adapter.mode = FeatureMode(state["mode"])
        adapter.resources = tuple(state["resources"])
        adapter.fitted_ = state["fitted"]
        return adapter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TechniqueAdapter({self.key!r}, resources={self.resources})"
