"""Query optimizer substrate.

Turns logical :class:`~repro.query.spec.QuerySpec` objects into physical
:class:`~repro.plan.plan.QueryPlan` trees, annotating every operator with

* a *true* output cardinality (used by the execution simulator and by the
  paper's "exact feature" experiments), and
* an *optimizer-estimated* cardinality derived from histogram statistics
  under the classical uniformity/independence/containment assumptions (used
  by plan selection, the optimizer cost model and the "optimizer-estimated
  feature" experiments).
"""

from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.cost_model import OptimizerCostModel
from repro.optimizer.planner import Planner

__all__ = ["CardinalityModel", "OptimizerCostModel", "Planner"]
