"""Cardinality estimation: the truth and the optimizer's view of it.

Every quantity is computed twice:

* ``true_*`` values are derived from the actual column distributions
  (Zipf-aware, correlation-aware) — they determine what the execution
  simulator observes.
* ``estimated_*`` values follow the textbook optimizer assumptions —
  histograms with a limited bucket budget, attribute independence,
  containment of join domains, and ``1/max(NDV)`` equi-join selectivity.

The systematic gaps between the two (under-estimation of correlated
predicates, mis-estimation of skewed joins) are the realistic feature noise
the paper's optimizer-estimate experiments (Tables 7–12) are about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.data.distributions import Distribution
from repro.query.spec import QuerySpec, TableRef

__all__ = ["CardinalityModel", "JoinSelectivity"]

#: Number of head ranks evaluated exactly when computing a true join
#: selectivity; the remaining (flat) tail is integrated analytically.
_EXACT_JOIN_RANKS = 2048


@dataclass(frozen=True)
class JoinSelectivity:
    """True and estimated selectivity of one equi-join edge."""

    true: float
    estimated: float


class CardinalityModel:
    """True and estimated cardinalities for base tables, filters and joins."""

    def __init__(self, catalog: Catalog, statistics: StatisticsCatalog | None = None) -> None:
        self.catalog = catalog
        self.statistics = statistics or StatisticsCatalog(catalog)
        self._join_cache: dict[tuple[str, str, str, str], JoinSelectivity] = {}

    # -- base tables and filters ---------------------------------------------------
    def base_rows(self, table_name: str) -> float:
        """Row count of a base table (known exactly to both views)."""
        return float(self.catalog.table(table_name).row_count)

    def filter_selectivity(self, ref: TableRef) -> tuple[float, float]:
        """(true, estimated) selectivity of a table reference's predicates."""
        if not ref.predicates:
            return 1.0, 1.0
        true = ref.predicates.true_selectivity(self.catalog)
        estimated = ref.predicates.estimated_selectivity(self.statistics)
        return float(true), float(estimated)

    def filtered_rows(self, ref: TableRef) -> tuple[float, float]:
        """(true, estimated) cardinality of a table reference after its filters."""
        rows = self.base_rows(ref.table)
        true_sel, est_sel = self.filter_selectivity(ref)
        return rows * true_sel, rows * est_sel

    # -- joins ------------------------------------------------------------------------
    def join_selectivity(
        self,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
    ) -> JoinSelectivity:
        """Selectivity of an equi-join edge between two base-table columns.

        The *true* selectivity is ``sum_v f_L(v) * f_R(v)`` under the
        assumption that frequency ranks align across the two sides (the
        frequent foreign-key values reference the frequent/primary values),
        which is how skewed reference data behaves and what amplifies join
        sizes beyond uniform estimates.

        The *estimated* selectivity is the classical ``1 / max(NDV_L, NDV_R)``
        with optimizer-visible (possibly damped) distinct counts.
        """
        cache_key = (left_table, left_column, right_table, right_column)
        cached = self._join_cache.get(cache_key)
        if cached is not None:
            return cached
        l_table = self.catalog.table(left_table)
        r_table = self.catalog.table(right_table)
        l_col = l_table.column(left_column)
        r_col = r_table.column(right_column)
        l_ndv = l_col.resolved_ndv(l_table.row_count)
        r_ndv = r_col.resolved_ndv(r_table.row_count)
        l_dist = l_col.resolved_distribution(l_table.row_count)
        r_dist = r_col.resolved_distribution(r_table.row_count)

        true = self._true_join_selectivity(l_dist, l_ndv, r_dist, r_ndv)

        l_stats = self.statistics.column_statistics(left_table, left_column)
        r_stats = self.statistics.column_statistics(right_table, right_column)
        estimated = 1.0 / max(l_stats.estimated_ndv, r_stats.estimated_ndv, 1)
        result = JoinSelectivity(true=float(true), estimated=float(estimated))
        self._join_cache[cache_key] = result
        # Join selectivity is symmetric in its arguments.
        self._join_cache[(right_table, right_column, left_table, left_column)] = result
        return result

    @staticmethod
    def _true_join_selectivity(
        l_dist: Distribution,
        l_ndv: int,
        r_dist: Distribution,
        r_ndv: int,
    ) -> float:
        """Rank-aligned frequency dot product with an analytic tail."""
        common = max(min(l_ndv, r_ndv), 1)
        exact = min(common, _EXACT_JOIN_RANKS)
        selectivity = 0.0
        for rank in range(exact):
            selectivity += l_dist.eq_selectivity(rank) * r_dist.eq_selectivity(rank)
        if common > exact:
            # Integrate the tails assuming they are locally uniform.
            head_fraction = exact / common
            l_tail = max(1.0 - l_dist.range_selectivity(exact / l_ndv, anchor="head"), 0.0)
            r_tail = max(1.0 - r_dist.range_selectivity(exact / r_ndv, anchor="head"), 0.0)
            tail_values = common - exact
            selectivity += (l_tail * r_tail) / tail_values * (1.0 - head_fraction) ** 0
        return min(max(selectivity, 1e-12), 1.0)

    # -- grouping -----------------------------------------------------------------------
    def group_count(
        self,
        query: QuerySpec,
        input_rows_true: float,
        input_rows_est: float,
    ) -> tuple[float, float]:
        """(true, estimated) number of groups produced by the aggregation."""
        aggregate = query.aggregate
        if aggregate is None or aggregate.is_scalar:
            return 1.0, 1.0
        true_domain = 1.0
        est_domain = 1.0
        for alias, column in aggregate.grouping_columns:
            ref = query.table_ref(alias)
            table = self.catalog.table(ref.table)
            col = table.column(column)
            true_domain *= col.resolved_ndv(table.row_count)
            stats = self.statistics.column_statistics(ref.table, column)
            est_domain *= stats.estimated_ndv
            # Avoid float overflow on pathological grouping sets.
            true_domain = min(true_domain, 1e15)
            est_domain = min(est_domain, 1e15)
        true = self._distinct_groups(input_rows_true, true_domain)
        estimated = self._distinct_groups(input_rows_est, est_domain)
        return true, estimated

    @staticmethod
    def _distinct_groups(rows: float, domain: float) -> float:
        """Expected number of distinct groups when drawing ``rows`` from ``domain``."""
        if rows <= 0:
            return 0.0
        if domain <= 1:
            return 1.0
        if rows / domain > 50:
            return float(domain)
        return float(domain * (1.0 - math.exp(-rows / domain)))
