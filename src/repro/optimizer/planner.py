"""Physical plan construction.

The planner turns a logical :class:`~repro.query.spec.QuerySpec` into a
physical operator tree using the classical heuristics of a cost-based
optimizer, driven by *estimated* cardinalities (plans are chosen from the
optimizer's view of the world, not the truth — which is how cardinality
errors propagate into plan-shape differences):

* **access paths** — an index seek when a sargable predicate on an index's
  leading column is estimated to be selective enough, a (clustered) table
  scan otherwise, with a residual Filter for the remaining predicates;
* **join order** — greedy left-deep ordering by estimated intermediate
  result size;
* **join algorithm** — index nested loops for small outers probing an
  indexed inner, merge join when both inputs arrive ordered on the join
  keys, hash join otherwise;
* **aggregation** — stream aggregate for scalar aggregates, hash aggregate
  for grouped ones;
* **ordering / limit** — a Sort (plus Top) on top when requested.

Operator ``props`` conventions
------------------------------
Leaf operators carry ``table``, ``table_rows``, ``table_columns``,
``pages``, ``row_width_full``; seeks additionally carry ``index``,
``index_depth``, ``executions`` and ``leaf_fraction``.  Filters carry
``predicate_complexity`` and ``n_predicates``.  Joins carry
``outer_columns``/``inner_columns`` (number of join columns per side) and,
for nested loops, ``inner_table_rows`` and ``index_depth``.  Sorts carry
``n_sort_columns``; aggregates carry ``n_group_columns``, ``n_aggregates``
and ``hash_columns``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Catalog, Index, Table
from repro.catalog.statistics import StatisticsCatalog
from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.cost_model import OptimizerCostModel
from repro.plan.operators import OperatorType, PlanOperator
from repro.plan.plan import QueryPlan
from repro.query.spec import JoinEdge, QuerySpec, TableRef

__all__ = ["Planner", "PlannerConfig"]


@dataclass(frozen=True)
class PlannerConfig:
    """Thresholds steering the planner's physical choices."""

    #: Estimated selectivity below which a sargable predicate triggers a seek.
    seek_selectivity_threshold: float = 0.2
    #: Maximum estimated outer cardinality for an index nested loop join.
    nested_loop_outer_threshold: float = 50_000.0
    #: Minimum inner-table row count for a nested loop to be attractive.
    nested_loop_inner_minimum: float = 10_000.0


@dataclass
class _JoinedInput:
    """Book-keeping for one input of the greedy join ordering."""

    operator: PlanOperator
    aliases: set[str]
    #: (alias, column) the output arrives ordered by, or None when unordered.
    sorted_on: tuple[str, str] | None


class Planner:
    """Builds annotated physical plans for query specs."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsCatalog | None = None,
        config: PlannerConfig | None = None,
        cost_model: OptimizerCostModel | None = None,
    ) -> None:
        self.catalog = catalog
        self.statistics = statistics or StatisticsCatalog(catalog)
        self.cardinality = CardinalityModel(catalog, self.statistics)
        self.config = config or PlannerConfig()
        self.cost_model = cost_model or OptimizerCostModel()

    # -- public API ---------------------------------------------------------------------
    def plan(self, query: QuerySpec) -> QueryPlan:
        """Build a physical plan for ``query`` and annotate optimizer costs."""
        query.validate()
        inputs = {ref.name: self._build_access_path(ref) for ref in query.tables}
        root_input = self._order_and_join(query, inputs)
        root = root_input.operator
        root = self._add_aggregation(query, root)
        root = self._add_ordering(query, root, root_input)
        plan = QueryPlan(query=query, root=root)
        self.cost_model.apply(plan)
        return plan

    # -- access paths --------------------------------------------------------------------
    def _build_access_path(self, ref: TableRef) -> _JoinedInput:
        table = self.catalog.table(ref.table)
        width = float(table.width_of(ref.projected_columns))
        true_sel, est_sel = self.cardinality.filter_selectivity(ref)
        rows = float(table.row_count)

        seek_choice = self._choose_seek(ref, table)
        if seek_choice is not None:
            index, sargable = seek_choice
            sarg_true = sargable.true_selectivity(self.catalog)
            sarg_est = sargable.estimated_selectivity(self.statistics)
            leaf = PlanOperator(
                op_type=OperatorType.INDEX_SEEK,
                est_rows=rows * sarg_est,
                true_rows=rows * sarg_true,
                row_width=width,
                props={
                    "table": table.name,
                    "index": index.name,
                    "alias": ref.name,
                    "table_rows": rows,
                    "table_columns": table.n_columns,
                    "pages": table.pages,
                    "row_width_full": float(table.row_width),
                    "index_depth": index.depth(table),
                    "index_leaf_pages": index.leaf_pages(table),
                    "executions": 1.0,
                    "leaf_fraction": 1.0 / max(table.pages, 1),
                    "covering": index.covers(ref.projected_columns or table.column_names),
                },
            )
            residual = ref.predicates.residual(sargable)
            op = self._add_residual_filter(leaf, residual, table)
            sorted_on = (ref.name, index.key_columns[0])
            return _JoinedInput(operator=op, aliases={ref.name}, sorted_on=sorted_on)

        clustered = self.catalog.clustered_index(table.name)
        scan_type = OperatorType.INDEX_SCAN if clustered is not None else OperatorType.TABLE_SCAN
        leaf = PlanOperator(
            op_type=scan_type,
            est_rows=rows,
            true_rows=rows,
            row_width=width,
            props={
                "table": table.name,
                "alias": ref.name,
                "index": clustered.name if clustered is not None else None,
                "table_rows": rows,
                "table_columns": table.n_columns,
                "pages": table.pages,
                "row_width_full": float(table.row_width),
            },
        )
        op = self._add_residual_filter(leaf, ref.predicates, table)
        sorted_on = None
        if clustered is not None:
            sorted_on = (ref.name, clustered.key_columns[0])
        return _JoinedInput(operator=op, aliases={ref.name}, sorted_on=sorted_on)

    def _choose_seek(self, ref: TableRef, table: Table) -> tuple[Index, object] | None:
        """Pick an (index, sargable predicate) pair if a seek looks attractive."""
        if not ref.predicates:
            return None
        best: tuple[float, Index, object] | None = None
        for index in self.catalog.indexes_on(table.name):
            leading = index.key_columns[0]
            sargable = ref.predicates.sargable_predicate(leading)
            if sargable is None:
                continue
            est_sel = sargable.estimated_selectivity(self.statistics)
            if est_sel > self.config.seek_selectivity_threshold:
                continue
            # Non-covering, non-clustered seeks over large fractions are
            # unattractive because of lookups; fold that into the score.
            covering = index.covers(ref.projected_columns or table.column_names)
            score = est_sel * (1.0 if covering else 3.0)
            if best is None or score < best[0]:
                best = (score, index, sargable)
        if best is None:
            return None
        return best[1], best[2]

    def _add_residual_filter(self, child: PlanOperator, predicates, table: Table) -> PlanOperator:
        """Wrap ``child`` in a Filter applying the remaining predicates."""
        if not predicates:
            return child
        true_sel = predicates.true_selectivity(self.catalog)
        est_sel = predicates.estimated_selectivity(self.statistics)
        return PlanOperator(
            op_type=OperatorType.FILTER,
            children=[child],
            est_rows=child.est_rows * est_sel,
            true_rows=child.true_rows * true_sel,
            row_width=child.row_width,
            props={
                "predicate_complexity": predicates.total_complexity,
                "n_predicates": len(predicates),
                "table": table.name,
            },
        )

    # -- join ordering and algorithms ---------------------------------------------------
    def _order_and_join(self, query: QuerySpec, inputs: dict[str, _JoinedInput]) -> _JoinedInput:
        if len(inputs) == 1:
            return next(iter(inputs.values()))

        remaining = dict(inputs)
        # Start from the input with the smallest estimated cardinality that
        # participates in at least one join edge.
        start_alias = min(remaining, key=lambda a: remaining[a].operator.est_rows)
        current = remaining.pop(start_alias)

        while remaining:
            candidate = self._cheapest_extension(query, current, remaining)
            if candidate is None:
                # Disconnected graph fragments are rejected by validate(), so
                # this only happens if the remaining edges connect among
                # themselves first; pick the smallest remaining input and
                # continue (it will connect on a later iteration).
                alias = min(remaining, key=lambda a: remaining[a].operator.est_rows)
                fragment = remaining.pop(alias)
                current = self._join_inputs(query, current, fragment, edges=[])
                continue
            alias, edges = candidate
            nxt = remaining.pop(alias)
            current = self._join_inputs(query, current, nxt, edges)
        return current

    def _cheapest_extension(
        self,
        query: QuerySpec,
        current: _JoinedInput,
        remaining: dict[str, _JoinedInput],
    ) -> tuple[str, list[JoinEdge]] | None:
        """Pick the joinable alias minimising the estimated join output."""
        best: tuple[float, str, list[JoinEdge]] | None = None
        for alias, candidate in remaining.items():
            edges = [
                edge
                for edge in query.joins
                if (edge.left in current.aliases and edge.right == alias)
                or (edge.right in current.aliases and edge.left == alias)
            ]
            if not edges:
                continue
            est_rows = self._join_cardinality(query, current, candidate, edges, estimated=True)
            if best is None or est_rows < best[0]:
                best = (est_rows, alias, edges)
        if best is None:
            return None
        return best[1], best[2]

    def _join_cardinality(
        self,
        query: QuerySpec,
        left: _JoinedInput,
        right: _JoinedInput,
        edges: list[JoinEdge],
        estimated: bool,
    ) -> float:
        """Cardinality of joining ``left`` and ``right`` along ``edges``."""
        left_rows = left.operator.output_rows(estimated)
        right_rows = right.operator.output_rows(estimated)
        result = left_rows * right_rows
        for edge in edges:
            left_alias = edge.left if edge.left in left.aliases else edge.right
            right_alias = edge.other(left_alias)
            left_ref = query.table_ref(left_alias)
            right_ref = query.table_ref(right_alias)
            sel = self.cardinality.join_selectivity(
                left_ref.table,
                edge.column_for(left_alias),
                right_ref.table,
                edge.column_for(right_alias),
            )
            result *= sel.estimated if estimated else sel.true
        return max(result, 0.0)

    def _join_inputs(
        self,
        query: QuerySpec,
        left: _JoinedInput,
        right: _JoinedInput,
        edges: list[JoinEdge],
    ) -> _JoinedInput:
        """Create the join operator combining two inputs."""
        est_rows = self._join_cardinality(query, left, right, edges, estimated=True)
        true_rows = self._join_cardinality(query, left, right, edges, estimated=False)
        width = left.operator.row_width + right.operator.row_width
        n_join_columns = max(len(edges), 1)

        algorithm = self._choose_join_algorithm(query, left, right, edges)

        if algorithm == OperatorType.NESTED_LOOP_JOIN:
            inner_leaf = right.operator
            inner_table_rows = float(inner_leaf.props.get("table_rows", inner_leaf.est_rows))
            outer_rows_est = left.operator.est_rows
            outer_rows_true = left.operator.true_rows
            # The inner side of an index nested loop join is executed once per
            # outer row; annotate the execution count for costing/resources.
            for node in right.operator.iter_subtree():
                if node.op_type == OperatorType.INDEX_SEEK:
                    node.props["executions"] = max(outer_rows_est, 1.0)
            op = PlanOperator(
                op_type=OperatorType.NESTED_LOOP_JOIN,
                children=[left.operator, right.operator],
                est_rows=est_rows,
                true_rows=true_rows,
                row_width=width,
                props={
                    "outer_columns": n_join_columns,
                    "inner_columns": n_join_columns,
                    "inner_table_rows": inner_table_rows,
                    "index_depth": self._inner_index_depth(right),
                    "outer_rows_est": outer_rows_est,
                    "outer_rows_true": outer_rows_true,
                },
            )
            return _JoinedInput(op, left.aliases | right.aliases, sorted_on=left.sorted_on)

        if algorithm == OperatorType.MERGE_JOIN:
            op = PlanOperator(
                op_type=OperatorType.MERGE_JOIN,
                children=[left.operator, right.operator],
                est_rows=est_rows,
                true_rows=true_rows,
                row_width=width,
                props={
                    "outer_columns": n_join_columns,
                    "inner_columns": n_join_columns,
                },
            )
            return _JoinedInput(op, left.aliases | right.aliases, sorted_on=left.sorted_on)

        # Hash join: build on the smaller estimated input, probe with the larger.
        if left.operator.est_rows >= right.operator.est_rows:
            probe, build = left, right
        else:
            probe, build = right, left
        op = PlanOperator(
            op_type=OperatorType.HASH_JOIN,
            children=[probe.operator, build.operator],
            est_rows=est_rows,
            true_rows=true_rows,
            row_width=width,
            props={
                "outer_columns": n_join_columns,
                "inner_columns": n_join_columns,
                "hash_columns": n_join_columns,
            },
        )
        return _JoinedInput(op, left.aliases | right.aliases, sorted_on=None)

    def _choose_join_algorithm(
        self,
        query: QuerySpec,
        left: _JoinedInput,
        right: _JoinedInput,
        edges: list[JoinEdge],
    ) -> OperatorType:
        if not edges:
            return OperatorType.NESTED_LOOP_JOIN
        cfg = self.config
        # Index nested loops: small outer, indexed inner base table.
        inner_is_indexed_leaf = self._inner_seekable(right, edges)
        if (
            inner_is_indexed_leaf
            and left.operator.est_rows <= cfg.nested_loop_outer_threshold
            and float(right.operator.props.get("table_rows", right.operator.est_rows))
            >= cfg.nested_loop_inner_minimum
        ):
            return OperatorType.NESTED_LOOP_JOIN
        # Merge join: both inputs ordered on the join columns.
        edge = edges[0]
        if left.sorted_on is not None and right.sorted_on is not None:
            left_alias = edge.left if edge.left in left.aliases else edge.right
            right_alias = edge.other(left_alias)
            left_sorted = left.sorted_on == (left_alias, edge.column_for(left_alias))
            right_sorted = right.sorted_on == (right_alias, edge.column_for(right_alias))
            if left_sorted and right_sorted:
                return OperatorType.MERGE_JOIN
        return OperatorType.HASH_JOIN

    def _inner_seekable(self, right: _JoinedInput, edges: list[JoinEdge]) -> bool:
        """Whether the right input is a bare base-table access with a usable index."""
        op = right.operator
        if not op.op_type.is_leaf:
            return False
        table_name = op.props.get("table")
        if table_name is None or len(right.aliases) != 1:
            return False
        alias = next(iter(right.aliases))
        for edge in edges:
            if not edge.touches(alias):
                continue
            column = edge.column_for(alias)
            if self.catalog.find_index_on(table_name, column) is not None:
                return True
        return False

    def _inner_index_depth(self, right: _JoinedInput) -> int:
        op = right.operator
        table_name = op.props.get("table")
        if table_name is None:
            return 2
        index_name = op.props.get("index")
        table = self.catalog.table(table_name)
        if index_name and index_name in self.catalog.indexes:
            return self.catalog.indexes[index_name].depth(table)
        clustered = self.catalog.clustered_index(table_name)
        if clustered is not None:
            return clustered.depth(table)
        return 2

    # -- aggregation, ordering, limit ----------------------------------------------------
    def _add_aggregation(self, query: QuerySpec, root: PlanOperator) -> PlanOperator:
        aggregate = query.aggregate
        if aggregate is None:
            return root
        true_groups, est_groups = self.cardinality.group_count(
            query, root.true_rows, root.est_rows
        )
        group_columns = aggregate.grouping_columns
        width = 8.0 * aggregate.n_aggregates
        for alias, column in group_columns:
            ref = query.table_ref(alias)
            table = self.catalog.table(ref.table)
            width += float(table.column(column).width or 8)
        op_type = (
            OperatorType.STREAM_AGGREGATE if aggregate.is_scalar else OperatorType.HASH_AGGREGATE
        )
        agg = PlanOperator(
            op_type=op_type,
            children=[root],
            est_rows=max(est_groups, 1.0),
            true_rows=max(true_groups, 1.0),
            row_width=max(width, 8.0),
            props={
                "n_group_columns": len(group_columns),
                "n_aggregates": aggregate.n_aggregates,
                "hash_columns": len(group_columns),
            },
        )
        if aggregate.n_aggregates > 1:
            return PlanOperator(
                op_type=OperatorType.COMPUTE_SCALAR,
                children=[agg],
                est_rows=agg.est_rows,
                true_rows=agg.true_rows,
                row_width=agg.row_width,
                props={"n_expressions": aggregate.n_aggregates},
            )
        return agg

    def _add_ordering(
        self, query: QuerySpec, root: PlanOperator, root_input: _JoinedInput
    ) -> PlanOperator:
        result = root
        if query.order_by is not None and query.order_by.columns:
            result = PlanOperator(
                op_type=OperatorType.SORT,
                children=[result],
                est_rows=result.est_rows,
                true_rows=result.true_rows,
                row_width=result.row_width,
                props={"n_sort_columns": len(query.order_by.columns)},
            )
        if query.limit is not None:
            result = PlanOperator(
                op_type=OperatorType.TOP,
                children=[result],
                est_rows=min(float(query.limit), result.est_rows),
                true_rows=min(float(query.limit), result.true_rows),
                row_width=result.row_width,
                props={"limit": query.limit},
            )
        return result
