"""The optimizer's own cost model (the OPT baseline and Figure 1).

This mirrors the structure of a classical System-R / SQL Server style cost
model: per-operator CPU and I/O components in abstract *cost units*, driven
by *estimated* cardinalities and a handful of magic constants.  It is
deliberately simpler than the engine's ground-truth resource model — it uses
purely linear per-row CPU terms, ignores row width for CPU, ignores hash
column counts and batch-sort optimisations — so that, exactly as the paper's
Figure 1 shows for a commercial optimizer, its estimates correlate with but
systematically deviate from actual resource usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.plan.operators import OperatorType, PlanOperator
from repro.plan.plan import QueryPlan

__all__ = ["OptimizerCostModel", "CostModelConstants"]


@dataclass(frozen=True)
class CostModelConstants:
    """Magic constants of the optimizer cost model (cost units, not ms)."""

    #: Cost of one sequential page read.
    io_sequential_page: float = 0.000740741
    #: Cost of one random page read (index traversals, loop-join lookups).
    io_random_page: float = 0.003125
    #: Per-row CPU cost of producing/consuming one tuple.
    cpu_per_row: float = 0.0000011
    #: Per-row CPU cost of evaluating one predicate comparison.
    cpu_per_comparison: float = 0.0000011
    #: Per-row CPU cost of one hash/probe operation.
    cpu_per_hash: float = 0.0000018
    #: Per-comparison CPU cost inside a sort.
    cpu_per_sort_comparison: float = 0.0000014
    #: Startup overhead charged to every operator.
    startup: float = 0.000125


class OptimizerCostModel:
    """Annotates a plan with estimated CPU / I/O cost units per operator."""

    def __init__(self, constants: CostModelConstants | None = None) -> None:
        self.constants = constants or CostModelConstants()

    # -- public API ------------------------------------------------------------------
    def apply(self, plan: QueryPlan) -> float:
        """Set ``est_cpu_cost`` / ``est_io_cost`` on every operator.

        Returns the total plan cost (sum of both components over all
        operators), which is what the OPT baseline maps to resource
        estimates via per-operator adjustment factors.
        """
        total = 0.0
        for op in plan.operators_postorder():
            cpu, io = self._operator_cost(op)
            op.est_cpu_cost = cpu
            op.est_io_cost = io
            total += cpu + io
        return total

    # -- per-operator costing -----------------------------------------------------------
    def _operator_cost(self, op: PlanOperator) -> tuple[float, float]:
        c = self.constants
        rows_out = max(op.est_rows, 0.0)
        rows_in = max(op.total_input_rows(estimated=True), 0.0)

        if op.op_type in (OperatorType.TABLE_SCAN, OperatorType.INDEX_SCAN):
            pages = float(op.props.get("pages", 1))
            cpu = c.startup + c.cpu_per_row * float(op.props.get("table_rows", rows_out))
            io = c.io_sequential_page * pages
            return cpu, io

        if op.op_type == OperatorType.INDEX_SEEK:
            depth = float(op.props.get("index_depth", 2))
            lookups = float(op.props.get("executions", 1))
            pages_touched = lookups * depth + rows_out * float(op.props.get("leaf_fraction", 0.01))
            cpu = c.startup + c.cpu_per_row * rows_out + c.cpu_per_comparison * lookups * depth
            io = c.io_random_page * pages_touched
            return cpu, io

        if op.op_type == OperatorType.FILTER:
            comparisons = float(op.props.get("predicate_complexity", 1))
            cpu = c.startup + c.cpu_per_comparison * rows_in * comparisons
            return cpu, 0.0

        if op.op_type == OperatorType.COMPUTE_SCALAR:
            cpu = c.startup + c.cpu_per_row * rows_in * float(op.props.get("n_expressions", 1))
            return cpu, 0.0

        if op.op_type == OperatorType.SORT:
            n = max(rows_in, 2.0)
            cpu = c.startup + c.cpu_per_sort_comparison * n * math.log2(n)
            return cpu, 0.0

        if op.op_type == OperatorType.TOP:
            return c.startup + c.cpu_per_row * rows_out, 0.0

        if op.op_type == OperatorType.HASH_JOIN:
            build = op.children[1].est_rows if len(op.children) > 1 else 0.0
            probe = op.children[0].est_rows if op.children else 0.0
            cpu = c.startup + c.cpu_per_hash * (build + probe) + c.cpu_per_row * rows_out
            return cpu, 0.0

        if op.op_type == OperatorType.MERGE_JOIN:
            cpu = c.startup + c.cpu_per_row * rows_in + c.cpu_per_row * rows_out
            return cpu, 0.0

        if op.op_type == OperatorType.NESTED_LOOP_JOIN:
            outer = op.children[0].est_rows if op.children else 0.0
            cpu = c.startup + c.cpu_per_row * (outer + rows_out)
            return cpu, 0.0

        if op.op_type == OperatorType.HASH_AGGREGATE:
            cpu = c.startup + c.cpu_per_hash * rows_in + c.cpu_per_row * rows_out
            return cpu, 0.0

        if op.op_type == OperatorType.STREAM_AGGREGATE:
            cpu = c.startup + c.cpu_per_row * rows_in
            return cpu, 0.0

        raise ValueError(f"no cost rule for operator type {op.op_type}")
