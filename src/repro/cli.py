"""Command-line interface for the reproduction.

Usage (module form, no installation entry point required)::

    python -m repro.cli list
    python -m repro.cli run table_4 [--profile fast|paper] [--output results/]
    python -m repro.cli run all --output results/
    python -m repro.cli train --queries 72 --out model.bin
    python -m repro.cli estimate --model model.bin --queries 50
    python -m repro.cli estimate [--queries N] [--resource cpu|io|both]
    python -m repro.cli models inspect model.bin
    python -m repro.cli models list --registry registry/
    python -m repro.cli models diff --registry registry/ v0001 v0002
    python -m repro.cli models promote --registry registry/ v0002
    python -m repro.cli serve-bench [--mode closed|open] [--out results.json]
    python -m repro.cli adapt-bench [--out adaptive_loop.json]
    python -m repro.cli lint src/ tests/ [--format=github]

``run`` executes one registered experiment (or ``all`` of them) and prints
the regenerated table/figure; with ``--output`` the rendered results are
also written to one text file per experiment, mirroring what the benchmark
suite stores under ``benchmarks/results/``.

The train-once / serve-many workflow is split across three subcommands:

* ``train`` executes a TPC-H training workload, fits a SCALING estimator
  and writes it to a versioned model artifact (``--out``);
* ``estimate`` exercises the serving path through an
  :class:`~repro.api.EstimationService`: with ``--model`` it loads a
  persisted artifact (no retraining), otherwise it trains an identical
  estimator in memory first; either way a batch of freshly planned queries
  is estimated with one ``estimate_workload`` call;
* ``models inspect`` prints the format header and the
  :class:`~repro.core.serialization.ModelSizeReport` of an artifact — plus
  the registry manifest (corpus fingerprint, train metrics, lineage) when
  the artifact lives inside a :class:`~repro.adaptive.ModelRegistry`;
* ``models list`` / ``models diff`` / ``models promote`` operate on such a
  registry directly (``--registry``).

``adapt-bench`` drives the adaptive serving loop (:mod:`repro.adaptive`)
through a drifting TPC-H → TPC-DS mix: drift detection, background refit,
registry promotion and canary-checked hot-swap, recording pre-drift /
drifted / post-swap error; it exits 1 when any loop check fails, so CI can
gate on it directly.

``serve-bench`` drives the concurrent serving layer
(:mod:`repro.serving`) with a seeded closed- or open-loop load and
compares coalesced throughput against the single-caller sequential
baseline under a p99 latency budget; it exits 1 when the run records
request errors or misses the budget, so CI can gate on it directly.

``lint`` runs the static invariant checker of :mod:`repro.lint` over the
given paths.  Exit codes are uniform across every subcommand and flag
(including ``--version``): **0** success/clean, **1** runtime/data errors
(lint findings, missing or corrupt model artifacts), **2** usage errors
(bad flags, unknown experiments, resource mismatches).  ``main`` never
leaks :class:`SystemExit` to embedding callers — argparse exits are
converted to return codes.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro import __version__
from repro.adaptive.registry import ModelRegistry, RegistryError, manifest_for_artifact
from repro.api.adapters import ADAPTER_MAGIC
from repro.api.service import EstimationService
from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.core.estimator import ResourceEstimator
from repro.core.serialization import (
    ARTIFACT_VERSION,
    EstimatorCodecError,
    ModelSizeReport,
    load_estimator,
    read_artifact_version,
)
from repro.core.trainer import TrainerConfig
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.features.definitions import FeatureMode
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.serving import (
    SCENARIO_MIXES,
    LoadConfig,
    ServeBenchConfig,
    run_serve_bench,
    standard_scenarios,
)
from repro.workloads.datasets import build_training_data, split_workload
from repro.workloads.tpch import build_tpch_workload

__all__ = ["main", "build_parser", "train_scaling_estimator"]

#: Scale factor of the CLI's single-scale TPC-H training workload.
_TRAIN_SCALE = 0.1
#: Default number of executed queries in the CLI training workload.
_DEFAULT_TRAIN_QUERIES = 144
#: Default seed for the CLI training workload.
_DEFAULT_TRAIN_SEED = 7


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro.cli`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's evaluation; train, persist and serve estimators.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment identifier (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write rendered results into (one file per experiment)",
    )

    train_parser = subparsers.add_parser(
        "train", help="train a SCALING estimator and save it as a model artifact"
    )
    train_parser.add_argument(
        "--out",
        type=Path,
        required=True,
        help="path of the model artifact to write",
    )
    train_parser.add_argument(
        "--queries",
        type=int,
        default=_DEFAULT_TRAIN_QUERIES,
        help=f"TPC-H queries executed for training data (default: {_DEFAULT_TRAIN_QUERIES})",
    )
    train_parser.add_argument(
        "--resource",
        choices=("cpu", "io", "both"),
        default="both",
        help="resource(s) to model (default: both)",
    )
    train_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    train_parser.add_argument(
        "--train-seed",
        type=int,
        default=_DEFAULT_TRAIN_SEED,
        help=f"random seed of the training workload (default: {_DEFAULT_TRAIN_SEED})",
    )
    train_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the profile's MART boosting iterations (smaller = faster)",
    )

    estimate_parser = subparsers.add_parser(
        "estimate", help="batch-estimate a freshly planned TPC-H workload"
    )
    estimate_parser.add_argument(
        "--model",
        type=Path,
        default=None,
        help="serve from this model artifact instead of retraining",
    )
    estimate_parser.add_argument(
        "--queries",
        type=int,
        default=100,
        help="number of queries to plan and estimate (default: 100)",
    )
    estimate_parser.add_argument(
        "--resource",
        choices=("cpu", "io", "both"),
        default="both",
        help="resource(s) to estimate (default: both)",
    )
    estimate_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    estimate_parser.add_argument(
        "--seed",
        type=int,
        default=23,
        help="random seed for query generation (default: 23)",
    )
    estimate_parser.add_argument(
        "--show",
        type=int,
        default=10,
        help="number of per-query estimates to print (default: 10)",
    )
    estimate_parser.add_argument(
        "--train-queries",
        type=int,
        default=_DEFAULT_TRAIN_QUERIES,
        help="training-workload size when no --model is given "
        f"(default: {_DEFAULT_TRAIN_QUERIES})",
    )
    estimate_parser.add_argument(
        "--train-seed",
        type=int,
        default=_DEFAULT_TRAIN_SEED,
        help="training-workload seed when no --model is given "
        f"(default: {_DEFAULT_TRAIN_SEED})",
    )
    estimate_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the profile's MART boosting iterations (in-memory training only)",
    )

    serve_parser = subparsers.add_parser(
        "serve-bench",
        help="benchmark concurrent coalesced serving against the sequential baseline",
    )
    serve_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="load discipline: closed-loop workers or open-loop Poisson arrivals",
    )
    serve_parser.add_argument(
        "--requests",
        type=int,
        default=1200,
        help="measured requests after warmup (default: 1200)",
    )
    serve_parser.add_argument(
        "--warmup",
        type=int,
        default=100,
        help="warmup requests excluded from the measurement (default: 100)",
    )
    serve_parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop worker threads (default: 8)",
    )
    serve_parser.add_argument(
        "--qps",
        type=float,
        default=200.0,
        help="open-loop offered arrival rate (default: 200)",
    )
    serve_parser.add_argument(
        "--seed",
        type=int,
        default=17,
        help="seed of the request trace (default: 17)",
    )
    serve_parser.add_argument(
        "--scenarios",
        choices=SCENARIO_MIXES,
        default="tpch",
        help="workload scenario mix (default: tpch)",
    )
    serve_parser.add_argument(
        "--pool-size",
        type=int,
        default=96,
        help="planned queries per scenario pool (default: 96)",
    )
    serve_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=96,
        help="coalesced plans that close a micro-batch (default: 96, "
        "headroom above the standard mix's heaviest burst)",
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="longest a micro-batch waits for more requests (default: 2.0)",
    )
    serve_parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="additional absolute p99 cap in ms (exit 1 when exceeded)",
    )
    serve_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the structured JSON record to this path",
    )
    serve_parser.add_argument(
        "--model",
        type=Path,
        default=None,
        help="serve from this model artifact instead of retraining",
    )
    serve_parser.add_argument(
        "--resource",
        choices=("cpu", "io", "both"),
        default="both",
        help="resource(s) to serve (default: both)",
    )
    serve_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    serve_parser.add_argument(
        "--train-queries",
        type=int,
        default=_DEFAULT_TRAIN_QUERIES,
        help="training-workload size when no --model is given "
        f"(default: {_DEFAULT_TRAIN_QUERIES})",
    )
    serve_parser.add_argument(
        "--train-seed",
        type=int,
        default=_DEFAULT_TRAIN_SEED,
        help="training-workload seed when no --model is given "
        f"(default: {_DEFAULT_TRAIN_SEED})",
    )
    serve_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the profile's MART boosting iterations (in-memory training only)",
    )

    models_parser = subparsers.add_parser(
        "models", help="inspect artifacts and manage model registries"
    )
    models_sub = models_parser.add_subparsers(dest="models_command")
    inspect_parser = models_sub.add_parser(
        "inspect", help="print format header, size report and registry manifest"
    )
    inspect_parser.add_argument("artifact", type=Path, help="model artifact path")
    list_parser = models_sub.add_parser(
        "list", help="list the versions of a model registry"
    )
    list_parser.add_argument(
        "--registry", type=Path, required=True, help="registry root directory"
    )
    diff_parser = models_sub.add_parser(
        "diff", help="compare two registry versions (manifests + metrics)"
    )
    diff_parser.add_argument(
        "--registry", type=Path, required=True, help="registry root directory"
    )
    diff_parser.add_argument("version_a", help="first version (e.g. v0001)")
    diff_parser.add_argument("version_b", help="second version (e.g. v0002)")
    promote_parser = models_sub.add_parser(
        "promote", help="make a registered version the active model"
    )
    promote_parser.add_argument(
        "--registry", type=Path, required=True, help="registry root directory"
    )
    promote_parser.add_argument("version", help="version to promote (e.g. v0002)")

    adapt_parser = subparsers.add_parser(
        "adapt-bench",
        help="drive the adaptive loop through a drifting TPC-H -> TPC-DS mix",
    )
    adapt_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the structured JSON record to this path",
    )
    adapt_parser.add_argument(
        "--registry",
        type=Path,
        default=None,
        help="keep the model registry here (default: a temporary directory)",
    )
    adapt_parser.add_argument(
        "--train-queries",
        type=int,
        default=96,
        help="TPC-H queries executed to train the incumbent (default: 96)",
    )
    adapt_parser.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="MART boosting iterations for incumbent and refits (default: 30)",
    )
    adapt_parser.add_argument(
        "--pool-size",
        type=int,
        default=32,
        help="planned queries per serving pool (default: 32)",
    )
    adapt_parser.add_argument(
        "--pre",
        type=int,
        default=96,
        help="pre-drift TPC-H requests (default: 96)",
    )
    adapt_parser.add_argument(
        "--drift",
        type=int,
        default=192,
        help="drifted TPC-DS requests (default: 192)",
    )
    adapt_parser.add_argument(
        "--post",
        type=int,
        default=96,
        help="post-swap TPC-DS requests (default: 96)",
    )
    adapt_parser.add_argument(
        "--seed",
        type=int,
        default=29,
        help="seed of workloads, pools and the refit split (default: 29)",
    )
    adapt_parser.add_argument(
        "--trip-threshold",
        type=float,
        default=0.25,
        help="rolling median relative error that trips drift (default: 0.25)",
    )
    adapt_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=16,
        help="coalesced plans that close a micro-batch (default: 16)",
    )
    adapt_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=0.5,
        help="longest a micro-batch waits for more requests (default: 0.5)",
    )

    lint_parser = subparsers.add_parser(
        "lint", help="check the repo's estimation invariants (static analysis)"
    )
    add_lint_arguments(lint_parser)
    return parser


def _run_one(experiment_id: str, config, output_dir: Path | None) -> str:
    started = time.perf_counter()
    result = run_experiment(experiment_id, config)
    elapsed = time.perf_counter() - started
    text = result.render()
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")
    return f"{text}\n[{experiment_id} completed in {elapsed:.1f}s]"


# ---------------------------------------------------------------------------
# train / estimate / models
# ---------------------------------------------------------------------------

def train_scaling_estimator(
    config: ExperimentConfig,
    resources: tuple[str, ...],
    n_queries: int = _DEFAULT_TRAIN_QUERIES,
    seed: int = _DEFAULT_TRAIN_SEED,
    iterations: int | None = None,
) -> ResourceEstimator:
    """Train the CLI's SCALING estimator (shared by ``train`` and ``estimate``).

    Deterministic in its arguments: ``train --out`` followed by
    ``estimate --model`` reproduces exactly what ``estimate`` without a
    model would have computed in memory with the same training parameters.
    """
    workload = build_tpch_workload(
        scale_factor=_TRAIN_SCALE,
        skew_z=config.tpch_skew,
        n_queries=n_queries,
        seed=seed,
    )
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    mart = config.mart
    if iterations is not None:
        mart = dataclasses.replace(mart, n_iterations=iterations)
    training_data = build_training_data(train, FeatureMode.EXACT)
    return ResourceEstimator.train(
        training_data,
        FeatureMode.EXACT,
        resources=resources,
        config=TrainerConfig(mart=mart),
    )


def _resources_from_arg(resource: str) -> tuple[str, ...]:
    return ("cpu", "io") if resource == "both" else (resource,)


def _run_train(args: argparse.Namespace) -> int:
    """Fit a SCALING estimator and persist it as a versioned artifact."""
    config = get_config(args.profile)
    resources = _resources_from_arg(args.resource)

    # Fail on an unwritable output path *before* the expensive training run.
    # The probe file is removed again so a failed or interrupted training
    # never leaves a zero-byte artifact behind.
    existed_before = args.out.exists()
    try:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.touch()
        if not existed_before:
            args.out.unlink()
    except OSError as exc:
        print(f"error: cannot write artifact {args.out}: {exc}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    estimator = train_scaling_estimator(
        config, resources, n_queries=args.queries, seed=args.train_seed,
        iterations=args.iterations,
    )
    train_seconds = time.perf_counter() - started

    try:
        estimator.save(args.out)
    except OSError as exc:
        print(f"error: cannot write artifact {args.out}: {exc}", file=sys.stderr)
        return 2
    artifact_bytes = args.out.stat().st_size
    report = ModelSizeReport.for_estimator(estimator)
    families = sorted({family.value for family, _ in estimator.model_sets})
    print(f"trained SCALING estimator on {args.queries} TPC-H queries "
          f"(profile={config.profile}, resources={'+'.join(resources)}) "
          f"in {train_seconds:.1f}s")
    print(f"model families: {', '.join(families)}")
    print(f"model sets: {report.n_model_sets}, models: {report.n_models}, "
          f"compact size: {report.total_bytes / 1024.0:.1f} KB")
    print(f"artifact: {args.out} ({artifact_bytes / 1024.0:.1f} KB, "
          f"format v{ARTIFACT_VERSION})")
    return 0


class _UsageError(Exception):
    """A request the CLI cannot serve as asked (exit code 2, not a data error)."""


def _load_native_estimator(path: Path) -> ResourceEstimator:
    """Load an artifact the CLI can serve, with a clear error otherwise.

    Technique-adapter artifacts are rejected on their magic bytes alone —
    they embed a pickle, which must never be deserialised just to find out
    the file is not servable here.
    """
    try:
        with path.open("rb") as handle:
            prefix = handle.read(len(ADAPTER_MAGIC))
    except OSError as exc:
        raise EstimatorCodecError(f"cannot read artifact {path}: {exc}") from exc
    if prefix == ADAPTER_MAGIC:
        raise EstimatorCodecError(
            f"{path} contains a pickled baseline technique; the CLI serves "
            "SCALING artifacts — load baseline artifacts with "
            "repro.api.load_artifact() instead"
        )
    return load_estimator(path)


def _serving_service(args: argparse.Namespace, config, resources) -> tuple[EstimationService, tuple[str, ...], str]:
    """Build the serving session: from an artifact, or train in memory."""
    if args.model is not None:
        service = EstimationService(_load_native_estimator(args.model))
        available = service.resources
        missing = [r for r in resources if r not in available]
        if missing and args.resource != "both":
            raise _UsageError(
                f"artifact {args.model} models {available}, not {missing[0]!r}"
            )
        served = tuple(r for r in resources if r in available) or available
        source = f"loaded from {args.model} (no retraining)"
        if missing:
            source += f"; artifact models {'+'.join(served)} only"
        return service, served, source
    estimator = train_scaling_estimator(
        config, resources, n_queries=args.train_queries, seed=args.train_seed,
        iterations=args.iterations,
    )
    return EstimationService(estimator), resources, "trained in memory"


def _run_estimate(args: argparse.Namespace) -> int:
    """Serve estimates for a fresh workload through an EstimationService."""
    config = get_config(args.profile)
    requested = _resources_from_arg(args.resource)
    try:
        service, resources, source = _serving_service(args, config, requested)
    except (EstimatorCodecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    catalog = build_tpch_catalog(scale_factor=_TRAIN_SCALE, skew_z=config.tpch_skew)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    queries = tpch_template_set().generate(catalog, args.queries, seed=args.seed)
    plans = [planner.plan(query) for query in queries]

    started = time.perf_counter()
    estimate = service.estimate_workload(plans, resources)
    elapsed = time.perf_counter() - started
    n_operators = sum(plan.operator_count() for plan in plans)

    unit = {"cpu": "us", "io": "logical reads"}
    print(f"model: {source}")
    for index in range(min(args.show, estimate.n_plans)):
        parts = ", ".join(
            f"{resource}={estimate.query(index, resource):,.0f} {unit[resource]}"
            for resource in resources
        )
        print(f"{plans[index].query.name}: {parts}")
    if estimate.n_plans > args.show:
        print(f"... and {estimate.n_plans - args.show} more queries")
    print()
    for resource in resources:
        total = float(estimate.query_totals(resource).sum())
        print(f"workload total ({resource}): {total:,.0f} {unit[resource]}")
    report = estimate.degradation
    if report is not None and not report.clean:
        print(f"degradation: {report.summary()}")
    print(
        f"estimated {estimate.n_plans} queries / {n_operators} operators "
        f"x {len(resources)} resource(s) in {elapsed:.3f}s "
        f"({estimate.n_plans / max(elapsed, 1e-12):,.0f} queries/s)"
    )
    return 0


def _run_serve_bench(args: argparse.Namespace) -> int:
    """Benchmark coalesced concurrent serving and gate on its SLOs."""
    config = get_config(args.profile)
    requested = _resources_from_arg(args.resource)
    try:
        load = LoadConfig(
            mode=args.mode,
            requests=args.requests,
            warmup=args.warmup,
            concurrency=args.concurrency,
            qps=args.qps,
            seed=args.seed,
        )
        bench_config = ServeBenchConfig(
            load=load,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        service, _, source = _serving_service(args, config, requested)
    except (EstimatorCodecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    scenarios = standard_scenarios(args.scenarios, pool_size=args.pool_size)
    result = run_serve_bench(service, scenarios, bench_config)

    print(f"model: {source}")
    print(result.render())
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            json.dumps(result.to_record(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"record: {args.out}")

    failed = False
    if result.report.errors:
        print(f"FAIL: {result.report.errors} request error(s)", file=sys.stderr)
        failed = True
    if not result.p99_within_budget:
        print(
            f"FAIL: p99 {result.report.latency.p99_ms:.2f} ms over the "
            f"{result.p99_budget_ms:.2f} ms budget",
            file=sys.stderr,
        )
        failed = True
    if args.max_p99_ms is not None and result.report.latency.p99_ms > args.max_p99_ms:
        print(
            f"FAIL: p99 {result.report.latency.p99_ms:.2f} ms over the "
            f"--max-p99-ms cap of {args.max_p99_ms:g} ms",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _open_registry(path: Path) -> ModelRegistry:
    """Open an *existing* registry; a missing directory is a data error."""
    if not path.is_dir():
        raise FileNotFoundError(f"model registry {path} does not exist")
    return ModelRegistry(path)


def _run_models_list(args: argparse.Namespace) -> int:
    """List every version of a registry, newest last."""
    try:
        registry = _open_registry(args.registry)
        versions = registry.versions()
        active = registry.active
        rows = [(version, registry.manifest(version)) for version in versions]
    except (FileNotFoundError, RegistryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not rows:
        print(f"registry {args.registry}: no registered models")
        return 0
    print(f"registry {args.registry}: {len(rows)} version(s), active: {active or '-'}")
    header = f"{'version':<8} {'status':<10} {'checksum':<14} {'corpus':<24} metrics"
    print(header)
    for version, manifest in rows:
        corpus = (
            f"{manifest.corpus.get('name', '?')} "
            f"({manifest.corpus.get('n_queries', '?')}q)"
        )
        metrics = "; ".join(
            f"{resource} " + ", ".join(f"{k}={v:.3f}" for k, v in sorted(values.items()))
            for resource, values in sorted(manifest.metrics.items())
        )
        marker = "*" if version == active else " "
        print(
            f"{version:<7}{marker} {manifest.status:<10} "
            f"{manifest.checksum[:12]:<14} {corpus:<24} {metrics or '-'}"
        )
    return 0


def _run_models_diff(args: argparse.Namespace) -> int:
    """Print a structured comparison of two registry versions."""
    try:
        registry = _open_registry(args.registry)
        diff = registry.diff(args.version_a, args.version_b)
    except (FileNotFoundError, RegistryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = diff["status"]
    assert isinstance(status, dict)
    print(f"diff {args.version_a} ({status['a']}) -> {args.version_b} ({status['b']})")
    print(f"identical artifacts: {'yes' if diff['identical_artifacts'] else 'no'}")
    print(f"corpus changed: {'yes' if diff['corpus_changed'] else 'no'}")
    corpus = diff["corpus"]
    assert isinstance(corpus, dict)
    for side in ("a", "b"):
        fp = corpus[side]
        print(
            f"  {side}: {fp.get('name', '?')} — {fp.get('n_queries', '?')} queries / "
            f"{fp.get('n_operators', '?')} operators, digest "
            f"{str(fp.get('digest', '?'))[:12]}"
        )
    metrics_delta = diff["metrics_delta"]
    metrics = diff["metrics"]
    assert isinstance(metrics_delta, dict) and isinstance(metrics, dict)
    for resource, deltas in sorted(metrics_delta.items()):
        for metric, delta in sorted(deltas.items()):
            print(f"  {resource}/{metric}: {delta:+.4f} (b - a)")
        one_sided = (
            set(metrics["a"].get(resource, {})) ^ set(metrics["b"].get(resource, {}))
        )
        for metric in sorted(one_sided):
            side = "a" if metric in metrics["a"].get(resource, {}) else "b"
            value = metrics[side][resource][metric]
            print(
                f"  {resource}/{metric}: {value:.4f} on {side} only "
                f"({'b' if side == 'a' else 'a'} unmeasured)"
            )
    lineage = diff["lineage"]
    assert isinstance(lineage, dict)
    print(
        f"lineage: {args.version_a} <- {lineage['a_parent'] or 'seed'}, "
        f"{args.version_b} <- {lineage['b_parent'] or 'seed'}"
    )
    return 0


def _run_models_promote(args: argparse.Namespace) -> int:
    """Promote a registered version to active."""
    try:
        registry = _open_registry(args.registry)
        previous = registry.active
        manifest = registry.promote(args.version, note="promoted via CLI")
    except (FileNotFoundError, RegistryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"promoted {manifest.version} (checksum {manifest.checksum[:12]}); "
        f"previous active: {previous or '-'}"
    )
    return 0


def _run_adapt_bench(args: argparse.Namespace) -> int:
    """Run the adaptive-loop scenario and gate on its checks."""
    from repro.adaptive.bench import run_adapt_bench

    try:
        record = run_adapt_bench(
            out_path=args.out,
            registry_root=args.registry,
            train_queries=args.train_queries,
            iterations=args.iterations,
            pool_size=args.pool_size,
            pre_requests=args.pre,
            drift_requests=args.drift,
            post_requests=args.post,
            seed=args.seed,
            trip_threshold=args.trip_threshold,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    phases = record["phases"]
    checks = record["checks"]
    serving = record["serving"]
    registry_state = record["registry"]
    assert isinstance(phases, dict) and isinstance(checks, dict)
    assert isinstance(serving, dict) and isinstance(registry_state, dict)
    for name in ("pre_drift", "drifted", "post_swap"):
        phase = phases[name]
        errors = ", ".join(
            f"{resource}={value:.3f}"
            for resource, value in sorted(phase["median_relative_error"].items())
        )
        print(
            f"{name:>9}: {phase['requests']} requests, "
            f"median relative error {errors}, "
            f"swaps {phase['swaps_during_phase']}"
        )
    print(
        f"registry: {len(registry_state['versions'])} version(s), "
        f"active {registry_state['active']}"
    )
    print(
        f"serving: {serving['requests']} requests, "
        f"{serving['failed_requests']} failed, {serving['dropped_requests']} dropped, "
        f"{serving['swaps']} swap(s), {serving['failed_swaps']} failed swap(s)"
    )
    if args.out is not None:
        print(f"record: {args.out}")
    failed = False
    for check, passed in sorted(checks.items()):
        if not passed:
            print(f"FAIL: check {check!r} did not hold", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _run_models_inspect(args: argparse.Namespace) -> int:
    """Print the format header and ModelSizeReport of a model artifact."""
    try:
        estimator = _load_native_estimator(args.artifact)
        artifact_version = read_artifact_version(args.artifact)
    except (EstimatorCodecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = ModelSizeReport.for_estimator(estimator)
    print(f"artifact: {args.artifact} ({args.artifact.stat().st_size:,} bytes on disk)")
    print(f"format version: {artifact_version}")
    print(f"feature mode: {estimator.feature_mode.value}")
    print(f"resources: {', '.join(estimator.resources)}")
    families = sorted({family.value for family, _ in estimator.model_sets})
    print(f"families: {', '.join(families)}")
    print(f"model sets: {report.n_model_sets}")
    print(f"models: {report.n_models}")
    print(f"compact-encoding size: {report.total_bytes:,} bytes")
    print(f"largest single model: {report.largest_single_model_bytes:,} bytes")
    if artifact_version >= 3:
        ensembles: dict[int, object] = {}
        for model_set in estimator.model_sets.values():
            for combined in [*model_set.models, model_set.default_model]:
                ensembles.setdefault(id(combined), combined)
        n_trees = n_nodes = array_bytes = 0
        dtype_summary = ""
        for combined in ensembles.values():
            stats = combined.model_.flat_forest().stats()
            n_trees += stats.n_trees
            n_nodes += stats.n_nodes
            array_bytes += stats.array_bytes
            dtype_summary = stats.dtype_summary
        print(
            f"flat layout: {n_trees:,} trees / {n_nodes:,} nodes across "
            f"{len(ensembles)} compiled ensemble(s), {array_bytes:,} bytes "
            f"({dtype_summary})"
        )
    else:
        print(
            "flat layout: not persisted (version < 3); trees will compile to "
            "flat arrays on first predict"
        )
    manifest = manifest_for_artifact(args.artifact)
    if manifest is not None:
        print(f"registry version: {manifest.version} ({manifest.status})")
        print(f"registry checksum: {manifest.checksum}")
        print(
            "corpus fingerprint: "
            f"{manifest.corpus.get('name', '?')} — "
            f"{manifest.corpus.get('n_queries', '?')} queries / "
            f"{manifest.corpus.get('n_operators', '?')} operators "
            f"({manifest.corpus.get('mode', '?')} features), digest "
            f"{str(manifest.corpus.get('digest', '?'))[:12]}"
        )
        for resource, values in sorted(manifest.metrics.items()):
            rendered = ", ".join(f"{k}={v:.4f}" for k, v in sorted(values.items()))
            print(f"train metrics ({resource}): {rendered}")
        print(f"lineage: refit of {manifest.parent or 'none (seed model)'}")
        if manifest.note:
            print(f"note: {manifest.note}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code (0 ok / 1 findings / 2 usage).

    argparse terminates the process on ``--version``, ``--help`` and usage
    errors; embedding callers (tests, servers) call ``main`` directly, so
    those :class:`SystemExit` outcomes are converted into the documented
    return codes instead of unwinding through the caller.
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    if args.command is None:
        parser.print_usage(sys.stderr)
        print(
            f"{parser.prog}: error: a subcommand is required "
            "(list, run, train, estimate, serve-bench, adapt-bench, models)",
            file=sys.stderr,
        )
        return 2

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "train":
        return _run_train(args)

    if args.command == "estimate":
        return _run_estimate(args)

    if args.command == "serve-bench":
        return _run_serve_bench(args)

    if args.command == "adapt-bench":
        return _run_adapt_bench(args)

    if args.command == "lint":
        return run_lint_command(args)

    if args.command == "models":
        handlers = {
            "inspect": _run_models_inspect,
            "list": _run_models_list,
            "diff": _run_models_diff,
            "promote": _run_models_promote,
        }
        handler = handlers.get(args.models_command or "")
        if handler is None:
            print(
                f"{parser.prog}: error: usage: models "
                "{inspect <artifact> | list | diff | promote} [--registry DIR]",
                file=sys.stderr,
            )
            return 2
        return handler(args)

    config = get_config(args.profile)
    if args.experiment == "all":
        experiment_ids = sorted(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        experiment_ids = [args.experiment]
    else:
        known = ", ".join(sorted(EXPERIMENTS))
        print(
            f"{parser.prog}: error: unknown experiment {args.experiment!r}; "
            f"known: {known}, or 'all'",
            file=sys.stderr,
        )
        return 2

    for experiment_id in experiment_ids:
        print(_run_one(experiment_id, config, args.output))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
