"""Command-line interface for the reproduction.

Usage (module form, no installation entry point required)::

    python -m repro.cli list
    python -m repro.cli run table_4 [--profile fast|paper] [--output results/]
    python -m repro.cli run all --output results/
    python -m repro.cli estimate [--queries N] [--resource cpu|io] [--profile ...]

``run`` executes one registered experiment (or ``all`` of them) and prints
the regenerated table/figure; with ``--output`` the rendered results are
also written to one text file per experiment, mirroring what the benchmark
suite stores under ``benchmarks/results/``.

``estimate`` exercises the production serving path: it trains a SCALING
estimator on the profile's TPC-H workload, plans a batch of fresh queries
and estimates all of them with one ``estimate_workload`` call, reporting
per-query estimates and end-to-end throughput.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.catalog.statistics import StatisticsCatalog
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.experiments.config import get_config
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.features.definitions import FeatureMode
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro.cli`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment identifier (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write rendered results into (one file per experiment)",
    )

    estimate_parser = subparsers.add_parser(
        "estimate", help="batch-estimate a freshly planned TPC-H workload"
    )
    estimate_parser.add_argument(
        "--queries",
        type=int,
        default=100,
        help="number of queries to plan and estimate (default: 100)",
    )
    estimate_parser.add_argument(
        "--resource",
        choices=("cpu", "io", "both"),
        default="both",
        help="resource(s) to estimate (default: both)",
    )
    estimate_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    estimate_parser.add_argument(
        "--seed",
        type=int,
        default=23,
        help="random seed for query generation (default: 23)",
    )
    estimate_parser.add_argument(
        "--show",
        type=int,
        default=10,
        help="number of per-query estimates to print (default: 10)",
    )
    return parser


def _run_one(experiment_id: str, config, output_dir: Path | None) -> str:
    started = time.perf_counter()
    result = run_experiment(experiment_id, config)
    elapsed = time.perf_counter() - started
    text = result.render()
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")
    return f"{text}\n[{experiment_id} completed in {elapsed:.1f}s]"


def _run_estimate(args: argparse.Namespace) -> int:
    """Train once, then batch-estimate a fresh workload via estimate_workload."""
    config = get_config(args.profile)
    resources = ("cpu", "io") if args.resource == "both" else (args.resource,)

    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    training_data = build_training_data(train, FeatureMode.EXACT)
    estimator = ResourceEstimator.train(
        training_data,
        FeatureMode.EXACT,
        resources=resources,
        config=TrainerConfig(mart=config.mart),
    )

    planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
    queries = tpch_template_set().generate(workload.catalog, args.queries, seed=args.seed)
    plans = [planner.plan(query) for query in queries]

    started = time.perf_counter()
    estimate = estimator.estimate_workload(plans, resources)
    elapsed = time.perf_counter() - started
    n_operators = sum(plan.operator_count() for plan in plans)

    unit = {"cpu": "us", "io": "logical reads"}
    for index in range(min(args.show, estimate.n_plans)):
        parts = ", ".join(
            f"{resource}={estimate.query(index, resource):,.0f} {unit[resource]}"
            for resource in resources
        )
        print(f"{plans[index].query.name}: {parts}")
    if estimate.n_plans > args.show:
        print(f"... and {estimate.n_plans - args.show} more queries")
    print()
    for resource in resources:
        total = float(estimate.query_totals(resource).sum())
        print(f"workload total ({resource}): {total:,.0f} {unit[resource]}")
    print(
        f"estimated {estimate.n_plans} queries / {n_operators} operators "
        f"x {len(resources)} resource(s) in {elapsed:.3f}s "
        f"({estimate.n_plans / max(elapsed, 1e-12):,.0f} queries/s)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "estimate":
        return _run_estimate(args)

    config = get_config(args.profile)
    if args.experiment == "all":
        experiment_ids = sorted(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        experiment_ids = [args.experiment]
    else:
        known = ", ".join(sorted(EXPERIMENTS))
        parser.error(f"unknown experiment {args.experiment!r}; known: {known}, or 'all'")
        return 2  # pragma: no cover - parser.error raises SystemExit

    for experiment_id in experiment_ids:
        print(_run_one(experiment_id, config, args.output))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
