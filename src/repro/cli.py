"""Command-line interface for the reproduction.

Usage (module form, no installation entry point required)::

    python -m repro.cli list
    python -m repro.cli run table_4 [--profile fast|paper] [--output results/]
    python -m repro.cli run all --output results/

``run`` executes one registered experiment (or ``all`` of them) and prints
the regenerated table/figure; with ``--output`` the rendered results are
also written to one text file per experiment, mirroring what the benchmark
suite stores under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.config import get_config
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro.cli`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment identifier (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--profile",
        choices=("fast", "paper"),
        default=None,
        help="experiment profile (default: REPRO_PROFILE or 'fast')",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write rendered results into (one file per experiment)",
    )
    return parser


def _run_one(experiment_id: str, config, output_dir: Path | None) -> str:
    started = time.perf_counter()
    result = run_experiment(experiment_id, config)
    elapsed = time.perf_counter() - started
    text = result.render()
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")
    return f"{text}\n[{experiment_id} completed in {elapsed:.1f}s]"


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    config = get_config(args.profile)
    if args.experiment == "all":
        experiment_ids = sorted(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        experiment_ids = [args.experiment]
    else:
        known = ", ".join(sorted(EXPERIMENTS))
        parser.error(f"unknown experiment {args.experiment!r}; known: {known}, or 'all'")
        return 2  # pragma: no cover - parser.error raises SystemExit

    for experiment_id in experiment_ids:
        print(_run_one(experiment_id, config, args.output))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
