"""Training-data transformation for scaled models (paper Section 6.1).

A *scaled model* differs from the default model in three ways:

1. it predicts resource usage per unit of the scaling function value,
   i.e. the training targets are divided by ``g(F̂)``;
2. the outlier feature ``F̂`` is removed from the input feature set;
3. every feature that *depends* on ``F̂`` (Table 3) is normalised by dividing
   its value by ``F̂`` — both at training time and at prediction time —
   so that a single root cause (e.g. an excessive tuple count) does not get
   scaled twice.

This module implements those transformations as pure functions over feature
dictionaries.  They are the *reference* scalar implementation: the production
path in :class:`~repro.core.combined_model.CombinedModel` applies the same
rules vectorised over matrices (``transform_matrix`` / ``_step_factors``),
and the batch-estimation test suite pins the two implementations against
each other.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scaling import ScalingFunction
from repro.features.dependencies import dependent_features

__all__ = ["MIN_DIVISOR", "ScalingStep", "transform_feature_dict", "transform_targets"]

#: Guard against division by zero when normalising dependent features.  The
#: batched matrix transform in :mod:`repro.core.combined_model` applies the
#: same floor so scalar and vectorised paths stay numerically identical.
MIN_DIVISOR = 1e-9
_MIN_DIVISOR = MIN_DIVISOR


@dataclass(frozen=True)
class ScalingStep:
    """One (feature, scaling function) pair of a combined model.

    Multi-feature scaling applies steps sequentially: the model is first
    scaled by ``steps[0]``, the resulting scaled model by ``steps[1]``, etc.
    (Section 6.1, "Scaling by Multiple Features").
    """

    feature: str
    function: ScalingFunction

    def scale_value(self, feature_value: float) -> float:
        """The multiplicative factor ``g(F̂)`` contributed by this step."""
        return float(self.function(max(feature_value, 0.0)))


def transform_feature_dict(
    values: dict[str, float], steps: tuple[ScalingStep, ...]
) -> dict[str, float]:
    """Apply scaling-feature removal and dependent-feature normalisation.

    Returns a new dictionary with the scaling features removed and every
    dependent feature divided by the raw value of its scaling feature.  The
    input dictionary is not modified.
    """
    transformed = dict(values)
    for step in steps:
        raw = transformed.get(step.feature, values.get(step.feature, 0.0))
        divisor = max(abs(raw), _MIN_DIVISOR)
        for dependent in dependent_features(step.feature):
            if dependent in transformed:
                transformed[dependent] = transformed[dependent] / divisor
        transformed.pop(step.feature, None)
    return transformed


def transform_targets(
    feature_rows: list[dict[str, float]],
    targets: np.ndarray,
    steps: tuple[ScalingStep, ...],
) -> np.ndarray:
    """Divide each target by the product of the scaling factors of its row."""
    targets = np.asarray(targets, dtype=np.float64)
    if not steps:
        return targets.copy()
    scaled = targets.copy()
    for i, row in enumerate(feature_rows):
        factor = 1.0
        for step in steps:
            factor *= max(step.scale_value(row.get(step.feature, 0.0)), _MIN_DIVISOR)
        scaled[i] = targets[i] / factor
    return scaled
