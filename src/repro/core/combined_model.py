"""Combined models: scaling function ∘ scaled MART model (paper Section 6).

A :class:`CombinedModel` with zero scaling steps is a plain ("default-style")
MART model over the raw operator features.  With one or more scaling steps,
the underlying MART model is trained on transformed data (targets divided by
the scaling factors, scaling features removed, dependent features
normalised) and predictions are multiplied back up by the scaling factors.

Every model records the training range (low/high) of each of its *own* input
features — in its own transformed space — which is what the out_ratio model
selection heuristic compares against at estimation time.

Prediction is matrix-first: :meth:`CombinedModel.predict_batch` evaluates a
contiguous ``(n, len(feature_names))`` float64 matrix through a single
vectorised transform + MART pass, and the scalar :meth:`CombinedModel.predict`
is a one-row wrapper over it, so scalar/batch parity holds by construction.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.scaled_model import MIN_DIVISOR, ScalingStep
from repro.features.definitions import OperatorFamily
from repro.features.dependencies import dependent_features
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.ml.metrics import l1_relative_error

__all__ = ["CombinedModel"]


@dataclass
class CombinedModel:
    """A (possibly scaled) MART model for one operator family and resource."""

    family: OperatorFamily
    resource: str
    feature_names: tuple[str, ...]
    steps: tuple[ScalingStep, ...] = ()
    mart_config: MARTConfig = field(default_factory=MARTConfig)

    def __post_init__(self) -> None:
        self.model_: MARTRegressor | None = None
        #: Input feature names of the scaled model (scaling features removed).
        self.input_features_: tuple[str, ...] = tuple(
            name for name in self.feature_names if name not in self.scaling_feature_names
        )
        self._column_index: dict[str, int] = {
            name: i for i, name in enumerate(self.feature_names)
        }
        self._input_columns: list[int] = [
            self._column_index[name] for name in self.input_features_
        ]
        self.training_low_: dict[str, float] = {}
        self.training_high_: dict[str, float] = {}
        self.training_error_: float = float("inf")
        self.n_training_rows_: int = 0
        #: Range of the (scaled) training targets; scaled-model outputs are
        #: clamped to it at prediction time (see ``predict``).
        self.scaled_target_low_: float = 0.0
        self.scaled_target_high_: float = float("inf")

    # -- identity -----------------------------------------------------------------------------
    @property
    def scaling_feature_names(self) -> tuple[str, ...]:
        return tuple(step.feature for step in self.steps)

    @property
    def n_scaling_features(self) -> int:
        return len(self.steps)

    @property
    def is_default_form(self) -> bool:
        """True when the model uses no scaling at all."""
        return not self.steps

    @property
    def name(self) -> str:
        if not self.steps:
            return f"{self.family.value}/{self.resource}/plain"
        parts = "+".join(f"{s.feature}:{s.function.name}" for s in self.steps)
        return f"{self.family.value}/{self.resource}/scaled[{parts}]"

    # -- matrix plumbing ------------------------------------------------------------------------
    def feature_matrix(self, feature_rows: Sequence[dict[str, float]]) -> np.ndarray:
        """Dense ``(n, len(feature_names))`` matrix in this model's raw feature order."""
        return np.array(
            [[row.get(name, 0.0) for name in self.feature_names] for row in feature_rows],
            dtype=np.float64,
        ).reshape(len(feature_rows), len(self.feature_names))

    def transform_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorised scaling transform of a raw feature matrix.

        Applies the same sequential steps as
        :func:`~repro.core.scaled_model.transform_feature_dict` — dependent
        columns divided by the scaling feature's current value, scaling
        columns removed — and returns the ``(n, len(input_features_))``
        matrix the scaled MART model consumes.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if not self.steps:
            return matrix[:, self._input_columns]
        work = matrix.copy()
        removed: set[str] = set()
        for step in self.steps:
            column = self._column_index.get(step.feature)
            if column is None:
                raw = np.zeros(work.shape[0], dtype=np.float64)
            elif step.feature in removed:
                raw = matrix[:, column]
            else:
                raw = work[:, column]
            divisor = np.maximum(np.abs(raw), MIN_DIVISOR)
            for dependent in dependent_features(step.feature):
                dep_column = self._column_index.get(dependent)
                if dep_column is not None and dependent not in removed:
                    work[:, dep_column] /= divisor
            removed.add(step.feature)
        return work[:, self._input_columns]

    def _step_factors(self, matrix: np.ndarray, floor: float) -> np.ndarray:
        """Per-row product of the scaling-function values over the raw matrix."""
        factors = np.ones(matrix.shape[0], dtype=np.float64)
        for step in self.steps:
            column = self._column_index.get(step.feature)
            if column is None:
                values = np.zeros(matrix.shape[0], dtype=np.float64)
            else:
                values = matrix[:, column]
            scale = np.asarray(step.function(np.maximum(values, 0.0)), dtype=np.float64)
            factors *= np.maximum(scale, floor)
        return factors

    def scale_factors(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row multiplicative scaling factors for a raw feature matrix."""
        return self._step_factors(np.asarray(matrix, dtype=np.float64), floor=0.0)

    # -- training ------------------------------------------------------------------------------
    def fit(self, feature_rows: list[dict[str, float]], targets: np.ndarray) -> "CombinedModel":
        """Train the underlying MART model on transformed data."""
        if not len(feature_rows):
            raise ValueError(f"{self.name}: cannot train on an empty dataset")
        targets = np.asarray(targets, dtype=np.float64)
        raw = self.feature_matrix(feature_rows)
        matrix = self.transform_matrix(raw)
        # Targets are divided per-step with the same floor transform_targets
        # uses, so training stays numerically identical to the dict path.
        scaled_targets = targets / self._step_factors(raw, floor=MIN_DIVISOR)
        self.model_ = MARTRegressor(self.mart_config)
        self.model_.fit(matrix, scaled_targets)
        self.n_training_rows_ = len(feature_rows)
        self._record_ranges(matrix)
        self.scaled_target_low_ = float(scaled_targets.min())
        self.scaled_target_high_ = float(scaled_targets.max())
        # Training error (used to pick the family's default model): predict in
        # batch on the already-transformed matrix and scale back up.
        predictions = np.maximum(self.model_.predict(matrix) * self.scale_factors(raw), 0.0)
        self.training_error_ = l1_relative_error(predictions, targets)
        return self

    def _record_ranges(self, matrix: np.ndarray) -> None:
        lows = matrix.min(axis=0)
        highs = matrix.max(axis=0)
        self.training_low_ = {
            name: float(lows[i]) for i, name in enumerate(self.input_features_)
        }
        self.training_high_ = {
            name: float(highs[i]) for i, name in enumerate(self.input_features_)
        }

    # -- prediction ------------------------------------------------------------------------------
    def predict_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Estimate the resource for ``n`` operator instances at once.

        ``matrix`` holds one row per instance with columns in
        ``feature_names`` order.  For scaled models the MART output is a
        *per-unit* quantity (e.g. CPU per input tuple); it is clamped to the
        per-unit range observed during training, since the magnitude of the
        estimate is carried by the scaling function and per-unit costs
        outside the observed range are an artefact of boosting overshoot
        rather than a meaningful prediction.
        """
        if self.model_ is None:
            raise RuntimeError(f"{self.name} has not been trained")
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.feature_names):
            raise ValueError(
                f"{self.name}: expected an (n, {len(self.feature_names)}) matrix, "
                f"got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        estimates = self.model_.predict(self.transform_matrix(matrix))
        if self.steps:
            estimates = np.clip(estimates, self.scaled_target_low_, self.scaled_target_high_)
        return np.maximum(estimates * self.scale_factors(matrix), 0.0)

    def predict(self, feature_values: dict[str, float]) -> float:
        """Estimate the resource for one operator instance.

        Thin one-row wrapper over :meth:`predict_batch`.
        """
        return float(self.predict_batch(self.feature_matrix([feature_values]))[0])

    # -- model selection support --------------------------------------------------------------------
    def out_ratio_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row, per-input-feature out-of-range ratios (in transformed space).

        Each entry is the distance of the (transformed) feature value from the
        model's training interval, normalised by the interval width; 0 means
        the value was covered during training.  Features this model scales by
        are not inputs of its scaled MART model, so they never contribute.
        """
        transformed = self.transform_matrix(np.asarray(matrix, dtype=np.float64))
        n = transformed.shape[0]
        if not self.input_features_:
            return np.zeros((n, 0), dtype=np.float64)
        known = np.array(
            [name in self.training_low_ for name in self.input_features_], dtype=bool
        )
        lows = np.array(
            [self.training_low_.get(name, 0.0) for name in self.input_features_],
            dtype=np.float64,
        )
        highs = np.array(
            [self.training_high_.get(name, 0.0) for name in self.input_features_],
            dtype=np.float64,
        )
        widths = np.maximum(highs - lows, 1e-9)
        ratios = (
            np.maximum(lows - transformed, 0.0) + np.maximum(transformed - highs, 0.0)
        ) / widths
        ratios[:, ~known] = 0.0
        return ratios

    def out_ratio_profiles(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row out_ratios sorted descending along axis 1 (for tie-breaking)."""
        return np.sort(self.out_ratio_matrix(matrix), axis=1)[:, ::-1]

    def out_ratio(self, feature_values: dict[str, float], feature: str) -> float:
        """How far outside the training range ``feature`` falls for this model."""
        if feature not in self.training_low_:
            return 0.0
        row = self.feature_matrix([feature_values])
        return float(self.out_ratio_matrix(row)[0, self.input_features_.index(feature)])

    def out_ratio_profile(self, feature_values: dict[str, float]) -> list[float]:
        """All per-feature out_ratios, sorted descending (for tie-breaking)."""
        return [float(v) for v in self.out_ratio_profiles(self.feature_matrix([feature_values]))[0]]

    def max_out_ratio(self, feature_values: dict[str, float]) -> float:
        profile = self.out_ratio_profile(feature_values)
        return profile[0] if profile else 0.0
