"""Combined models: scaling function ∘ scaled MART model (paper Section 6).

A :class:`CombinedModel` with zero scaling steps is a plain ("default-style")
MART model over the raw operator features.  With one or more scaling steps,
the underlying MART model is trained on transformed data (targets divided by
the scaling factors, scaling features removed, dependent features
normalised) and predictions are multiplied back up by the scaling factors.

Every model records the training range (low/high) of each of its *own* input
features — in its own transformed space — which is what the out_ratio model
selection heuristic compares against at estimation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scaled_model import ScalingStep, transform_feature_dict, transform_targets
from repro.features.definitions import OperatorFamily
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.ml.metrics import l1_relative_error

__all__ = ["CombinedModel"]


@dataclass
class CombinedModel:
    """A (possibly scaled) MART model for one operator family and resource."""

    family: OperatorFamily
    resource: str
    feature_names: tuple[str, ...]
    steps: tuple[ScalingStep, ...] = ()
    mart_config: MARTConfig = field(default_factory=MARTConfig)

    def __post_init__(self) -> None:
        self.model_: MARTRegressor | None = None
        #: Input feature names of the scaled model (scaling features removed).
        self.input_features_: tuple[str, ...] = tuple(
            name for name in self.feature_names if name not in self.scaling_feature_names
        )
        self.training_low_: dict[str, float] = {}
        self.training_high_: dict[str, float] = {}
        self.training_error_: float = float("inf")
        self.n_training_rows_: int = 0
        #: Range of the (scaled) training targets; scaled-model outputs are
        #: clamped to it at prediction time (see ``predict``).
        self.scaled_target_low_: float = 0.0
        self.scaled_target_high_: float = float("inf")

    # -- identity -----------------------------------------------------------------------------
    @property
    def scaling_feature_names(self) -> tuple[str, ...]:
        return tuple(step.feature for step in self.steps)

    @property
    def n_scaling_features(self) -> int:
        return len(self.steps)

    @property
    def is_default_form(self) -> bool:
        """True when the model uses no scaling at all."""
        return not self.steps

    @property
    def name(self) -> str:
        if not self.steps:
            return f"{self.family.value}/{self.resource}/plain"
        parts = "+".join(f"{s.feature}:{s.function.name}" for s in self.steps)
        return f"{self.family.value}/{self.resource}/scaled[{parts}]"

    # -- training ------------------------------------------------------------------------------
    def fit(self, feature_rows: list[dict[str, float]], targets: np.ndarray) -> "CombinedModel":
        """Train the underlying MART model on transformed data."""
        if not feature_rows:
            raise ValueError(f"{self.name}: cannot train on an empty dataset")
        targets = np.asarray(targets, dtype=np.float64)
        transformed_rows = [transform_feature_dict(row, self.steps) for row in feature_rows]
        scaled_targets = transform_targets(feature_rows, targets, self.steps)
        matrix = self._matrix(transformed_rows)
        self.model_ = MARTRegressor(self.mart_config)
        self.model_.fit(matrix, scaled_targets)
        self.n_training_rows_ = len(feature_rows)
        self._record_ranges(matrix)
        self.scaled_target_low_ = float(scaled_targets.min())
        self.scaled_target_high_ = float(scaled_targets.max())
        # Training error (used to pick the family's default model): predict in
        # batch on the already-transformed matrix and scale back up.
        scaled_predictions = self.model_.predict(matrix)
        factors = np.array(
            [self._scale_factor(row) for row in feature_rows], dtype=np.float64
        )
        predictions = np.maximum(scaled_predictions * factors, 0.0)
        self.training_error_ = l1_relative_error(predictions, targets)
        return self

    def _scale_factor(self, feature_values: dict[str, float]) -> float:
        """Product of the scaling-function values for one raw feature row."""
        factor = 1.0
        for step in self.steps:
            factor *= max(step.scale_value(feature_values.get(step.feature, 0.0)), 0.0)
        return factor

    def _matrix(self, transformed_rows: list[dict[str, float]]) -> np.ndarray:
        return np.array(
            [[row.get(name, 0.0) for name in self.input_features_] for row in transformed_rows],
            dtype=np.float64,
        )

    def _record_ranges(self, matrix: np.ndarray) -> None:
        lows = matrix.min(axis=0)
        highs = matrix.max(axis=0)
        self.training_low_ = {
            name: float(lows[i]) for i, name in enumerate(self.input_features_)
        }
        self.training_high_ = {
            name: float(highs[i]) for i, name in enumerate(self.input_features_)
        }

    # -- prediction ------------------------------------------------------------------------------
    def predict(self, feature_values: dict[str, float]) -> float:
        """Estimate the resource for one operator instance.

        For scaled models the MART output is a *per-unit* quantity (e.g. CPU
        per input tuple); it is clamped to the per-unit range observed during
        training, since the magnitude of the estimate is carried by the
        scaling function and per-unit costs outside the observed range are an
        artefact of boosting overshoot rather than a meaningful prediction.
        """
        if self.model_ is None:
            raise RuntimeError(f"{self.name} has not been trained")
        transformed = transform_feature_dict(feature_values, self.steps)
        vector = np.array(
            [transformed.get(name, 0.0) for name in self.input_features_], dtype=np.float64
        )
        estimate = float(self.model_.predict(vector)[0])
        if self.steps:
            estimate = min(max(estimate, self.scaled_target_low_), self.scaled_target_high_)
        estimate *= self._scale_factor(feature_values)
        return max(estimate, 0.0)

    # -- model selection support --------------------------------------------------------------------
    def out_ratio(self, feature_values: dict[str, float], feature: str) -> float:
        """How far outside the training range ``feature`` falls for this model.

        The ratio is the distance of the (transformed) feature value from the
        training interval, normalised by the interval width; 0 means the
        value was covered during training.  Features this model scales by
        are not inputs of its scaled MART model, so they never contribute.
        """
        if feature not in self.training_low_:
            return 0.0
        transformed = transform_feature_dict(feature_values, self.steps)
        value = transformed.get(feature, 0.0)
        low = self.training_low_[feature]
        high = self.training_high_[feature]
        width = max(high - low, 1e-9)
        if value < low:
            return (low - value) / width
        if value > high:
            return (value - high) / width
        return 0.0

    def out_ratio_profile(self, feature_values: dict[str, float]) -> list[float]:
        """All per-feature out_ratios, sorted descending (for tie-breaking)."""
        ratios = [self.out_ratio(feature_values, name) for name in self.input_features_]
        return sorted(ratios, reverse=True)

    def max_out_ratio(self, feature_values: dict[str, float]) -> float:
        profile = self.out_ratio_profile(feature_values)
        return profile[0] if profile else 0.0
