"""Scaling functions and the framework that selects them (paper Section 6.2).

A scaling function models the asymptotic effect of one feature on resource
usage: linear for per-tuple costs (filters, scans), ``n·log n`` for sorts,
logarithmic for index-depth effects, and two-input forms (sum, product,
``outer × log(inner)``) for join operators.  During training the framework
generates observations in which one feature is varied while all independent
features stay fixed, fits each candidate function by least squares and picks
the one with the smallest L2 error — this is how Figures 7 and 8 of the
paper choose ``n·log n`` scaling for Sort CPU and
``C_outer × log2(C_inner)`` scaling for index nested loop joins.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.features.definitions import OperatorFamily

__all__ = [
    "ScalingFunction",
    "SCALING_FUNCTIONS",
    "TWO_INPUT_SCALING_FUNCTIONS",
    "make_scaling_function",
    "default_scaling_function",
    "FittedScaling",
    "ScalingFunctionSelector",
    "fit_robust_scaling",
]


@dataclass(frozen=True)
class ScalingFunction:
    """A fixed functional form ``g`` applied to one or two feature values.

    The combined models multiply a scaled model's output by ``g(F)``; the
    selection framework additionally fits a proportionality constant
    ``alpha`` when comparing candidate forms against observed resource
    curves.
    """

    name: str
    arity: int
    _fn: Callable[..., np.ndarray]

    def __call__(self, *values: float | np.ndarray) -> np.ndarray | float:
        if len(values) != self.arity:
            raise ValueError(
                f"scaling function {self.name!r} expects {self.arity} inputs, got {len(values)}"
            )
        arrays = [np.asarray(v, dtype=np.float64) for v in values]
        result = self._fn(*arrays)
        if all(np.isscalar(v) or np.ndim(v) == 0 for v in values):
            return float(result)
        return result

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _safe_log2(x: np.ndarray) -> np.ndarray:
    return np.log2(np.maximum(x, 1.0) + 1.0)


#: Single-input scaling functions considered by the selection framework.
SCALING_FUNCTIONS: dict[str, ScalingFunction] = {
    "linear": ScalingFunction("linear", 1, lambda x: x),
    "nlogn": ScalingFunction("nlogn", 1, lambda x: x * _safe_log2(x)),
    "log": ScalingFunction("log", 1, _safe_log2),
    "sqrt": ScalingFunction("sqrt", 1, lambda x: np.sqrt(np.maximum(x, 0.0))),
    "quadratic": ScalingFunction("quadratic", 1, lambda x: x**2),
    "power_1_5": ScalingFunction("power_1_5", 1, lambda x: np.maximum(x, 0.0) ** 1.5),
}

#: Two-input scaling functions (join operators).
TWO_INPUT_SCALING_FUNCTIONS: dict[str, ScalingFunction] = {
    "sum": ScalingFunction("sum", 2, lambda a, b: a + b),
    "product": ScalingFunction("product", 2, lambda a, b: a * b),
    "outer_log_inner": ScalingFunction("outer_log_inner", 2, lambda a, b: a * _safe_log2(b)),
    "sum_log": ScalingFunction("sum_log", 2, lambda a, b: _safe_log2(a) + _safe_log2(b)),
}


def make_scaling_function(name: str) -> ScalingFunction:
    """Look up a scaling function by name (single- or two-input)."""
    if name in SCALING_FUNCTIONS:
        return SCALING_FUNCTIONS[name]
    if name in TWO_INPUT_SCALING_FUNCTIONS:
        return TWO_INPUT_SCALING_FUNCTIONS[name]
    raise ValueError(f"unknown scaling function {name!r}")


#: Canonical per-(family, feature) scaling choices.  These encode the
#: asymptotic knowledge of SQL query processing the paper derives from its
#: calibration experiments; the empirical selector below reproduces them
#: from data (Figures 7 and 8).
_DEFAULT_SCALING: dict[tuple[OperatorFamily, str], str] = {
    (OperatorFamily.SORT, "CIN1"): "nlogn",
    (OperatorFamily.SORT, "SINTOT1"): "nlogn",
    (OperatorFamily.SORT, "MINCOMP"): "nlogn",
    (OperatorFamily.SORT, "COUT"): "nlogn",
    (OperatorFamily.SORT, "SOUTTOT"): "nlogn",
    (OperatorFamily.SEEK, "TSIZE"): "log",
    (OperatorFamily.SEEK, "PAGES"): "log",
    (OperatorFamily.NESTED_LOOP_JOIN, "SSEEKTABLE"): "log",
}


def default_scaling_function(
    family: OperatorFamily, feature: str, resource: str = "cpu"
) -> ScalingFunction:
    """The scaling function used for (family, feature) combined models.

    For the I/O resource the discontinuous spill behaviour dominates and the
    paper scales linearly in the cardinality features; logarithmic choices
    only apply to CPU.
    """
    if resource == "cpu":
        name = _DEFAULT_SCALING.get((family, feature), "linear")
    else:
        name = "linear"
    return SCALING_FUNCTIONS[name]


@dataclass(frozen=True)
class FittedScaling:
    """One candidate scaling function fitted to an observed resource curve."""

    function: ScalingFunction
    alpha: float
    l2_error: float

    def predict(self, *values: float | np.ndarray) -> np.ndarray | float:
        return self.alpha * np.asarray(self.function(*values), dtype=np.float64)


class ScalingFunctionSelector:
    """Selects the best-fitting scaling function for an observed curve.

    Given observations ``(feature value(s), resource)`` in which everything
    except the swept feature is held constant, each candidate ``alpha · g``
    is fitted by least squares and candidates are ranked by L2 error.
    """

    def __init__(self, candidates: Sequence[ScalingFunction] | None = None) -> None:
        self.candidates = list(candidates) if candidates is not None else list(
            SCALING_FUNCTIONS.values()
        )

    def fit_all(
        self, feature_values: np.ndarray | Sequence, resources: np.ndarray | Sequence
    ) -> list[FittedScaling]:
        """Fit every candidate and return them sorted by L2 error."""
        resources = np.asarray(resources, dtype=np.float64)
        fitted: list[FittedScaling] = []
        for function in self.candidates:
            g_values = self._evaluate(function, feature_values)
            alpha = self._fit_alpha(g_values, resources)
            residual = resources - alpha * g_values
            fitted.append(
                FittedScaling(
                    function=function,
                    alpha=alpha,
                    l2_error=float(np.sqrt(np.mean(residual**2))),
                )
            )
        fitted.sort(key=lambda f: f.l2_error)
        return fitted

    def select(
        self, feature_values: np.ndarray | Sequence, resources: np.ndarray | Sequence
    ) -> FittedScaling:
        """The best-fitting candidate (smallest L2 error)."""
        return self.fit_all(feature_values, resources)[0]

    @staticmethod
    def _evaluate(
        function: ScalingFunction, feature_values: np.ndarray | Sequence
    ) -> np.ndarray:
        if function.arity == 1:
            return np.asarray(
                function(np.asarray(feature_values, dtype=np.float64)),
                dtype=np.float64,
            )
        values = np.asarray(feature_values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != 2:
            raise ValueError(
                f"two-input scaling function {function.name!r} needs an (n, 2) value array"
            )
        return np.asarray(function(values[:, 0], values[:, 1]), dtype=np.float64)

    @staticmethod
    def _fit_alpha(g_values: np.ndarray, resources: np.ndarray) -> float:
        denominator = float(np.sum(g_values**2))
        if denominator <= 0:
            return 0.0
        return float(np.sum(g_values * resources) / denominator)


def fit_robust_scaling(
    feature_values: np.ndarray | Sequence,
    targets: np.ndarray | Sequence,
    candidates: Sequence[ScalingFunction] | None = None,
) -> FittedScaling | None:
    """Fit the best single-input scaling curve from noisy training pairs.

    Unlike :class:`ScalingFunctionSelector` (which assumes clean calibration
    sweeps), this entry point tolerates serving-grade data: non-finite or
    negative observations are dropped, and the fit is rejected entirely
    (``None``) when fewer than three clean pairs remain or the fitted
    ``alpha`` is non-finite or non-positive.  Used to build the degradation
    ladder's per-family scaling fallbacks at training time.
    """
    values = np.asarray(feature_values, dtype=np.float64)
    observed = np.asarray(targets, dtype=np.float64)
    if values.ndim != 1 or observed.shape != values.shape:
        raise ValueError(
            f"fit_robust_scaling needs matching 1-d arrays, got shapes "
            f"{values.shape} and {observed.shape}"
        )
    clean = np.isfinite(values) & np.isfinite(observed) & (observed >= 0.0)
    values, observed = values[clean], observed[clean]
    if values.shape[0] < 3:
        return None
    best = ScalingFunctionSelector(candidates).select(values, observed)
    if not np.isfinite(best.alpha) or best.alpha <= 0.0:
        return None
    return best
