"""Compact model serialization and memory accounting (paper Section 7.3).

The paper argues the deployed model collection is small: a single regression
tree with at most 10 leaves can be encoded in ~130 bytes (child offsets in
one byte each, one byte for the split feature, 4-byte floats for thresholds
and leaf estimates), so 1000 boosting iterations fit in ~127 KB and the full
per-operator model collection in a few megabytes — independent of training
set or data size.  This module implements exactly that encoding so the
memory experiment can measure it rather than assert it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.combined_model import CombinedModel
from repro.core.trainer import OperatorModelSet
from repro.ml.mart import MARTRegressor
from repro.ml.regression_tree import RegressionTree, TreeNode

__all__ = [
    "serialize_tree",
    "deserialize_tree",
    "serialize_mart",
    "mart_size_bytes",
    "combined_model_size_bytes",
    "model_set_size_bytes",
    "estimator_size_bytes",
    "ModelSizeReport",
]

#: Node record: child offset (1 byte), split feature (1 byte, 0xFF for leaf),
#: threshold or leaf value (4-byte float).
_NODE_FORMAT = "<BBf"
_NODE_BYTES = struct.calcsize(_NODE_FORMAT)
_LEAF_MARKER = 0xFF


def _flatten(node: TreeNode, nodes: list[TreeNode]) -> None:
    """Pre-order flattening; children are appended directly after the parent subtree."""
    nodes.append(node)
    if not node.is_leaf:
        assert node.left is not None and node.right is not None
        _flatten(node.left, nodes)
        _flatten(node.right, nodes)


def serialize_tree(tree: RegressionTree) -> bytes:
    """Encode a fitted regression tree into the paper's compact format."""
    if tree.root is None:
        raise ValueError("cannot serialize an unfitted tree")
    nodes: list[TreeNode] = []
    _flatten(tree.root, nodes)
    index = {id(node): i for i, node in enumerate(nodes)}
    records = bytearray()
    records += struct.pack("<H", len(nodes))
    for i, node in enumerate(nodes):
        if node.is_leaf:
            records += struct.pack(_NODE_FORMAT, 0, _LEAF_MARKER, float(node.value))
        else:
            assert node.right is not None
            # Left child immediately follows its parent in pre-order, so only
            # the right child's offset needs to be stored.
            offset = index[id(node.right)] - i
            if offset > 255:
                raise ValueError("tree too large for single-byte child offsets")
            records += struct.pack(_NODE_FORMAT, offset, int(node.feature), float(node.threshold))
    return bytes(records)


def deserialize_tree(data: bytes) -> RegressionTree:
    """Decode a tree serialized by :func:`serialize_tree`."""
    (n_nodes,) = struct.unpack_from("<H", data, 0)
    records = []
    for i in range(n_nodes):
        offset, feature, value = struct.unpack_from(_NODE_FORMAT, data, 2 + i * _NODE_BYTES)
        records.append((offset, feature, value))

    def build(index: int) -> tuple[TreeNode, int]:
        offset, feature, value = records[index]
        if feature == _LEAF_MARKER:
            return TreeNode(value=float(value)), index + 1
        left, _ = build(index + 1)
        right, next_index = build(index + offset)
        node = TreeNode(value=0.0, feature=int(feature), threshold=float(value),
                        left=left, right=right)
        return node, next_index

    root, _ = build(0)
    tree = RegressionTree()
    tree.root = root
    return tree


def serialize_mart(model: MARTRegressor) -> bytes:
    """Encode a MART ensemble (initial prediction + all trees)."""
    payload = bytearray()
    payload += struct.pack("<fI", float(model.initial_prediction_), len(model.trees_))
    for tree in model.trees_:
        tree_bytes = serialize_tree(tree)
        payload += struct.pack("<H", len(tree_bytes))
        payload += tree_bytes
    return bytes(payload)


def mart_size_bytes(model: MARTRegressor) -> int:
    """Size of the compact encoding of a MART ensemble."""
    return len(serialize_mart(model))


def combined_model_size_bytes(model: CombinedModel) -> int:
    """Size of a combined model: the MART ensemble plus scaling metadata."""
    if model.model_ is None:
        return 0
    size = mart_size_bytes(model.model_)
    # Scaling metadata: one byte for the feature id and one for the function
    # id per scaling step, plus the stored training ranges (two 4-byte floats
    # per input feature).
    size += 2 * len(model.steps)
    size += 8 * len(model.input_features_)
    return size


def model_set_size_bytes(model_set: OperatorModelSet) -> int:
    """Total size of all models stored for one (family, resource) pair."""
    return sum(combined_model_size_bytes(m) for m in model_set.models)


def estimator_size_bytes(estimator) -> int:
    """Total size of every model stored by a trained ResourceEstimator."""
    return sum(model_set_size_bytes(ms) for ms in estimator.model_sets.values())


@dataclass(frozen=True)
class ModelSizeReport:
    """Summary used by the Section 7.3 memory experiment."""

    n_model_sets: int
    n_models: int
    total_bytes: int
    largest_single_model_bytes: int

    @classmethod
    def for_estimator(cls, estimator) -> "ModelSizeReport":
        sizes = [
            combined_model_size_bytes(model)
            for model_set in estimator.model_sets.values()
            for model in model_set.models
        ]
        return cls(
            n_model_sets=len(estimator.model_sets),
            n_models=len(sizes),
            total_bytes=int(sum(sizes)),
            largest_single_model_bytes=int(max(sizes)) if sizes else 0,
        )
