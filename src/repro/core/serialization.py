"""Model persistence: compact size accounting and the full artifact codec.

Two encodings live here, serving two different purposes:

* the **compact encoding** (paper Section 7.3): a single regression tree
  with at most 10 leaves can be encoded in ~130 bytes (child offsets in one
  byte each, one byte for the split feature, 4-byte floats for thresholds
  and leaf estimates), so 1000 boosting iterations fit in ~127 KB and the
  full per-operator model collection in a few megabytes — independent of
  training set or data size.  ``serialize_tree`` / ``serialize_mart``
  implement exactly that encoding so the memory experiment can *measure*
  the paper's claim rather than assert it;

* the **artifact codec** (train-once / serve-many): a versioned container
  that round-trips a whole trained :class:`~repro.core.estimator.ResourceEstimator`
  — every :class:`~repro.core.combined_model.CombinedModel` with its scaling
  steps, model-selection state (training ranges, default-model designation),
  the feature mode and the fallback models — at full float64 precision, so a
  loaded estimator reproduces the in-memory estimator's outputs bit for bit.
  The artifact starts with a magic string, a format-version header and a
  CRC-32 of the body; :func:`load_estimator` fails loudly (with
  :class:`EstimatorCodecError`) on any mismatch instead of serving estimates
  from a corrupt or incompatible model.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.combined_model import CombinedModel
from repro.core.scaling import make_scaling_function
from repro.core.scaled_model import ScalingStep
from repro.core.trainer import OperatorModelSet, TrainerConfig
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.ml.regression_tree import RegressionTree, TreeNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import ResourceEstimator

__all__ = [
    "serialize_tree",
    "deserialize_tree",
    "serialize_mart",
    "mart_size_bytes",
    "combined_model_size_bytes",
    "model_set_size_bytes",
    "estimator_size_bytes",
    "ModelSizeReport",
    "EstimatorCodecError",
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
    "read_artifact_version",
    "pack_envelope",
    "unpack_envelope",
    "estimator_to_bytes",
    "estimator_from_bytes",
    "save_estimator",
    "load_estimator",
]

#: Node record: child offset (1 byte), split feature (1 byte, 0xFF for leaf),
#: threshold or leaf value (4-byte float).
_NODE_FORMAT = "<BBf"
_NODE_BYTES = struct.calcsize(_NODE_FORMAT)
_LEAF_MARKER = 0xFF


def _flatten(node: TreeNode, nodes: list[TreeNode]) -> None:
    """Pre-order flattening; children are appended directly after the parent subtree."""
    nodes.append(node)
    if not node.is_leaf:
        assert node.left is not None and node.right is not None
        _flatten(node.left, nodes)
        _flatten(node.right, nodes)


def serialize_tree(tree: RegressionTree) -> bytes:
    """Encode a fitted regression tree into the paper's compact format."""
    if tree.root is None:
        raise ValueError("cannot serialize an unfitted tree")
    nodes: list[TreeNode] = []
    _flatten(tree.root, nodes)
    if len(nodes) > 0xFFFF:
        raise ValueError(
            f"tree has {len(nodes)} nodes, exceeding the 2-byte node-count limit"
        )
    index = {id(node): i for i, node in enumerate(nodes)}
    records = bytearray()
    records += struct.pack("<H", len(nodes))
    for i, node in enumerate(nodes):
        if node.is_leaf:
            records += struct.pack(_NODE_FORMAT, 0, _LEAF_MARKER, float(node.value))
        else:
            assert node.right is not None
            if not 0 <= node.feature < _LEAF_MARKER:
                raise ValueError(
                    f"split feature index {node.feature} does not fit the 1-byte "
                    f"encoding (must be in [0, {_LEAF_MARKER - 1}]; "
                    f"{_LEAF_MARKER:#x} marks a leaf)"
                )
            # Left child immediately follows its parent in pre-order, so only
            # the right child's offset needs to be stored.
            offset = index[id(node.right)] - i
            if offset > 255:
                raise ValueError(
                    f"flattened right-child offset {offset} exceeds the 1-byte "
                    "limit (255); the tree is too large for the compact encoding"
                )
            records += struct.pack(_NODE_FORMAT, offset, int(node.feature), float(node.threshold))
    return bytes(records)


def deserialize_tree(data: bytes) -> RegressionTree:
    """Decode a tree serialized by :func:`serialize_tree`."""
    (n_nodes,) = struct.unpack_from("<H", data, 0)
    records = []
    for i in range(n_nodes):
        offset, feature, value = struct.unpack_from(_NODE_FORMAT, data, 2 + i * _NODE_BYTES)
        records.append((offset, feature, value))

    def build(index: int) -> tuple[TreeNode, int]:
        offset, feature, value = records[index]
        if feature == _LEAF_MARKER:
            return TreeNode(value=float(value)), index + 1
        left, _ = build(index + 1)
        right, next_index = build(index + offset)
        node = TreeNode(value=0.0, feature=int(feature), threshold=float(value),
                        left=left, right=right)
        return node, next_index

    root, _ = build(0)
    tree = RegressionTree()
    tree.root = root
    return tree


def serialize_mart(model: MARTRegressor) -> bytes:
    """Encode a MART ensemble (initial prediction + all trees)."""
    payload = bytearray()
    payload += struct.pack("<fI", float(model.initial_prediction_), len(model.trees_))
    for tree in model.trees_:
        tree_bytes = serialize_tree(tree)
        payload += struct.pack("<H", len(tree_bytes))
        payload += tree_bytes
    return bytes(payload)


def mart_size_bytes(model: MARTRegressor) -> int:
    """Size of the compact encoding of a MART ensemble."""
    return len(serialize_mart(model))


def combined_model_size_bytes(model: CombinedModel) -> int:
    """Size of a combined model: the MART ensemble plus scaling metadata."""
    if model.model_ is None:
        return 0
    size = mart_size_bytes(model.model_)
    # Scaling metadata: one byte for the feature id and one for the function
    # id per scaling step, plus the stored training ranges (two 4-byte floats
    # per input feature).
    size += 2 * len(model.steps)
    size += 8 * len(model.input_features_)
    return size


def model_set_size_bytes(model_set: OperatorModelSet) -> int:
    """Total size of all models stored for one (family, resource) pair."""
    return sum(combined_model_size_bytes(m) for m in model_set.models)


def estimator_size_bytes(estimator: "ResourceEstimator") -> int:
    """Total size of every model stored by a trained ResourceEstimator."""
    return sum(model_set_size_bytes(ms) for ms in estimator.model_sets.values())


@dataclass(frozen=True)
class ModelSizeReport:
    """Summary used by the Section 7.3 memory experiment."""

    n_model_sets: int
    n_models: int
    total_bytes: int
    largest_single_model_bytes: int

    @classmethod
    def for_estimator(cls, estimator: "ResourceEstimator") -> "ModelSizeReport":
        sizes = [
            combined_model_size_bytes(model)
            for model_set in estimator.model_sets.values()
            for model in model_set.models
        ]
        return cls(
            n_model_sets=len(estimator.model_sets),
            n_models=len(sizes),
            total_bytes=int(sum(sizes)),
            largest_single_model_bytes=int(max(sizes)) if sizes else 0,
        )


# ---------------------------------------------------------------------------
# Artifact codec: full round-trip persistence of a trained ResourceEstimator
# ---------------------------------------------------------------------------

#: Leading magic of every estimator artifact (8 bytes).
ARTIFACT_MAGIC = b"RPROEST\x00"
#: Current artifact format version.  Bumped on any incompatible layout change;
#: :func:`load_estimator` refuses other versions instead of guessing.
#: Version 2 added the optional ``robustness`` metadata section (feature
#: envelopes, per-family rates, scaling fallbacks); version 3 replaced the
#: per-tree node records with the flat structure-of-arrays ensemble layout
#: (little-endian, 8-byte aligned) so loading can ``frombuffer``/mmap the
#: inference arrays directly instead of re-walking nodes.  Version-1/2
#: artifacts still load, compiling to flat arrays on first use.
ARTIFACT_VERSION = 3
#: Artifact format versions :func:`load_estimator` accepts.
SUPPORTED_ARTIFACT_VERSIONS: tuple[int, ...] = (1, 2, 3)

#: Shared envelope after the magic: format version (u16), CRC-32 of the
#: body (u32).  Both the native codec and the technique-adapter artifacts
#: (:mod:`repro.api.adapters`) frame their payload with it.
_ENVELOPE_HEADER = "<HI"
_ENVELOPE_HEADER_BYTES = struct.calcsize(_ENVELOPE_HEADER)

#: Full-precision tree node record: split feature (i2, -1 for leaves),
#: right-child offset (u2), threshold or leaf value (f8).
_FULL_NODE_FORMAT = "<hHd"
_FULL_NODE_BYTES = struct.calcsize(_FULL_NODE_FORMAT)


class EstimatorCodecError(ValueError):
    """A model artifact could not be decoded (corrupt, truncated or wrong version)."""


def pack_envelope(magic: bytes, version: int, body: bytes) -> bytes:
    """Frame ``body`` as ``magic + version + crc32(body) + body``."""
    return magic + struct.pack(_ENVELOPE_HEADER, version, zlib.crc32(body)) + body


def unpack_envelope(
    data: "bytes | memoryview", magic: bytes, version: "int | tuple[int, ...]", kind: str
) -> "tuple[int, bytes | memoryview]":
    """Validate an artifact envelope and return ``(version, body)`` (strict).

    ``version`` is the accepted format version, or a tuple of them when the
    codec can read several (the native estimator codec reads versions 1-3).
    Raises :class:`EstimatorCodecError` on a wrong magic, an unsupported
    format version, or a CRC mismatch (flipped or truncated bytes anywhere
    in the body).  ``kind`` labels the artifact family in error messages.
    ``data`` may be a ``memoryview`` (e.g. over an ``mmap``), in which case
    the returned body is a zero-copy view.
    """
    accepted = (version,) if isinstance(version, int) else tuple(version)
    prefix = len(magic)
    if len(data) < prefix + _ENVELOPE_HEADER_BYTES:
        raise EstimatorCodecError(
            f"{kind} artifact is truncated ({len(data)} bytes; smaller than the header)"
        )
    if data[:prefix] != magic:
        raise EstimatorCodecError(
            f"not a repro {kind} artifact (bad magic); refusing to load"
        )
    got_version, crc = struct.unpack_from(_ENVELOPE_HEADER, data, prefix)
    if got_version not in accepted:
        readable = ", ".join(str(v) for v in accepted)
        raise EstimatorCodecError(
            f"unsupported {kind} artifact format version {got_version}; this build "
            f"reads version(s) {readable} only — retrain and re-save the model"
        )
    body = data[prefix + _ENVELOPE_HEADER_BYTES :]
    if zlib.crc32(body) != crc:
        raise EstimatorCodecError(
            f"{kind} artifact checksum mismatch: the file is corrupt or was truncated"
        )
    return int(got_version), body


def _encode_tree_full(tree: RegressionTree) -> bytes:
    """Full-precision (float64) encoding of a fitted regression tree."""
    if tree.root is None:
        raise ValueError("cannot serialize an unfitted tree")
    nodes: list[TreeNode] = []
    _flatten(tree.root, nodes)
    index = {id(node): i for i, node in enumerate(nodes)}
    out = bytearray(struct.pack("<I", len(nodes)))
    for i, node in enumerate(nodes):
        if node.is_leaf:
            out += struct.pack(_FULL_NODE_FORMAT, -1, 0, float(node.value))
        else:
            assert node.right is not None
            offset = index[id(node.right)] - i
            if offset > 0xFFFF:
                raise ValueError("tree too large for the artifact encoding")
            out += struct.pack(_FULL_NODE_FORMAT, int(node.feature), offset, float(node.threshold))
    return bytes(out)


def _decode_tree_full(data: bytes, pos: int) -> tuple[RegressionTree, int]:
    """Decode one full-precision tree starting at ``pos``; returns (tree, new pos).

    Structural validation is strict: out-of-range child indices raise
    :class:`EstimatorCodecError` (a CRC-valid artifact can still be
    malformed if it was produced by a broken encoder).
    """
    (n_nodes,) = struct.unpack_from("<I", data, pos)
    if n_nodes == 0:
        raise EstimatorCodecError("tree record with zero nodes")
    pos += 4
    records = []
    for i in range(n_nodes):
        records.append(struct.unpack_from(_FULL_NODE_FORMAT, data, pos + i * _FULL_NODE_BYTES))
    pos += n_nodes * _FULL_NODE_BYTES

    def build(index: int) -> tuple[TreeNode, int]:
        if index >= n_nodes:
            raise EstimatorCodecError("tree record references a node past the end")
        feature, offset, value = records[index]
        if feature < 0:
            return TreeNode(value=float(value)), index + 1
        if offset < 2:  # left subtree holds at least one node between parent and right child
            raise EstimatorCodecError(f"invalid right-child offset {offset} in tree record")
        left, _ = build(index + 1)
        right, next_index = build(index + offset)
        return (
            TreeNode(value=0.0, feature=int(feature), threshold=float(value),
                     left=left, right=right),
            next_index,
        )

    root, _ = build(0)
    tree = RegressionTree()
    tree.root = root
    return tree, pos


def _encode_mart_full(model: MARTRegressor) -> bytes:
    """Full-precision encoding of a fitted MART ensemble (weights only).

    Hyper-parameters (including the learning rate the prediction path needs)
    travel in the JSON metadata as a complete :class:`MARTConfig`.
    """
    if model.n_features_ is None or model.feature_range_ is None:
        raise ValueError("cannot serialize an unfitted MART model")
    lows, highs = model.feature_range_
    out = bytearray(
        struct.pack("<dII", float(model.initial_prediction_), model.n_features_, len(model.trees_))
    )
    out += np.asarray(lows, dtype="<f8").tobytes()
    out += np.asarray(highs, dtype="<f8").tobytes()
    for tree in model.trees_:
        out += _encode_tree_full(tree)
    return bytes(out)


def _decode_mart_full(data: bytes, config: MARTConfig) -> MARTRegressor:
    """Decode a MART ensemble encoded by :func:`_encode_mart_full`."""
    initial, n_features, n_trees = struct.unpack_from("<dII", data, 0)
    pos = struct.calcsize("<dII")
    lows = np.frombuffer(data, dtype="<f8", count=n_features, offset=pos).copy()
    pos += 8 * n_features
    highs = np.frombuffer(data, dtype="<f8", count=n_features, offset=pos).copy()
    pos += 8 * n_features
    model = MARTRegressor(config)
    model.initial_prediction_ = float(initial)
    model.n_features_ = int(n_features)
    model.feature_range_ = (lows, highs)
    model.trees_ = []
    for _ in range(n_trees):
        tree, pos = _decode_tree_full(data, pos)
        tree.n_features_ = int(n_features)
        model.trees_.append(tree)
    if pos != len(data):
        raise EstimatorCodecError("trailing bytes after MART ensemble payload")
    return model


def _encode_mart_flat(model: MARTRegressor) -> bytes:
    """Version-3 encoding: the compiled flat arrays, little-endian, aligned.

    Layout (all offsets 8-byte aligned relative to the blob start, which the
    writer itself aligns within the artifact):

    ========================  =======================================
    ``<dII``                  initial prediction, n_features, n_trees
    ``<f8 x n_features`` x2   training lows, training highs
    ``<II``                   n_nodes, reserved padding (0)
    ``<i8 x n_trees``         tree root offsets
    ``<f8 x n_nodes``         thresholds
    ``<f8 x n_nodes``         leaf values
    ``<i4 x n_nodes`` x3      feature ids (-1 = leaf), left, right
    ========================  =======================================

    The 8-byte arrays precede the 4-byte ones so every array keeps natural
    alignment and the decoder can ``frombuffer`` (or mmap) them in place.
    """
    if model.n_features_ is None or model.feature_range_ is None:
        raise ValueError("cannot serialize an unfitted MART model")
    forest = model.flat_forest()
    lows, highs = model.feature_range_
    out = bytearray(
        struct.pack(
            "<dII", float(model.initial_prediction_), model.n_features_, forest.n_trees
        )
    )
    out += np.asarray(lows, dtype="<f8").tobytes()
    out += np.asarray(highs, dtype="<f8").tobytes()
    out += struct.pack("<II", forest.n_nodes, 0)
    out += np.ascontiguousarray(forest.tree_roots, dtype="<i8").tobytes()
    out += np.ascontiguousarray(forest.threshold, dtype="<f8").tobytes()
    out += np.ascontiguousarray(forest.leaf_value, dtype="<f8").tobytes()
    out += np.ascontiguousarray(forest.feature_id, dtype="<i4").tobytes()
    out += np.ascontiguousarray(forest.left, dtype="<i4").tobytes()
    out += np.ascontiguousarray(forest.right, dtype="<i4").tobytes()
    return bytes(out)


def _decode_mart_flat(data: "bytes | memoryview", config: MARTConfig) -> MARTRegressor:
    """Decode a flat MART blob without materialising any ``TreeNode``.

    The node arrays are ``frombuffer`` views over ``data`` (zero-copy when
    the caller hands in a memoryview over the file or an mmap); structural
    validity — pre-order child offsets, in-range features, tree boundaries —
    is checked with vectorised comparisons before the model is accepted.
    """
    from repro.ml.flat_ensemble import FlatForest

    prefix = struct.calcsize("<dII")
    initial, n_features, n_trees = struct.unpack_from("<dII", data, 0)
    pos = prefix
    lows = np.frombuffer(data, dtype="<f8", count=n_features, offset=pos).copy()
    pos += 8 * n_features
    highs = np.frombuffer(data, dtype="<f8", count=n_features, offset=pos).copy()
    pos += 8 * n_features
    n_nodes, _reserved = struct.unpack_from("<II", data, pos)
    pos += 8
    expected = pos + 8 * n_trees + (8 + 8 + 4 + 4 + 4) * n_nodes
    if expected != len(data):
        raise EstimatorCodecError(
            f"flat MART payload is {len(data)} bytes, expected {expected}"
        )
    tree_roots = np.frombuffer(data, dtype="<i8", count=n_trees, offset=pos)
    pos += 8 * n_trees
    threshold = np.frombuffer(data, dtype="<f8", count=n_nodes, offset=pos)
    pos += 8 * n_nodes
    leaf_value = np.frombuffer(data, dtype="<f8", count=n_nodes, offset=pos)
    pos += 8 * n_nodes
    feature_id = np.frombuffer(data, dtype="<i4", count=n_nodes, offset=pos)
    pos += 4 * n_nodes
    left = np.frombuffer(data, dtype="<i4", count=n_nodes, offset=pos)
    pos += 4 * n_nodes
    right = np.frombuffer(data, dtype="<i4", count=n_nodes, offset=pos)
    try:
        forest = FlatForest(
            feature_id=feature_id,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=leaf_value,
            tree_roots=tree_roots,
            learning_rate=config.learning_rate,
            init_=float(initial),
            n_features=int(n_features),
            validate=True,
        )
    except ValueError as exc:
        raise EstimatorCodecError(f"malformed flat ensemble: {exc}") from exc
    model = MARTRegressor(config)
    model.initial_prediction_ = float(initial)
    model.n_features_ = int(n_features)
    model.feature_range_ = (lows, highs)
    model._set_compiled(forest)
    return model


def _mart_config_record(config: MARTConfig) -> dict:
    return {
        "n_iterations": config.n_iterations,
        "max_leaves": config.max_leaves,
        "learning_rate": config.learning_rate,
        "subsample": config.subsample,
        "min_samples_leaf": config.min_samples_leaf,
        "random_seed": config.random_seed,
    }


def _trainer_config_record(config: TrainerConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "mart": _mart_config_record(config.mart),
        "min_training_rows": config.min_training_rows,
        "max_pair_models": config.max_pair_models,
        "enable_pair_scaling": config.enable_pair_scaling,
    }


def _trainer_config_from_record(record: dict | None) -> TrainerConfig | None:
    if record is None:
        return None
    return TrainerConfig(
        mart=MARTConfig(**record["mart"]),
        min_training_rows=record["min_training_rows"],
        max_pair_models=record["max_pair_models"],
        enable_pair_scaling=record["enable_pair_scaling"],
    )


def _combined_model_record(model: CombinedModel, payload: bytearray, version: int) -> dict:
    """Append the model's MART weights to ``payload``; return its JSON record."""
    if model.model_ is None:
        raise ValueError(f"cannot serialize untrained combined model {model.name}")
    if version >= 3:
        # Pad so the blob (and therefore its 8-byte arrays) stays aligned;
        # the writer aligns the payload start within the artifact to match.
        payload += b"\x00" * (-len(payload) % 8)
        blob = _encode_mart_flat(model.model_)
    else:
        blob = _encode_mart_full(model.model_)
    offset = len(payload)
    payload += blob
    return {
        "feature_names": list(model.feature_names),
        "steps": [
            {"feature": step.feature, "function": step.function.name}
            for step in model.steps
        ],
        "mart_config": _mart_config_record(model.mart_config),
        "training_low": model.training_low_,
        "training_high": model.training_high_,
        "training_error": model.training_error_,
        "n_training_rows": model.n_training_rows_,
        "scaled_target_low": model.scaled_target_low_,
        "scaled_target_high": model.scaled_target_high_,
        "blob_offset": offset,
        "blob_length": len(blob),
    }


def _combined_model_from_record(
    record: dict,
    family: OperatorFamily,
    resource: str,
    payload: "bytes | memoryview",
    version: int,
) -> CombinedModel:
    steps = tuple(
        ScalingStep(feature=s["feature"], function=make_scaling_function(s["function"]))
        for s in record["steps"]
    )
    model = CombinedModel(
        family=family,
        resource=resource,
        feature_names=tuple(record["feature_names"]),
        steps=steps,
        mart_config=MARTConfig(**record["mart_config"]),
    )
    start, length = record["blob_offset"], record["blob_length"]
    if start < 0 or start + length > len(payload):
        raise EstimatorCodecError("model weight blob lies outside the artifact payload")
    blob = payload[start : start + length]
    if version >= 3:
        model.model_ = _decode_mart_flat(blob, model.mart_config)
    else:
        model.model_ = _decode_mart_full(blob, model.mart_config)
    model.training_low_ = {k: float(v) for k, v in record["training_low"].items()}
    model.training_high_ = {k: float(v) for k, v in record["training_high"].items()}
    model.training_error_ = float(record["training_error"])
    model.n_training_rows_ = int(record["n_training_rows"])
    model.scaled_target_low_ = float(record["scaled_target_low"])
    model.scaled_target_high_ = float(record["scaled_target_high"])
    return model


def estimator_to_bytes(
    estimator: "ResourceEstimator", version: int = ARTIFACT_VERSION
) -> bytes:
    """Serialize a trained ResourceEstimator into a versioned artifact.

    ``version`` selects the artifact layout (any supported version can be
    written, so tests and benchmarks can produce legacy artifacts): 1 omits
    the robustness section, 2 stores per-tree node records, 3 (default)
    stores the flat structure-of-arrays layout with 8-byte alignment so the
    loader can frombuffer/mmap the inference arrays.
    """
    if version not in SUPPORTED_ARTIFACT_VERSIONS:
        readable = ", ".join(str(v) for v in SUPPORTED_ARTIFACT_VERSIONS)
        raise ValueError(f"cannot write artifact version {version}; supported: {readable}")
    payload = bytearray()
    model_sets = []
    for (family, resource), model_set in estimator.model_sets.items():
        records = [
            _combined_model_record(model, payload, version) for model in model_set.models
        ]
        try:
            default_index = next(
                i for i, m in enumerate(model_set.models) if m is model_set.default_model
            )
        except StopIteration:
            # Degenerate (hand-built) set whose default is not among models.
            records.append(_combined_model_record(model_set.default_model, payload, version))
            default_index = len(records) - 1
        model_sets.append(
            {
                "family": family.value,
                "resource": resource,
                "default_index": default_index,
                "models": records,
            }
        )
    header = {
        "format": "repro-estimator",
        "feature_mode": estimator.feature_mode.value,
        "resources": list(estimator.resources),
        "fallbacks": {
            resource: fallback.per_tuple
            for resource, fallback in estimator.fallbacks.items()
        },
        "trainer_config": _trainer_config_record(estimator.trainer_config),
        "model_sets": model_sets,
    }
    if version >= 2:
        header["robustness"] = _robustness_record(estimator)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if version >= 3:
        # Pad the JSON (trailing whitespace is legal) so the payload lands on
        # an 8-byte boundary of the file: magic (8) + envelope header (6) +
        # length prefix (4) + header must be a multiple of 8 for the blob
        # arrays to be naturally aligned when the artifact is mmap'd.
        fixed = len(ARTIFACT_MAGIC) + _ENVELOPE_HEADER_BYTES + 4
        header_bytes += b" " * (-(fixed + len(header_bytes)) % 8)
    body = struct.pack("<I", len(header_bytes)) + header_bytes + bytes(payload)
    return pack_envelope(ARTIFACT_MAGIC, version, body)


def _robustness_record(estimator: "ResourceEstimator") -> dict:
    """The version-2 robustness metadata section (pure JSON)."""
    return {
        "envelopes": [env.record() for env in estimator.envelopes.values()],
        "family_rates": [
            {"family": family.value, "resource": resource, "rate": float(rate)}
            for (family, resource), rate in estimator.family_rates.items()
        ],
        "scaling_fallbacks": [
            {"family": family.value, "resource": resource, **fallback.record()}
            for (family, resource), fallback in estimator.scaling_fallbacks.items()
        ],
    }


def _apply_robustness_record(estimator: "ResourceEstimator", record: dict | None) -> None:
    """Populate the robustness sections; absent (v1 artifacts) means empty."""
    from repro.robustness.degradation import ScalingFallback
    from repro.robustness.envelope import FeatureEnvelope

    if record is None:
        return
    for env_record in record.get("envelopes", []):
        envelope = FeatureEnvelope.from_record(env_record)
        estimator.envelopes[envelope.family] = envelope
    for rate_record in record.get("family_rates", []):
        key = (OperatorFamily(rate_record["family"]), str(rate_record["resource"]))
        estimator.family_rates[key] = float(rate_record["rate"])
    for fb_record in record.get("scaling_fallbacks", []):
        key = (OperatorFamily(fb_record["family"]), str(fb_record["resource"]))
        estimator.scaling_fallbacks[key] = ScalingFallback.from_record(fb_record)


def estimator_from_bytes(data: "bytes | bytearray | memoryview") -> "ResourceEstimator":
    """Reconstruct a ResourceEstimator from artifact bytes (strict, versioned).

    Raises :class:`EstimatorCodecError` on a wrong magic, an unsupported
    format version, a CRC mismatch (flipped or truncated bytes anywhere in
    the body) or a structurally invalid metadata section.  ``data`` may be a
    ``memoryview`` over an mmap'd file, in which case version-3 inference
    arrays are zero-copy views into the mapping.
    """
    from repro.core.estimator import ResourceEstimator, _FallbackModel

    view = data if isinstance(data, memoryview) else memoryview(bytes(data))
    version, body = unpack_envelope(
        view, ARTIFACT_MAGIC, SUPPORTED_ARTIFACT_VERSIONS, "estimator"
    )
    if len(body) < 4:
        raise EstimatorCodecError("artifact body is truncated")
    (header_len,) = struct.unpack_from("<I", body, 0)
    if header_len > len(body) - 4:
        raise EstimatorCodecError("artifact metadata length exceeds the body size")
    try:
        header = json.loads(bytes(body[4 : 4 + header_len]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise EstimatorCodecError(f"invalid artifact metadata: {exc}") from exc
    if header.get("format") != "repro-estimator":
        raise EstimatorCodecError("artifact metadata does not describe an estimator")
    payload = body[4 + header_len :]

    try:
        estimator = ResourceEstimator(
            feature_mode=FeatureMode(header["feature_mode"]),
            resources=tuple(header["resources"]),
            trainer_config=_trainer_config_from_record(header.get("trainer_config")),
        )
        for resource, per_tuple in header["fallbacks"].items():
            estimator.fallbacks[resource] = _FallbackModel(per_tuple=float(per_tuple))
        for set_record in header["model_sets"]:
            family = OperatorFamily(set_record["family"])
            resource = set_record["resource"]
            models = [
                _combined_model_from_record(record, family, resource, payload, version)
                for record in set_record["models"]
            ]
            default_index = int(set_record["default_index"])
            if not 0 <= default_index < len(models):
                raise EstimatorCodecError(
                    f"default model index {default_index} out of range for "
                    f"{family.value}/{resource}"
                )
            estimator.model_sets[(family, resource)] = OperatorModelSet(
                family=family,
                resource=resource,
                models=models,
                default_model=models[default_index],
            )
        _apply_robustness_record(estimator, header.get("robustness"))
    except EstimatorCodecError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, struct.error, RecursionError) as exc:
        raise EstimatorCodecError(f"structurally invalid artifact: {exc}") from exc
    return estimator


def save_estimator(
    estimator: "ResourceEstimator", path: str | Path, version: int = ARTIFACT_VERSION
) -> Path:
    """Write a trained estimator to ``path`` as a versioned artifact."""
    path = Path(path)
    path.write_bytes(estimator_to_bytes(estimator, version=version))
    return path


def mmap_artifact(path: str | Path) -> memoryview:
    """A read-only zero-copy view over an artifact file.

    Returns a memoryview over an ``mmap.ACCESS_READ`` mapping; the mapping
    stays alive for as long as any decoded array references it.  Falls back
    to reading the file when it cannot be mapped (empty file, filesystems
    without mmap support).
    """
    import mmap as _mmap

    path = Path(path)
    with path.open("rb") as handle:
        try:
            mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except (ValueError, OSError):
            return memoryview(path.read_bytes())
    return memoryview(mapped)


def load_estimator(path: str | Path, mmap: bool = False) -> "ResourceEstimator":
    """Load an estimator artifact written by :func:`save_estimator` (strict).

    With ``mmap=True`` the file is memory-mapped and version-3 inference
    arrays become zero-copy views into the mapping (pages fault in on first
    use instead of being read and re-walked up front).
    """
    path = Path(path)
    try:
        data: "bytes | memoryview" = mmap_artifact(path) if mmap else path.read_bytes()
    except OSError as exc:
        raise EstimatorCodecError(f"cannot read artifact {path}: {exc}") from exc
    return estimator_from_bytes(data)


def read_artifact_version(path: str | Path) -> int:
    """The format version stored in a native estimator artifact's header.

    Validates the magic and the version (but not the body CRC — this is a
    cheap metadata peek, not a load).  Raises :class:`EstimatorCodecError`
    for files that are not native estimator artifacts or carry a version
    this build cannot read.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            head = handle.read(len(ARTIFACT_MAGIC) + _ENVELOPE_HEADER_BYTES)
    except OSError as exc:
        raise EstimatorCodecError(f"cannot read artifact {path}: {exc}") from exc
    if len(head) < len(ARTIFACT_MAGIC) + _ENVELOPE_HEADER_BYTES:
        raise EstimatorCodecError(
            f"estimator artifact is truncated ({len(head)} bytes; smaller than the header)"
        )
    if head[: len(ARTIFACT_MAGIC)] != ARTIFACT_MAGIC:
        raise EstimatorCodecError(
            "not a repro estimator artifact (bad magic); refusing to load"
        )
    (version,) = struct.unpack_from("<H", head, len(ARTIFACT_MAGIC))
    if version not in SUPPORTED_ARTIFACT_VERSIONS:
        readable = ", ".join(str(v) for v in SUPPORTED_ARTIFACT_VERSIONS)
        raise EstimatorCodecError(
            f"unsupported estimator artifact format version {version}; this build "
            f"reads version(s) {readable} only — retrain and re-save the model"
        )
    return int(version)
