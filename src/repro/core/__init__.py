"""The paper's contribution: robust operator-level resource estimation.

The package combines MART models (accurate in-distribution) with
asymptotic *scaling functions* (robust out-of-distribution):

* :mod:`repro.core.scaling` — the scaling-function library and the
  empirical selection framework of Section 6.2;
* :mod:`repro.core.scaled_model` — the training-data transformation that
  turns a default model into a scaled model (Section 6.1);
* :mod:`repro.core.combined_model` — scaling function ∘ scaled MART model;
* :mod:`repro.core.model_selection` — the online ``out_ratio`` heuristic of
  Section 6.3;
* :mod:`repro.core.trainer` — the off-line training pipeline producing one
  model set per (operator family, resource);
* :mod:`repro.core.estimator` — the on-line API estimating resources for
  operators, pipelines and whole plans;
* :mod:`repro.core.serialization` — compact model encoding used for the
  Section 7.3 memory accounting.
"""

from repro.core.combined_model import CombinedModel
from repro.core.estimator import ResourceEstimator, WorkloadEstimate
from repro.core.model_selection import BatchSelection, ModelSelector
from repro.core.scaling import (
    SCALING_FUNCTIONS,
    ScalingFunction,
    ScalingFunctionSelector,
    default_scaling_function,
    make_scaling_function,
)
from repro.core.serialization import (
    EstimatorCodecError,
    ModelSizeReport,
    estimator_from_bytes,
    estimator_to_bytes,
    load_estimator,
    save_estimator,
)
from repro.core.trainer import FamilyTrainingData, OperatorModelSet, ScalingModelTrainer, TrainerConfig

__all__ = [
    "CombinedModel",
    "ResourceEstimator",
    "WorkloadEstimate",
    "BatchSelection",
    "ModelSelector",
    "SCALING_FUNCTIONS",
    "ScalingFunction",
    "ScalingFunctionSelector",
    "default_scaling_function",
    "make_scaling_function",
    "EstimatorCodecError",
    "ModelSizeReport",
    "estimator_from_bytes",
    "estimator_to_bytes",
    "load_estimator",
    "save_estimator",
    "FamilyTrainingData",
    "OperatorModelSet",
    "ScalingModelTrainer",
    "TrainerConfig",
]
