"""Online model selection (paper Section 6.3).

For every operator instance of an incoming query the estimator must choose
among the default model and the available combined models.  The heuristic
relies on the monotonic relationship between the scalable features and
resource usage: the further a feature value falls outside the range a model
was trained on (its ``out_ratio``), the less we trust that model for this
instance.

Selection rule:

1. if the default model's out_ratio is zero for every feature, use it;
2. otherwise use the model whose *maximum* out_ratio over its input features
   is smallest;
3. break ties by (a) preferring fewer scaling features and (b) comparing the
   second-largest out_ratio, third-largest, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.combined_model import CombinedModel

__all__ = ["ModelSelector", "SelectionDecision"]


@dataclass(frozen=True)
class SelectionDecision:
    """The outcome of one model-selection decision (useful for diagnostics)."""

    model: CombinedModel
    max_out_ratio: float
    used_default: bool


class ModelSelector:
    """Implements the out_ratio selection heuristic."""

    def select(
        self,
        default_model: CombinedModel,
        models: list[CombinedModel],
        feature_values: dict[str, float],
    ) -> SelectionDecision:
        """Choose the model to use for one operator instance."""
        default_profile = default_model.out_ratio_profile(feature_values)
        if not default_profile or default_profile[0] <= 0.0:
            return SelectionDecision(
                model=default_model, max_out_ratio=0.0, used_default=True
            )

        candidates = list(models)
        if default_model not in candidates:
            candidates.append(default_model)

        best_model: CombinedModel | None = None
        best_key: tuple | None = None
        for model in candidates:
            profile = model.out_ratio_profile(feature_values)
            max_ratio = profile[0] if profile else 0.0
            # Sort key implements the rule + tie-breaks: smaller maximum
            # out_ratio first, then fewer scaling features, then the rest of
            # the (descending) out_ratio profile lexicographically.
            key = (max_ratio, model.n_scaling_features, tuple(profile[1:8]))
            if best_key is None or key < best_key:
                best_key = key
                best_model = model
        assert best_model is not None
        return SelectionDecision(
            model=best_model,
            max_out_ratio=float(best_key[0]) if best_key else 0.0,
            used_default=best_model is default_model,
        )
