"""Online model selection (paper Section 6.3).

For every operator instance of an incoming query the estimator must choose
among the default model and the available combined models.  The heuristic
relies on the monotonic relationship between the scalable features and
resource usage: the further a feature value falls outside the range a model
was trained on (its ``out_ratio``), the less we trust that model for this
instance.

Selection rule:

1. if the default model's out_ratio is zero for every feature, use it;
2. otherwise use the model whose *maximum* out_ratio over its input features
   is smallest;
3. break ties by (a) preferring fewer scaling features and (b) comparing the
   second-largest out_ratio, third-largest, and so on.

The selector is vectorised: :meth:`ModelSelector.select_batch` classifies all
rows of a feature matrix at once by building one sort key per (row, model)
and reducing lexicographically across models, and the scalar
:meth:`ModelSelector.select` is a one-row wrapper over it.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combined_model import CombinedModel

__all__ = ["ModelSelector", "SelectionDecision", "BatchSelection"]


@dataclass(frozen=True)
class SelectionDecision:
    """The outcome of one model-selection decision (useful for diagnostics)."""

    model: CombinedModel
    max_out_ratio: float
    used_default: bool


@dataclass(frozen=True)
class BatchSelection:
    """Model choices for every row of a feature matrix."""

    #: Candidate models in selection order (``models`` plus the default).
    candidates: list[CombinedModel]
    #: Index into ``candidates`` chosen for each row.
    indices: np.ndarray
    #: Maximum out_ratio of the chosen model for each row.
    max_out_ratios: np.ndarray
    #: Whether each row fell back to the default model.
    used_default: np.ndarray

    def model_for(self, row: int) -> CombinedModel:
        return self.candidates[int(self.indices[row])]


class ModelSelector:
    """Implements the out_ratio selection heuristic."""

    #: Length of the out_ratio tail used for tie-breaking (``profile[1:8]``).
    _PROFILE_TAIL = 7
    #: Pad value for missing tail entries; any real out_ratio (>= 0) beats it,
    #: matching Python's shorter-tuple-compares-less semantics.
    _PAD = -1.0

    def select(
        self,
        default_model: CombinedModel,
        models: list[CombinedModel],
        feature_values: dict[str, float],
    ) -> SelectionDecision:
        """Choose the model to use for one operator instance."""
        batch = self.select_batch(
            default_model, models, default_model.feature_matrix([feature_values])
        )
        return SelectionDecision(
            model=batch.model_for(0),
            max_out_ratio=float(batch.max_out_ratios[0]),
            used_default=bool(batch.used_default[0]),
        )

    def select_batch(
        self,
        default_model: CombinedModel,
        models: list[CombinedModel],
        matrix: np.ndarray,
    ) -> BatchSelection:
        """Choose a model for every row of a raw feature matrix.

        All candidates must share ``default_model.feature_names`` (they do by
        construction: the trainer fits every model of a family over the same
        canonical feature tuple), so one matrix serves every model.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        n = matrix.shape[0]
        candidates = list(models)
        if default_model not in candidates:
            candidates.append(default_model)
        default_index = candidates.index(default_model)

        indices = np.full(n, default_index, dtype=np.int64)
        in_range = np.ones(n, dtype=bool)
        best_keys: np.ndarray | None = None
        for position, model in enumerate(candidates):
            keys = self._selection_keys(model, matrix)
            if position == default_index:
                # Rule-1 test, taken before ``keys`` can be mutated below (a
                # key of 0 means every feature was covered during training).
                in_range = keys[:, 0] <= 0.0
            if best_keys is None:
                best_keys = keys
                indices[:] = position
            else:
                better = self._lexicographically_less(keys, best_keys)
                indices[better] = position
                best_keys[better] = keys[better]
        assert best_keys is not None
        max_ratios = best_keys[:, 0].copy()

        # Rule 1: rows the default model covers entirely in-range use it.
        indices[in_range] = default_index
        max_ratios[in_range] = 0.0
        return BatchSelection(
            candidates=candidates,
            indices=indices,
            max_out_ratios=max_ratios,
            used_default=in_range | (indices == default_index),
        )

    def _selection_keys(self, model: CombinedModel, matrix: np.ndarray) -> np.ndarray:
        """Per-row sort key: (max out_ratio, #scaling features, out_ratio tail)."""
        profiles = model.out_ratio_profiles(matrix)
        keys = np.full(
            (profiles.shape[0], 2 + self._PROFILE_TAIL), self._PAD, dtype=np.float64
        )
        keys[:, 0] = profiles[:, 0] if profiles.shape[1] else 0.0
        keys[:, 1] = float(model.n_scaling_features)
        tail = profiles[:, 1 : 1 + self._PROFILE_TAIL]
        keys[:, 2 : 2 + tail.shape[1]] = tail
        return keys

    @staticmethod
    def _lexicographically_less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise ``a < b`` under lexicographic comparison of key columns."""
        less = np.zeros(a.shape[0], dtype=bool)
        decided = np.zeros(a.shape[0], dtype=bool)
        for column in range(a.shape[1]):
            smaller = a[:, column] < b[:, column]
            larger = a[:, column] > b[:, column]
            less |= smaller & ~decided
            decided |= smaller | larger
            if decided.all():
                break
        return less
