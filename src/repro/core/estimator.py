"""The on-line resource estimator (the SCALING technique's public API).

A trained :class:`ResourceEstimator` maps an annotated query plan to
estimates of its CPU time and logical I/O at three granularities: per
operator, per pipeline and per query.

Estimation is batched end to end: :meth:`ResourceEstimator.estimate_workload`
extracts features for every plan, groups operator rows by
``(family, resource)`` into contiguous float64 matrices, runs one vectorised
model-selection + MART evaluation per group, and scatters the results back to
per-operator/per-pipeline/per-query granularities.  The per-plan and
per-operator methods are thin wrappers over the same family-batch internals,
so scalar/batch parity holds by construction — and the batched path makes the
paper's observation that prediction overhead is negligible next to query
optimisation (Section 7.3) hold for whole workloads, not just single calls.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.core.scaling import fit_robust_scaling
from repro.core.trainer import (
    FamilyTrainingData,
    OperatorModelSet,
    ScalingModelTrainer,
    TrainerConfig,
)
from repro.robustness.degradation import (
    DegradationReport,
    DegradationTier,
    DegradedOperator,
    ScalingFallback,
)
from repro.robustness.envelope import FeatureEnvelope
from repro.features.definitions import (
    FeatureMode,
    OperatorFamily,
    features_for_family,
    operator_family,
)
from repro.features.extractor import FeatureExtractor, OperatorFeatures
from repro.plan.operators import PlanOperator
from repro.plan.plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.protocol import TrainingCorpus

__all__ = ["ResourceEstimator", "WorkloadEstimate"]

_LOGGER = logging.getLogger("repro.core.estimator")

#: The resources the library models, as in the paper.
DEFAULT_RESOURCES: tuple[str, ...] = ("cpu", "io")


def _family_matrix(
    family: OperatorFamily, feature_rows: Sequence[dict[str, float]]
) -> np.ndarray:
    """Dense matrix over the family's canonical feature order."""
    names = features_for_family(family)
    return np.array(
        [[row.get(name, 0.0) for name in names] for row in feature_rows],
        dtype=np.float64,
    ).reshape(len(feature_rows), len(names))


@dataclass
class _FallbackModel:
    """Last-resort estimate for operator families unseen during training.

    Predicts the median per-output-tuple resource usage observed across all
    training operators, multiplied by the instance's output cardinality.
    This keeps cross-workload experiments well-defined even if a plan uses
    an operator type that never appeared in the training workload.
    """

    per_tuple: float

    def predict_batch(self, cout: np.ndarray, cin1: np.ndarray) -> np.ndarray:
        rows = np.maximum(
            np.asarray(cout, dtype=np.float64), np.asarray(cin1, dtype=np.float64)
        )
        return np.maximum(self.per_tuple * rows, 0.0)

    def predict(self, feature_values: dict[str, float]) -> float:
        return float(
            self.predict_batch(
                np.array([feature_values.get("COUT", 0.0)], dtype=np.float64),
                np.array([feature_values.get("CIN1", 0.0)], dtype=np.float64),
            )[0]
        )


@dataclass
class WorkloadEstimate:
    """Batched resource estimates for a list of plans, at all granularities."""

    plans: list[QueryPlan]
    resources: tuple[str, ...]
    #: resource -> one ``{node_id: estimate}`` dictionary per plan.
    operator_estimates: dict[str, list[dict[int, float]]]
    #: Which fallback tier served each (plan, resource); ``None`` only when
    #: the estimate was produced with ``guardrails=False``.
    degradation: DegradationReport | None = None

    @property
    def n_plans(self) -> int:
        return len(self.plans)

    def operators(self, plan_index: int, resource: str) -> dict[int, float]:
        """Per-operator estimates of one plan, keyed by operator node id."""
        return self._per_plan(resource)[plan_index]

    def pipelines(self, plan_index: int, resource: str) -> dict[int, float]:
        """Per-pipeline estimates of one plan (the Section 5.2 granularity)."""
        per_operator = self.operators(plan_index, resource)
        return {
            pipeline.index: float(
                sum(per_operator[op.node_id] for op in pipeline.operators)
            )
            for pipeline in self.plans[plan_index].pipelines()
        }

    def query(self, plan_index: int, resource: str) -> float:
        """Query-level estimate of one plan (sum over its operators)."""
        return float(sum(self.operators(plan_index, resource).values()))

    def query_totals(self, resource: str) -> np.ndarray:
        """Query-level estimates for every plan, in input order."""
        per_plan = self._per_plan(resource)
        return np.array(
            [sum(estimates.values()) for estimates in per_plan], dtype=np.float64
        )

    def _per_plan(self, resource: str) -> list[dict[int, float]]:
        try:
            return self.operator_estimates[resource]
        except KeyError:
            raise ValueError(
                f"unknown resource {resource!r}; this estimate covers {self.resources}"
            ) from None


@dataclass
class ResourceEstimator:
    """Operator-level resource estimation with MART + scaling models.

    The class satisfies the :class:`repro.api.Estimator` protocol directly:
    :meth:`fit` trains from a training corpus (or pre-built family data),
    :meth:`predict_batch` produces query-level totals for a list of plans,
    and :meth:`save` / :meth:`load` round-trip the trained model through the
    versioned artifact codec in :mod:`repro.core.serialization`.
    """

    feature_mode: FeatureMode = FeatureMode.EXACT
    model_sets: dict[tuple[OperatorFamily, str], OperatorModelSet] = field(default_factory=dict)
    fallbacks: dict[str, _FallbackModel] = field(default_factory=dict)
    resources: tuple[str, ...] = DEFAULT_RESOURCES
    #: Training configuration used by :meth:`fit`; persisted with the model.
    trainer_config: TrainerConfig | None = None
    #: Per-family training-feature envelopes recorded at fit time; drive OOD
    #: detection (:class:`~repro.robustness.validation.PlanValidator`) and
    #: the artifact canary checks.  Empty for pre-robustness (v1) artifacts.
    envelopes: dict[OperatorFamily, FeatureEnvelope] = field(default_factory=dict)
    #: Median per-tuple rate per (family, resource) — the FAMILY_RATE tier.
    family_rates: dict[tuple[OperatorFamily, str], float] = field(default_factory=dict)
    #: Fitted ``alpha · g(cardinality)`` curves — the SCALING tier.
    scaling_fallbacks: dict[tuple[OperatorFamily, str], ScalingFallback] = field(
        default_factory=dict
    )

    #: Display name under the unified Estimator protocol (not a dataclass field).
    name = "SCALING"

    def __post_init__(self) -> None:
        self._extractor = FeatureExtractor(self.feature_mode)

    # -- training -----------------------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        training_data: dict[OperatorFamily, FamilyTrainingData],
        feature_mode: FeatureMode = FeatureMode.EXACT,
        resources: tuple[str, ...] = DEFAULT_RESOURCES,
        config: TrainerConfig | None = None,
    ) -> "ResourceEstimator":
        """Train model sets for every operator family present in the data.

        ``training_data`` is produced by
        :func:`repro.workloads.datasets.build_training_data`; the feature
        dictionaries it contains must have been extracted with the same
        ``feature_mode`` that will be used at estimation time.
        """
        trainer = ScalingModelTrainer(config)
        estimator = cls(feature_mode=feature_mode, resources=resources, trainer_config=config)
        for family, data in training_data.items():
            if data.feature_rows:
                estimator.envelopes[family] = FeatureEnvelope.fit(
                    family, _family_matrix(family, data.feature_rows)
                )
        for resource in resources:
            per_tuple_rates: list[float] = []
            for family, data in training_data.items():
                model_set = trainer.train_family(data, resource)
                if model_set is not None:
                    estimator.model_sets[(family, resource)] = model_set
                targets = data.target_array(resource)
                family_rates: list[float] = []
                cardinalities: list[float] = []
                for row, value in zip(data.feature_rows, targets):
                    rows = max(row.get("COUT", 0.0), row.get("CIN1", 0.0), 1.0)
                    per_tuple_rates.append(value / rows)
                    family_rates.append(value / rows)
                    cardinalities.append(max(row.get("COUT", 0.0), row.get("CIN1", 0.0)))
                if family_rates:
                    estimator.family_rates[(family, resource)] = float(
                        np.median(family_rates)
                    )
                fitted = fit_robust_scaling(
                    np.asarray(cardinalities, dtype=np.float64),
                    np.asarray(targets, dtype=np.float64),
                )
                if fitted is not None:
                    estimator.scaling_fallbacks[(family, resource)] = (
                        ScalingFallback.from_fitted(fitted)
                    )
            estimator.fallbacks[resource] = _FallbackModel(
                per_tuple=float(np.median(per_tuple_rates)) if per_tuple_rates else 0.0,
            )
        return estimator

    def fit(
        self,
        training_data: "TrainingCorpus | dict[OperatorFamily, FamilyTrainingData]",
    ) -> "ResourceEstimator":
        """Train this estimator in place (the unified Estimator protocol).

        ``training_data`` is either a :class:`repro.api.TrainingCorpus`-like
        object (anything exposing ``queries``, ``mode`` and ``resources``) or
        the pre-built ``{family: FamilyTrainingData}`` dictionary consumed by
        :meth:`train`.  A corpus overrides the instance's feature mode and
        resource tuple; a raw dictionary keeps them.
        """
        if isinstance(training_data, dict):
            family_data = training_data
            mode, resources = self.feature_mode, self.resources
        else:
            from repro.workloads.datasets import build_training_data

            mode = training_data.mode
            resources = tuple(training_data.resources)
            family_data = build_training_data(list(training_data.queries), mode)
        trained = ResourceEstimator.train(
            family_data, feature_mode=mode, resources=resources, config=self.trainer_config
        )
        self.feature_mode = trained.feature_mode
        self.resources = trained.resources
        self.model_sets = trained.model_sets
        self.fallbacks = trained.fallbacks
        self.envelopes = trained.envelopes
        self.family_rates = trained.family_rates
        self.scaling_fallbacks = trained.scaling_fallbacks
        self._extractor = FeatureExtractor(self.feature_mode)
        return self

    # -- persistence ---------------------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trained model to ``path`` as a versioned artifact."""
        from repro.core.serialization import save_estimator

        save_estimator(self, path)

    @classmethod
    def load(cls, path: str | Path) -> "ResourceEstimator":
        """Load an artifact written by :meth:`save` (strict on version/corruption)."""
        from repro.core.serialization import load_estimator

        return load_estimator(path)

    # -- batched estimation --------------------------------------------------------------------------
    def estimate_workload(
        self,
        plans: Iterable[QueryPlan],
        resources: Sequence[str] | None = None,
        *,
        guardrails: bool = True,
        ood_threshold: float | None = None,
    ) -> WorkloadEstimate:
        """Batch-estimate a whole workload of plans in one pass.

        Features are extracted for every plan, operator rows are grouped by
        family into contiguous matrices, and each ``(family, resource)``
        group runs through one vectorised model-selection + MART evaluation.
        """
        plans = list(plans)
        family_rows = self._extractor.extract_plans(plans)
        groups: dict[OperatorFamily, list[tuple[int, int]]] = {}
        matrices: dict[OperatorFamily, np.ndarray] = {}
        for family, rows in family_rows.items():
            groups[family] = list(
                zip(rows.plan_indices.tolist(), rows.node_ids.tolist())
            )
            matrices[family] = rows.matrix
        return self._estimate_grouped(
            plans,
            groups,
            matrices,
            resources,
            guardrails=guardrails,
            ood_threshold=ood_threshold,
        )

    def estimate_extracted_workload(
        self,
        plans: Sequence[QueryPlan],
        extracted: Sequence[dict],
        resources: Sequence[str] | None = None,
        *,
        guardrails: bool = True,
        ood_threshold: float | None = None,
    ) -> WorkloadEstimate:
        """Batch-estimate plans whose features are already extracted.

        ``extracted[i]`` is the :meth:`extract_plan_features` result of
        ``plans[i]``.  This is the shared tail of the batched path: the
        serving layer feeds cached extraction results through it, so cached
        and uncached estimates are identical by construction.

        With ``guardrails`` on (the default), rows the MART models cannot
        serve — non-finite features, a raising model, non-finite or negative
        predictions — are re-estimated down the fallback ladder
        (:class:`~repro.robustness.degradation.DegradationTier`), and the
        returned estimate carries a
        :class:`~repro.robustness.degradation.DegradationReport`.  On clean
        inputs the guarded path returns bit-identical numbers to
        ``guardrails=False``.  ``ood_threshold`` additionally flags plans
        whose features lie outside the training envelopes by more than that
        many training-ranges.
        """
        plans = list(plans)
        groups: dict[OperatorFamily, list[tuple[int, int]]] = {}
        rows_by_family: dict[OperatorFamily, list[dict[str, float]]] = {}
        for plan_index, plan_features in enumerate(extracted):
            for node_id, op_features in plan_features.items():
                groups.setdefault(op_features.family, []).append((plan_index, node_id))
                rows_by_family.setdefault(op_features.family, []).append(
                    op_features.values
                )
        matrices = {
            family: _family_matrix(family, rows)
            for family, rows in rows_by_family.items()
        }
        return self._estimate_grouped(
            plans,
            groups,
            matrices,
            resources,
            guardrails=guardrails,
            ood_threshold=ood_threshold,
        )

    def _estimate_grouped(
        self,
        plans: list[QueryPlan],
        groups: dict[OperatorFamily, list[tuple[int, int]]],
        matrices: dict[OperatorFamily, np.ndarray],
        resources: Sequence[str] | None,
        *,
        guardrails: bool,
        ood_threshold: float | None,
    ) -> WorkloadEstimate:
        """Shared tail of the batched path: model evaluation over grouped rows.

        ``groups[family][i]`` is the ``(plan_index, node_id)`` source of row
        ``i`` of ``matrices[family]``.  Both batched entry points (fresh
        extraction and the serving layer's cached extraction) land here, so
        their numbers are identical by construction.
        """
        resources = tuple(resources) if resources is not None else self.resources
        for resource in resources:
            self._check_resource(resource)

        operator_estimates: dict[str, list[dict[int, float]]] = {
            resource: [{} for _ in plans] for resource in resources
        }
        entries: list[DegradedOperator] = []
        for resource in resources:
            per_plan = operator_estimates[resource]
            for family, rows in groups.items():
                if guardrails:
                    predictions, tiers, reasons = self._predict_family_rows_guarded(
                        family, matrices[family], resource
                    )
                    for row_index, reason in reasons.items():
                        plan_index, node_id = rows[row_index]
                        entries.append(
                            DegradedOperator(
                                plan_index=plan_index,
                                node_id=node_id,
                                resource=resource,
                                tier=DegradationTier(int(tiers[row_index])),
                                reason=reason,
                            )
                        )
                else:
                    predictions = self._predict_family_rows(
                        family, matrices[family], resource
                    )
                for (plan_index, node_id), value in zip(rows, predictions):
                    per_plan[plan_index][node_id] = float(value)
        degradation = None
        if guardrails:
            degradation = DegradationReport(
                entries=tuple(entries),
                ood_plans=self._flag_ood_plans(groups, matrices, ood_threshold),
            )
        return WorkloadEstimate(
            plans=plans,
            resources=resources,
            operator_estimates=operator_estimates,
            degradation=degradation,
        )

    def predict_batch(self, plans: Sequence[Any], resource: str = "cpu") -> np.ndarray:
        """Query-level totals for a list of plans (the Estimator protocol).

        Accepts :class:`~repro.plan.plan.QueryPlan` objects or anything
        exposing a ``plan`` attribute (e.g. observed queries), so the same
        call shape works for the experiment harness and for serving.
        """
        resolved = [plan.plan if hasattr(plan, "plan") else plan for plan in plans]
        return self.estimate_workload(resolved, (resource,)).query_totals(resource)

    def estimate_feature_rows(
        self,
        family: OperatorFamily,
        feature_rows: Sequence[dict[str, float]],
        resource: str = "cpu",
    ) -> np.ndarray:
        """Batch-estimate already-extracted feature dictionaries of one family."""
        return self._predict_family_rows(family, _family_matrix(family, feature_rows), resource)

    def extract_plan_features(self, plan: QueryPlan) -> dict[int, OperatorFeatures]:
        """Per-operator feature vectors of a plan, in this estimator's mode.

        Public so serving layers (e.g. the
        :class:`~repro.api.EstimationService`) can cache extraction results
        per plan and feed them back through :meth:`estimate_feature_rows`.
        """
        return self._extractor.extract_plan(plan)

    # -- scalar estimation (one-row wrappers over the batch path) ------------------------------------
    def estimate_operator(
        self,
        operator: PlanOperator,
        parent: PlanOperator | None = None,
        resource: str = "cpu",
    ) -> float:
        """Estimate one operator instance."""
        features = self._extractor.extract_operator(operator, parent)
        return self._estimate_features(features.family, features.values, resource)

    def estimate_plan(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Estimate the total resource usage of a plan (sum over operators)."""
        per_operator = self.estimate_operators(plan, resource)
        return float(sum(per_operator.values()))

    def estimate_operators(self, plan: QueryPlan, resource: str = "cpu") -> dict[int, float]:
        """Per-operator estimates for a plan, keyed by operator node id."""
        features = self._extractor.extract_plan(plan)
        estimates: dict[int, float] = {}
        for op in plan.operators():
            op_features = features[op.node_id]
            estimates[op.node_id] = self._estimate_features(
                op_features.family, op_features.values, resource
            )
        return estimates

    def estimate_pipelines(self, plan: QueryPlan, resource: str = "cpu") -> dict[int, float]:
        """Per-pipeline estimates (the scheduling granularity of Section 5.2)."""
        per_operator = self.estimate_operators(plan, resource)
        totals: dict[int, float] = {}
        for pipeline in plan.pipelines():
            totals[pipeline.index] = float(
                sum(per_operator[op.node_id] for op in pipeline.operators)
            )
        return totals

    def estimate_query(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Alias of :meth:`estimate_plan` (query-level granularity)."""
        return self.estimate_plan(plan, resource)

    # -- internals --------------------------------------------------------------------------------------
    def _predict_family_rows(
        self, family: OperatorFamily, matrix: np.ndarray, resource: str
    ) -> np.ndarray:
        """One batched prediction for rows of one family (canonical column order)."""
        self._check_resource(resource)
        matrix = np.asarray(matrix, dtype=np.float64)
        model_set = self.model_sets.get((family, resource))
        if model_set is not None:
            return model_set.predict_batch(matrix)
        fallback = self.fallbacks.get(resource)
        if fallback is not None:
            names = features_for_family(family)
            return fallback.predict_batch(
                matrix[:, names.index("COUT")], matrix[:, names.index("CIN1")]
            )
        return np.zeros(matrix.shape[0], dtype=np.float64)

    def _predict_family_rows_guarded(
        self, family: OperatorFamily, matrix: np.ndarray, resource: str
    ) -> tuple[np.ndarray, np.ndarray, dict[int, str]]:
        """Guarded batched prediction: rows the model cannot serve degrade.

        Returns ``(predictions, tiers, reasons)`` where ``tiers[i]`` is the
        :class:`~repro.robustness.degradation.DegradationTier` that served
        row ``i`` and ``reasons`` maps exactly the degraded row indices to
        why they left the model tier.  On clean inputs with a trained model
        set this returns the model's batch output unchanged (bit-identical
        to :meth:`_predict_family_rows`).
        """
        self._check_resource(resource)
        matrix = np.asarray(matrix, dtype=np.float64)
        n = int(matrix.shape[0])
        tiers = np.full(n, int(DegradationTier.MODEL), dtype=np.int64)
        reasons: dict[int, str] = {}
        model_set = self.model_sets.get((family, resource))

        if model_set is None:
            # Parity with the ungated path: families without a trained model
            # set are served by the global fallback, recorded as such.
            names = features_for_family(family)
            cout = matrix[:, names.index("COUT")]
            cin1 = matrix[:, names.index("CIN1")]
            fallback = self.fallbacks.get(resource)
            if fallback is not None:
                raw = fallback.predict_batch(cout, cin1)
                predictions = np.where(np.isfinite(raw), raw, 0.0)
            else:
                predictions = np.zeros(n, dtype=np.float64)
            tiers[:] = int(DegradationTier.GLOBAL_DEFAULT)
            for row_index in range(n):
                reasons[row_index] = "no-model-set"
            return predictions, tiers, reasons

        if np.isfinite(matrix).all():
            # Common case: every row is model-servable.  Keep this branch to
            # scalar checks only — on valid output it returns the model's
            # batch result unchanged (bit-identical to the ungated path).
            try:
                out = np.asarray(model_set.predict_batch(matrix), dtype=np.float64)
            except (ValueError, ArithmeticError, RuntimeError) as exc:
                _LOGGER.warning(
                    "model set %s/%s raised during batch prediction; degrading "
                    "%d row(s): %s",
                    family.value,
                    resource,
                    n,
                    exc,
                )
                predictions = np.zeros(n, dtype=np.float64)
                for row_index in range(n):
                    reasons[row_index] = "model-error"
            else:
                finite_out = np.isfinite(out)
                if finite_out.all() and (out >= 0.0).all():
                    return out, tiers, reasons
                invalid = ~finite_out | (out < 0.0)
                predictions = np.where(invalid, 0.0, out)
                for row_index in np.flatnonzero(invalid):
                    reasons[int(row_index)] = "invalid-prediction"
        else:
            predictions = np.zeros(n, dtype=np.float64)
            finite_rows = np.isfinite(matrix).all(axis=1)
            for row_index in np.flatnonzero(~finite_rows):
                reasons[int(row_index)] = "non-finite-features"
            model_rows = np.flatnonzero(finite_rows)
            if model_rows.size:
                try:
                    out = np.asarray(
                        model_set.predict_batch(matrix[model_rows]), dtype=np.float64
                    )
                except (ValueError, ArithmeticError, RuntimeError) as exc:
                    _LOGGER.warning(
                        "model set %s/%s raised during batch prediction; degrading "
                        "%d row(s): %s",
                        family.value,
                        resource,
                        int(model_rows.size),
                        exc,
                    )
                    for row_index in model_rows:
                        reasons[int(row_index)] = "model-error"
                else:
                    invalid = ~np.isfinite(out) | (out < 0.0)
                    valid = ~invalid
                    predictions[model_rows[valid]] = out[valid]
                    for row_index in model_rows[invalid]:
                        reasons[int(row_index)] = "invalid-prediction"

        degraded = np.asarray(sorted(reasons), dtype=np.int64)
        if degraded.size:
            names = features_for_family(family)
            cout = matrix[:, names.index("COUT")]
            cin1 = matrix[:, names.index("CIN1")]
            raw_cards = np.maximum(cout[degraded], cin1[degraded])
            cards = np.where(
                np.isfinite(raw_cards), np.maximum(raw_cards, 0.0), 0.0
            )
            self._degrade_rows(
                family, resource, degraded, cards, predictions, tiers, reasons
            )
        return predictions, tiers, reasons

    def _degrade_rows(
        self,
        family: OperatorFamily,
        resource: str,
        row_indices: np.ndarray,
        cards: np.ndarray,
        predictions: np.ndarray,
        tiers: np.ndarray,
        reasons: dict[int, str],
    ) -> None:
        """Serve degraded rows down the ladder (mutates predictions/tiers).

        ``cards`` holds the sanitised (finite, non-negative) output
        cardinalities of ``row_indices``.  Each tier serves every row it can
        produce a finite estimate for; anything still unserved after the
        global default becomes an explicit zero.
        """
        remaining = np.arange(row_indices.shape[0], dtype=np.int64)
        scaling = self.scaling_fallbacks.get((family, resource))
        if scaling is not None and remaining.size:
            out = scaling.predict_rows(cards[remaining])
            served = np.isfinite(out)
            taken = remaining[served]
            predictions[row_indices[taken]] = out[served]
            tiers[row_indices[taken]] = int(DegradationTier.SCALING)
            remaining = remaining[~served]
        rate = self.family_rates.get((family, resource))
        if rate is not None and np.isfinite(rate) and remaining.size:
            out = np.maximum(float(rate) * cards[remaining], 0.0)
            served = np.isfinite(out)
            taken = remaining[served]
            predictions[row_indices[taken]] = out[served]
            tiers[row_indices[taken]] = int(DegradationTier.FAMILY_RATE)
            remaining = remaining[~served]
        fallback = self.fallbacks.get(resource)
        if fallback is not None and remaining.size:
            out = fallback.predict_batch(cards[remaining], cards[remaining])
            served = np.isfinite(out)
            taken = remaining[served]
            predictions[row_indices[taken]] = out[served]
            tiers[row_indices[taken]] = int(DegradationTier.GLOBAL_DEFAULT)
            remaining = remaining[~served]
        if remaining.size:
            predictions[row_indices[remaining]] = 0.0
            tiers[row_indices[remaining]] = int(DegradationTier.GLOBAL_DEFAULT)
            for position in remaining:
                row_index = int(row_indices[position])
                reasons[row_index] = reasons[row_index] + "; no-fallback-available"

    def _flag_ood_plans(
        self,
        groups: dict[OperatorFamily, list[tuple[int, int]]],
        matrices: dict[OperatorFamily, np.ndarray],
        ood_threshold: float | None,
    ) -> dict[int, float]:
        """Plans whose features leave the training envelopes, with scores."""
        ood_plans: dict[int, float] = {}
        if ood_threshold is None:
            return ood_plans
        for family, rows in groups.items():
            envelope = self.envelopes.get(family)
            if envelope is None:
                continue
            scores = envelope.out_scores(matrices[family])
            flagged = np.flatnonzero(np.isfinite(scores) & (scores > float(ood_threshold)))
            for row_index in flagged:
                plan_index = rows[int(row_index)][0]
                score = float(scores[row_index])
                if score > ood_plans.get(plan_index, 0.0):
                    ood_plans[plan_index] = score
        return ood_plans

    def _estimate_features(
        self, family: OperatorFamily, feature_values: dict[str, float], resource: str
    ) -> float:
        return float(self.estimate_feature_rows(family, [feature_values], resource)[0])

    def _check_resource(self, resource: str) -> None:
        if resource not in self.resources:
            raise ValueError(
                f"unknown resource {resource!r}; this estimator models {self.resources}"
            )

    # -- introspection -------------------------------------------------------------------------------------
    def families(self, resource: str = "cpu") -> list[OperatorFamily]:
        """Operator families with a trained model set for ``resource``."""
        return [family for (family, res) in self.model_sets if res == resource]

    def model_set(self, family: OperatorFamily, resource: str = "cpu") -> OperatorModelSet:
        try:
            return self.model_sets[(family, resource)]
        except KeyError:
            raise KeyError(f"no model set for family {family} and resource {resource!r}") from None

    @staticmethod
    def family_of(operator: PlanOperator) -> OperatorFamily:
        """Convenience passthrough to the feature-definition mapping."""
        return operator_family(operator.op_type)
