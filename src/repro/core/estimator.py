"""The on-line resource estimator (the SCALING technique's public API).

A trained :class:`ResourceEstimator` maps an annotated query plan to
estimates of its CPU time and logical I/O at three granularities: per
operator, per pipeline and per query.  Estimation of a plan costs one
feature extraction plus one model-selection decision and one MART evaluation
per operator, matching the paper's observation that prediction overhead is
negligible next to query optimisation itself (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import (
    FamilyTrainingData,
    OperatorModelSet,
    ScalingModelTrainer,
    TrainerConfig,
)
from repro.features.definitions import FeatureMode, OperatorFamily, operator_family
from repro.features.extractor import FeatureExtractor
from repro.plan.operators import PlanOperator
from repro.plan.plan import QueryPlan

__all__ = ["ResourceEstimator"]

#: The resources the library models, as in the paper.
DEFAULT_RESOURCES: tuple[str, ...] = ("cpu", "io")


@dataclass
class _FallbackModel:
    """Last-resort estimate for operator families unseen during training.

    Predicts the average per-output-tuple resource usage observed across all
    training operators, multiplied by the instance's output cardinality.
    This keeps cross-workload experiments well-defined even if a plan uses
    an operator type that never appeared in the training workload.
    """

    per_tuple: float
    constant: float

    def predict(self, feature_values: dict[str, float]) -> float:
        rows = max(feature_values.get("COUT", 0.0), feature_values.get("CIN1", 0.0))
        return max(self.constant + self.per_tuple * rows, 0.0)


@dataclass
class ResourceEstimator:
    """Operator-level resource estimation with MART + scaling models."""

    feature_mode: FeatureMode = FeatureMode.EXACT
    model_sets: dict[tuple[OperatorFamily, str], OperatorModelSet] = field(default_factory=dict)
    fallbacks: dict[str, _FallbackModel] = field(default_factory=dict)
    resources: tuple[str, ...] = DEFAULT_RESOURCES

    def __post_init__(self) -> None:
        self._extractor = FeatureExtractor(self.feature_mode)

    # -- training -----------------------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        training_data: dict[OperatorFamily, FamilyTrainingData],
        feature_mode: FeatureMode = FeatureMode.EXACT,
        resources: tuple[str, ...] = DEFAULT_RESOURCES,
        config: TrainerConfig | None = None,
    ) -> "ResourceEstimator":
        """Train model sets for every operator family present in the data.

        ``training_data`` is produced by
        :func:`repro.workloads.datasets.build_training_data`; the feature
        dictionaries it contains must have been extracted with the same
        ``feature_mode`` that will be used at estimation time.
        """
        trainer = ScalingModelTrainer(config)
        estimator = cls(feature_mode=feature_mode, resources=resources)
        for resource in resources:
            per_tuple_rates: list[float] = []
            constants: list[float] = []
            for family, data in training_data.items():
                model_set = trainer.train_family(data, resource)
                if model_set is not None:
                    estimator.model_sets[(family, resource)] = model_set
                targets = data.target_array(resource)
                for row, value in zip(data.feature_rows, targets):
                    rows = max(row.get("COUT", 0.0), row.get("CIN1", 0.0), 1.0)
                    per_tuple_rates.append(value / rows)
                    constants.append(value)
            estimator.fallbacks[resource] = _FallbackModel(
                per_tuple=float(np.median(per_tuple_rates)) if per_tuple_rates else 0.0,
                constant=float(np.median(constants)) * 0.0 if constants else 0.0,
            )
        return estimator

    # -- estimation ----------------------------------------------------------------------------------
    def estimate_operator(
        self,
        operator: PlanOperator,
        parent: PlanOperator | None = None,
        resource: str = "cpu",
    ) -> float:
        """Estimate one operator instance."""
        features = self._extractor.extract_operator(operator, parent)
        return self._estimate_features(features.family, features.values, resource)

    def estimate_plan(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Estimate the total resource usage of a plan (sum over operators)."""
        per_operator = self.estimate_operators(plan, resource)
        return float(sum(per_operator.values()))

    def estimate_operators(self, plan: QueryPlan, resource: str = "cpu") -> dict[int, float]:
        """Per-operator estimates for a plan, keyed by operator node id."""
        features = self._extractor.extract_plan(plan)
        estimates: dict[int, float] = {}
        for op in plan.operators():
            op_features = features[op.node_id]
            estimates[op.node_id] = self._estimate_features(
                op_features.family, op_features.values, resource
            )
        return estimates

    def estimate_pipelines(self, plan: QueryPlan, resource: str = "cpu") -> dict[int, float]:
        """Per-pipeline estimates (the scheduling granularity of Section 5.2)."""
        per_operator = self.estimate_operators(plan, resource)
        totals: dict[int, float] = {}
        for pipeline in plan.pipelines():
            totals[pipeline.index] = float(
                sum(per_operator[op.node_id] for op in pipeline.operators)
            )
        return totals

    def estimate_query(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Alias of :meth:`estimate_plan` (query-level granularity)."""
        return self.estimate_plan(plan, resource)

    # -- internals --------------------------------------------------------------------------------------
    def _estimate_features(
        self, family: OperatorFamily, feature_values: dict[str, float], resource: str
    ) -> float:
        self._check_resource(resource)
        model_set = self.model_sets.get((family, resource))
        if model_set is not None:
            return model_set.predict(feature_values)
        fallback = self.fallbacks.get(resource)
        if fallback is not None:
            return fallback.predict(feature_values)
        return 0.0

    def _check_resource(self, resource: str) -> None:
        if resource not in self.resources:
            raise ValueError(
                f"unknown resource {resource!r}; this estimator models {self.resources}"
            )

    # -- introspection -------------------------------------------------------------------------------------
    def families(self, resource: str = "cpu") -> list[OperatorFamily]:
        """Operator families with a trained model set for ``resource``."""
        return [family for (family, res) in self.model_sets if res == resource]

    def model_set(self, family: OperatorFamily, resource: str = "cpu") -> OperatorModelSet:
        try:
            return self.model_sets[(family, resource)]
        except KeyError:
            raise KeyError(f"no model set for family {family} and resource {resource!r}") from None

    @staticmethod
    def family_of(operator: PlanOperator) -> OperatorFamily:
        """Convenience passthrough to the feature-definition mapping."""
        return operator_family(operator.op_type)
