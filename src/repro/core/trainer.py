"""Off-line model training (paper Section 6, Figure 5).

For every (operator family, resource) pair the trainer fits

* one *plain* MART model over the family's full feature set, and
* one *combined* model per scalable ("outlier-able") feature, plus a small
  number of two-feature combinations (the paper scales by at most two
  features to keep the number of stored models manageable),

and then designates as the family's **default model** the trained model with
the lowest error on the training set (the paper notes the default may
already incorporate scaling).  The result is an :class:`OperatorModelSet`
which, together with the online :class:`~repro.core.model_selection.ModelSelector`,
fully determines how an operator instance is estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.combined_model import CombinedModel
from repro.core.model_selection import BatchSelection, ModelSelector, SelectionDecision
from repro.core.scaled_model import ScalingStep
from repro.core.scaling import default_scaling_function
from repro.features.definitions import (
    OperatorFamily,
    features_for_family,
    scalable_features,
)
from repro.ml.mart import MARTConfig

__all__ = ["TrainerConfig", "FamilyTrainingData", "OperatorModelSet", "ScalingModelTrainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Configuration of the off-line training pipeline."""

    #: Hyper-parameters of every underlying MART model.
    mart: MARTConfig = field(default_factory=MARTConfig)
    #: Minimum number of training rows required to fit models for a family.
    min_training_rows: int = 20
    #: Upper bound on the number of two-feature combined models per family.
    max_pair_models: int = 3
    #: Whether to train two-feature combined models at all.
    enable_pair_scaling: bool = True


@dataclass
class FamilyTrainingData:
    """Training rows of one operator family.

    ``feature_rows[i]`` holds the feature dictionary of the i-th observed
    operator instance and ``targets[resource][i]`` its observed resource
    usage.
    """

    family: OperatorFamily
    feature_rows: list[dict[str, float]] = field(default_factory=list)
    targets: dict[str, list[float]] = field(default_factory=dict)

    def add(self, feature_values: dict[str, float], observed: dict[str, float]) -> None:
        self.feature_rows.append(feature_values)
        for resource, value in observed.items():
            self.targets.setdefault(resource, []).append(float(value))

    def target_array(self, resource: str) -> np.ndarray:
        return np.asarray(self.targets.get(resource, []), dtype=np.float64)

    @property
    def n_rows(self) -> int:
        return len(self.feature_rows)


@dataclass
class OperatorModelSet:
    """All trained models for one (family, resource) pair."""

    family: OperatorFamily
    resource: str
    models: list[CombinedModel]
    default_model: CombinedModel
    selector: ModelSelector = field(default_factory=ModelSelector)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Canonical raw feature order shared by every model of the set."""
        return self.default_model.feature_names

    def feature_matrix(self, feature_rows: list[dict[str, float]]) -> np.ndarray:
        """Dense ``(n, len(feature_names))`` matrix from feature dictionaries."""
        return self.default_model.feature_matrix(feature_rows)

    def select(self, feature_values: dict[str, float]) -> SelectionDecision:
        return self.selector.select(self.default_model, self.models, feature_values)

    def select_batch(self, matrix: np.ndarray) -> BatchSelection:
        """Vectorised model selection for every row of a raw feature matrix."""
        return self.selector.select_batch(self.default_model, self.models, matrix)

    def predict_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Estimate the resource for every row of a raw feature matrix.

        Selects a model per row in one vectorised pass, then runs one MART
        evaluation per *chosen model* over the contiguous sub-matrix of the
        rows it won, scattering results back into row order.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        selection = self.select_batch(matrix)
        estimates = np.zeros(matrix.shape[0], dtype=np.float64)
        for index in np.unique(selection.indices):
            mask = selection.indices == index
            estimates[mask] = selection.candidates[index].predict_batch(matrix[mask])
        return estimates

    def predict(self, feature_values: dict[str, float]) -> float:
        """Estimate the resource for one operator instance."""
        return float(self.predict_batch(self.feature_matrix([feature_values]))[0])

    @property
    def n_models(self) -> int:
        return len(self.models)


class ScalingModelTrainer:
    """Trains the per-family model sets of the SCALING technique."""

    #: Preferred two-feature scaling combinations per family.  Pairs listed
    #: first are tried first; only pairs whose features are both scalable for
    #: the family/resource are used.
    _PAIR_PREFERENCES: dict[OperatorFamily, tuple[tuple[str, str], ...]] = {
        OperatorFamily.SCAN: (("TSIZE", "SOUTAVG"), ("CIN1", "SINAVG1")),
        OperatorFamily.SEEK: (("TSIZE", "SOUTAVG"), ("COUT", "SOUTAVG")),
        OperatorFamily.FILTER: (("CIN1", "SINAVG1"), ("CIN1", "COUT")),
        OperatorFamily.SORT: (("CIN1", "SINAVG1"), ("CIN1", "SOUTAVG")),
        OperatorFamily.HASH_JOIN: (("CIN1", "CIN2"), ("CIN1", "SINAVG1")),
        OperatorFamily.MERGE_JOIN: (("CIN1", "CIN2"), ("CIN1", "SINAVG1")),
        OperatorFamily.NESTED_LOOP_JOIN: (("CIN1", "SSEEKTABLE"), ("CIN1", "COUT")),
        OperatorFamily.HASH_AGGREGATE: (("CIN1", "SINAVG1"), ("CIN1", "COUT")),
        OperatorFamily.STREAM_AGGREGATE: (("CIN1", "SINAVG1"),),
        OperatorFamily.COMPUTE_SCALAR: (("CIN1", "SINAVG1"),),
        OperatorFamily.TOP: (("CIN1", "SINAVG1"),),
    }

    def __init__(self, config: TrainerConfig | None = None) -> None:
        self.config = config or TrainerConfig()

    # -- public API ----------------------------------------------------------------------------
    def train_family(
        self, data: FamilyTrainingData, resource: str
    ) -> OperatorModelSet | None:
        """Train all models of one family for one resource.

        Returns ``None`` when the family has too few training rows (the
        estimator then falls back to a neighbour-free default, see
        :class:`~repro.core.estimator.ResourceEstimator`).
        """
        targets = data.target_array(resource)
        if data.n_rows < self.config.min_training_rows or targets.size != data.n_rows:
            return None
        feature_names = features_for_family(data.family)
        models: list[CombinedModel] = []

        plain = CombinedModel(
            family=data.family,
            resource=resource,
            feature_names=feature_names,
            steps=(),
            mart_config=self.config.mart,
        )
        plain.fit(data.feature_rows, targets)
        models.append(plain)

        for steps in self._candidate_steps(data, resource):
            model = CombinedModel(
                family=data.family,
                resource=resource,
                feature_names=feature_names,
                steps=steps,
                mart_config=self.config.mart,
            )
            model.fit(data.feature_rows, targets)
            models.append(model)

        default_model = min(models, key=lambda m: (m.training_error_, m.n_scaling_features))
        return OperatorModelSet(
            family=data.family,
            resource=resource,
            models=models,
            default_model=default_model,
        )

    # -- candidate generation ---------------------------------------------------------------------
    def _candidate_steps(
        self, data: FamilyTrainingData, resource: str
    ) -> list[tuple[ScalingStep, ...]]:
        """Scaling-step combinations to train for a family/resource."""
        family = data.family
        usable = [
            feature
            for feature in scalable_features(family, resource)
            if self._feature_varies(data, feature)
        ]
        candidates: list[tuple[ScalingStep, ...]] = [
            (self._step(family, feature, resource),) for feature in usable
        ]
        if self.config.enable_pair_scaling:
            pairs_added = 0
            for first, second in self._PAIR_PREFERENCES.get(family, ()):
                if pairs_added >= self.config.max_pair_models:
                    break
                if first in usable and second in usable:
                    candidates.append(
                        (
                            self._step(family, first, resource),
                            self._step(family, second, resource),
                        )
                    )
                    pairs_added += 1
        return candidates

    def _step(self, family: OperatorFamily, feature: str, resource: str) -> ScalingStep:
        return ScalingStep(
            feature=feature, function=default_scaling_function(family, feature, resource)
        )

    @staticmethod
    def _feature_varies(data: FamilyTrainingData, feature: str) -> bool:
        """Only features that vary in training are worth scaling by."""
        values = [row.get(feature, 0.0) for row in data.feature_rows]
        if not values:
            return False
        return (max(values) - min(values)) > 1e-9 and max(values) > 0
