"""Logical query substrate.

A :class:`~repro.query.spec.QuerySpec` describes *what* a query computes
(tables, filter predicates, join edges, grouping, ordering) without
prescribing a physical plan; the optimizer subpackage turns specs into
physical operator trees.  Workloads are defined as collections of
:class:`~repro.query.templates.QueryTemplate` objects that instantiate specs
with randomly drawn parameters, mirroring how the paper generates thousands
of TPC-H queries with the QGEN tool.
"""

from repro.query.predicates import ColumnRef, Predicate, PredicateConjunction
from repro.query.spec import (
    AggregateSpec,
    JoinEdge,
    OrderBySpec,
    QuerySpec,
    TableRef,
)
from repro.query.templates import QueryTemplate, TemplateSet

__all__ = [
    "ColumnRef",
    "Predicate",
    "PredicateConjunction",
    "AggregateSpec",
    "JoinEdge",
    "OrderBySpec",
    "QuerySpec",
    "TableRef",
    "QueryTemplate",
    "TemplateSet",
]
