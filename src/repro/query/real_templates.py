"""Templates for the two synthetic "real-life" decision-support workloads.

The paper's Real-1 workload (222 distinct queries over a 9 GB sales
database) mostly joins 5–8 tables and contains nested sub-queries; Real-2
(887 queries over 12 GB) typically joins ~12 tables.  Nested sub-queries are
modelled as additional joins against the same fact tables (which is how the
optimizer in the simulated engine would de-correlate them anyway).
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Catalog
from repro.query.builders import conjunction, eq_predicate, in_predicate, range_predicate
from repro.query.spec import AggregateSpec, JoinEdge, OrderBySpec, QuerySpec, TableRef
from repro.query.templates import QueryTemplate, TemplateSet

__all__ = ["real1_template_set", "real2_template_set"]


# ---------------------------------------------------------------------------
# Real-1: sales / reporting workload, 5-8 table joins
# ---------------------------------------------------------------------------

def _r1_sales_by_region(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales", "date_key", 0.05, 0.3)),
                     projected_columns=["sales_key", "date_key", "store_key", "customer_key",
                                        "gross_amount", "discount_amount"]),
            TableRef("fact_sales_line",
                     projected_columns=["sales_key", "product_key", "quantity",
                                        "extended_amount", "margin_amount"]),
            TableRef("dim_store",
                     predicates=conjunction(in_predicate(rng, "dim_store", "region", 1, 4)),
                     projected_columns=["store_key", "region", "district"]),
            TableRef("dim_product",
                     predicates=conjunction(in_predicate(rng, "dim_product", "category", 2, 8)),
                     projected_columns=["product_key", "category", "brand"]),
            TableRef("dim_date",
                     predicates=conjunction(eq_predicate(rng, "dim_date", "fiscal_year", 6)),
                     projected_columns=["date_key", "fiscal_year", "fiscal_quarter"]),
        ],
        joins=[
            JoinEdge("fact_sales", "sales_key", "fact_sales_line", "sales_key"),
            JoinEdge("fact_sales", "store_key", "dim_store", "store_key"),
            JoinEdge("fact_sales_line", "product_key", "dim_product", "product_key"),
            JoinEdge("fact_sales", "date_key", "dim_date", "date_key"),
        ],
        aggregate=AggregateSpec(group_by={"dim_store": ["region"], "dim_product": ["category"]},
                                n_aggregates=4),
        order_by=OrderBySpec([("dim_store", "region"), ("dim_product", "category")]),
    )


def _r1_customer_loyalty(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales", "gross_amount", 0.1, 0.5)),
                     projected_columns=["sales_key", "customer_key", "store_key", "date_key",
                                        "gross_amount", "channel"]),
            TableRef("dim_customer",
                     predicates=conjunction(
                         in_predicate(rng, "dim_customer", "loyalty_tier", 1, 3),
                         in_predicate(rng, "dim_customer", "state", 2, 10),
                         correlation=0.2),
                     projected_columns=["customer_key", "loyalty_tier", "segment", "state"]),
            TableRef("dim_store", projected_columns=["store_key", "region"]),
            TableRef("dim_date",
                     predicates=conjunction(
                         range_predicate(rng, "dim_date", "calendar_date", 0.1, 0.4)),
                     projected_columns=["date_key", "calendar_date"]),
            TableRef("dim_employee", projected_columns=["employee_key", "role", "store_key"]),
        ],
        joins=[
            JoinEdge("fact_sales", "customer_key", "dim_customer", "customer_key"),
            JoinEdge("fact_sales", "store_key", "dim_store", "store_key"),
            JoinEdge("fact_sales", "date_key", "dim_date", "date_key"),
            JoinEdge("dim_employee", "store_key", "dim_store", "store_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_customer": ["loyalty_tier", "segment"], "dim_store": ["region"]},
            n_aggregates=3),
        order_by=OrderBySpec([("dim_customer", "loyalty_tier")]),
    )


def _r1_product_margin(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales_line",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales_line", "quantity", 0.2, 0.7)),
                     projected_columns=["sales_key", "product_key", "quantity",
                                        "extended_amount", "margin_amount", "unit_price"]),
            TableRef("fact_sales", projected_columns=["sales_key", "date_key", "store_key"]),
            TableRef("dim_product",
                     predicates=conjunction(
                         in_predicate(rng, "dim_product", "brand", 3, 15),
                         eq_predicate(rng, "dim_product", "status", 4),
                         correlation=0.1),
                     projected_columns=["product_key", "brand", "subcategory", "status"]),
            TableRef("dim_date",
                     predicates=conjunction(eq_predicate(rng, "dim_date", "fiscal_quarter", 4)),
                     projected_columns=["date_key", "fiscal_quarter"]),
            TableRef("dim_store",
                     predicates=conjunction(in_predicate(rng, "dim_store", "format", 1, 3)),
                     projected_columns=["store_key", "format"]),
        ],
        joins=[
            JoinEdge("fact_sales_line", "sales_key", "fact_sales", "sales_key"),
            JoinEdge("fact_sales_line", "product_key", "dim_product", "product_key"),
            JoinEdge("fact_sales", "date_key", "dim_date", "date_key"),
            JoinEdge("fact_sales", "store_key", "dim_store", "store_key"),
        ],
        aggregate=AggregateSpec(group_by={"dim_product": ["brand", "subcategory"]},
                                n_aggregates=4),
        order_by=OrderBySpec([("dim_product", "brand")], descending=True),
        limit=500,
    )


def _r1_inventory_coverage(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_inventory",
                     predicates=conjunction(
                         range_predicate(rng, "fact_inventory", "date_key", 0.1, 0.5)),
                     projected_columns=["date_key", "store_key", "product_key", "on_hand_qty"]),
            TableRef("fact_sales_line",
                     projected_columns=["product_key", "quantity", "extended_amount"]),
            TableRef("dim_product",
                     predicates=conjunction(in_predicate(rng, "dim_product", "category", 1, 5)),
                     projected_columns=["product_key", "category"]),
            TableRef("dim_store",
                     predicates=conjunction(in_predicate(rng, "dim_store", "district", 2, 10)),
                     projected_columns=["store_key", "district", "region"]),
        ],
        joins=[
            JoinEdge("fact_inventory", "product_key", "dim_product", "product_key"),
            JoinEdge("fact_sales_line", "product_key", "dim_product", "product_key"),
            JoinEdge("fact_inventory", "store_key", "dim_store", "store_key"),
        ],
        aggregate=AggregateSpec(group_by={"dim_store": ["region"], "dim_product": ["category"]},
                                n_aggregates=3),
        order_by=OrderBySpec([("dim_store", "region")]),
    )


def _r1_channel_daily(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales",
                     predicates=conjunction(
                         in_predicate(rng, "fact_sales", "channel", 1, 2),
                         in_predicate(rng, "fact_sales", "payment_type", 1, 3),
                         correlation=0.15),
                     projected_columns=["date_key", "channel", "payment_type", "gross_amount",
                                        "tax_amount"]),
            TableRef("dim_date",
                     predicates=conjunction(
                         range_predicate(rng, "dim_date", "calendar_date", 0.05, 0.2)),
                     projected_columns=["date_key", "calendar_date", "fiscal_month"]),
        ],
        joins=[JoinEdge("fact_sales", "date_key", "dim_date", "date_key")],
        aggregate=AggregateSpec(group_by={"dim_date": ["fiscal_month"], "fact_sales": ["channel"]},
                                n_aggregates=3),
        order_by=OrderBySpec([("dim_date", "fiscal_month")]),
    )


def _r1_employee_performance(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales", "date_key", 0.2, 0.6)),
                     projected_columns=["sales_key", "employee_key", "store_key", "gross_amount"]),
            TableRef("fact_sales_line",
                     projected_columns=["sales_key", "margin_amount"]),
            TableRef("dim_employee",
                     predicates=conjunction(in_predicate(rng, "dim_employee", "role", 2, 8)),
                     projected_columns=["employee_key", "role", "store_key"]),
            TableRef("dim_store",
                     predicates=conjunction(in_predicate(rng, "dim_store", "region", 1, 4)),
                     projected_columns=["store_key", "region"]),
            TableRef("dim_customer", projected_columns=["customer_key", "segment"]),
        ],
        joins=[
            JoinEdge("fact_sales", "sales_key", "fact_sales_line", "sales_key"),
            JoinEdge("fact_sales", "employee_key", "dim_employee", "employee_key"),
            JoinEdge("dim_employee", "store_key", "dim_store", "store_key"),
            JoinEdge("fact_sales", "customer_key", "dim_customer", "customer_key"),
        ],
        aggregate=AggregateSpec(group_by={"dim_employee": ["role"], "dim_store": ["region"]},
                                n_aggregates=2),
        order_by=OrderBySpec([("dim_employee", "role")]),
    )


def _r1_top_customers(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales", "gross_amount", 0.02, 0.15,
                                         anchor="tail")),
                     projected_columns=["sales_key", "customer_key", "date_key", "gross_amount"]),
            TableRef("dim_customer",
                     projected_columns=["customer_key", "segment", "state", "lifetime_value"]),
            TableRef("dim_date",
                     predicates=conjunction(eq_predicate(rng, "dim_date", "fiscal_year", 6)),
                     projected_columns=["date_key", "fiscal_year"]),
        ],
        joins=[
            JoinEdge("fact_sales", "customer_key", "dim_customer", "customer_key"),
            JoinEdge("fact_sales", "date_key", "dim_date", "date_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_customer": ["customer_key", "segment", "state"]}, n_aggregates=2),
        order_by=OrderBySpec([("dim_customer", "lifetime_value")], descending=True),
        limit=100,
    )


def _r1_basket_detail_sort(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_sales_line",
                     predicates=conjunction(
                         range_predicate(rng, "fact_sales_line", "extended_amount", 0.1, 0.5)),
                     projected_columns=["sales_key", "product_key", "quantity", "unit_price",
                                        "extended_amount", "margin_amount"]),
            TableRef("dim_product",
                     predicates=conjunction(in_predicate(rng, "dim_product", "subcategory", 5, 30)),
                     projected_columns=["product_key", "subcategory", "list_price"]),
        ],
        joins=[JoinEdge("fact_sales_line", "product_key", "dim_product", "product_key")],
        order_by=OrderBySpec([("fact_sales_line", "extended_amount")], descending=True),
        limit=5000,
    )


def real1_template_set() -> TemplateSet:
    """Real-1: sales/reporting decision support (paper: 222 queries, 5-8 joins)."""
    return TemplateSet("real1", [
        QueryTemplate("real1_sales_by_region", _r1_sales_by_region),
        QueryTemplate("real1_customer_loyalty", _r1_customer_loyalty),
        QueryTemplate("real1_product_margin", _r1_product_margin),
        QueryTemplate("real1_inventory_coverage", _r1_inventory_coverage),
        QueryTemplate("real1_channel_daily", _r1_channel_daily),
        QueryTemplate("real1_employee_performance", _r1_employee_performance),
        QueryTemplate("real1_top_customers", _r1_top_customers),
        QueryTemplate("real1_basket_detail_sort", _r1_basket_detail_sort),
    ])


# ---------------------------------------------------------------------------
# Real-2: ERP-style workload, ~12 table joins
# ---------------------------------------------------------------------------

def _r2_order_fulfilment(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_order",
                     predicates=conjunction(
                         range_predicate(rng, "fact_order", "order_date_key", 0.05, 0.25)),
                     projected_columns=["order_key", "account_key", "contact_key",
                                        "order_date_key", "currency_key", "project_key",
                                        "order_total"]),
            TableRef("fact_order_line",
                     projected_columns=["order_key", "item_key", "plant_key", "quantity",
                                        "net_amount"]),
            TableRef("fact_shipment",
                     projected_columns=["order_key", "plant_key", "vendor_key", "freight_cost"]),
            TableRef("fact_invoice",
                     projected_columns=["order_key", "account_key", "invoice_amount",
                                        "paid_flag"]),
            TableRef("dim_account",
                     predicates=conjunction(in_predicate(rng, "dim_account", "industry", 2, 10)),
                     projected_columns=["account_key", "industry", "country"]),
            TableRef("dim_contact", projected_columns=["contact_key", "role"]),
            TableRef("dim_item",
                     predicates=conjunction(in_predicate(rng, "dim_item", "item_group", 3, 20)),
                     projected_columns=["item_key", "item_group"]),
            TableRef("dim_plant", projected_columns=["plant_key", "plant_region"]),
            TableRef("dim_vendor",
                     predicates=conjunction(range_predicate(rng, "dim_vendor", "vendor_rating",
                                                            0.2, 0.6)),
                     projected_columns=["vendor_key", "vendor_rating"]),
            TableRef("dim_currency", projected_columns=["currency_key", "iso_code"]),
            TableRef("dim_project",
                     predicates=conjunction(eq_predicate(rng, "dim_project", "project_status", 6)),
                     projected_columns=["project_key", "project_status", "project_type"]),
            TableRef("dim_calendar",
                     predicates=conjunction(eq_predicate(rng, "dim_calendar", "fiscal_year", 7)),
                     projected_columns=["date_key", "fiscal_year", "fiscal_period"]),
        ],
        joins=[
            JoinEdge("fact_order", "order_key", "fact_order_line", "order_key"),
            JoinEdge("fact_order", "order_key", "fact_shipment", "order_key"),
            JoinEdge("fact_order", "order_key", "fact_invoice", "order_key"),
            JoinEdge("fact_order", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_order", "contact_key", "dim_contact", "contact_key"),
            JoinEdge("fact_order_line", "item_key", "dim_item", "item_key"),
            JoinEdge("fact_order_line", "plant_key", "dim_plant", "plant_key"),
            JoinEdge("fact_shipment", "vendor_key", "dim_vendor", "vendor_key"),
            JoinEdge("fact_order", "currency_key", "dim_currency", "currency_key"),
            JoinEdge("fact_order", "project_key", "dim_project", "project_key"),
            JoinEdge("fact_order", "order_date_key", "dim_calendar", "date_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_account": ["industry"], "dim_plant": ["plant_region"]},
            n_aggregates=4),
        order_by=OrderBySpec([("dim_account", "industry")]),
    )


def _r2_project_costing(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_gl_entry",
                     predicates=conjunction(
                         range_predicate(rng, "fact_gl_entry", "posting_date_key", 0.1, 0.3)),
                     projected_columns=["gl_key", "costcenter_key", "account_key", "project_key",
                                        "posting_date_key", "debit_amount", "credit_amount"]),
            TableRef("fact_order",
                     projected_columns=["order_key", "project_key", "account_key", "order_total"]),
            TableRef("fact_invoice",
                     projected_columns=["order_key", "invoice_amount", "paid_flag"]),
            TableRef("dim_project",
                     predicates=conjunction(in_predicate(rng, "dim_project", "project_type", 2, 8)),
                     projected_columns=["project_key", "project_type", "project_status"]),
            TableRef("dim_costcenter",
                     predicates=conjunction(in_predicate(rng, "dim_costcenter", "department", 3, 25)),
                     projected_columns=["costcenter_key", "department"]),
            TableRef("dim_account",
                     predicates=conjunction(in_predicate(rng, "dim_account", "account_tier", 1, 3)),
                     projected_columns=["account_key", "account_tier", "industry"]),
            TableRef("dim_calendar",
                     predicates=conjunction(
                         range_predicate(rng, "dim_calendar", "fiscal_period", 0.1, 0.3)),
                     projected_columns=["date_key", "fiscal_period"]),
            TableRef("dim_contact", projected_columns=["contact_key", "account_key", "role"]),
            TableRef("dim_currency", projected_columns=["currency_key", "iso_code"]),
            TableRef("fact_shipment", projected_columns=["order_key", "freight_cost"]),
            TableRef("dim_plant", projected_columns=["plant_key", "plant_region"]),
            TableRef("fact_order_line", projected_columns=["order_key", "plant_key", "net_amount"]),
        ],
        joins=[
            JoinEdge("fact_gl_entry", "project_key", "dim_project", "project_key"),
            JoinEdge("fact_gl_entry", "costcenter_key", "dim_costcenter", "costcenter_key"),
            JoinEdge("fact_gl_entry", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_gl_entry", "posting_date_key", "dim_calendar", "date_key"),
            JoinEdge("fact_order", "project_key", "dim_project", "project_key"),
            JoinEdge("fact_order", "order_key", "fact_invoice", "order_key"),
            JoinEdge("dim_contact", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_order", "currency_key", "dim_currency", "currency_key"),
            JoinEdge("fact_order", "order_key", "fact_shipment", "order_key"),
            JoinEdge("fact_order", "order_key", "fact_order_line", "order_key"),
            JoinEdge("fact_order_line", "plant_key", "dim_plant", "plant_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_project": ["project_type"], "dim_costcenter": ["department"]},
            n_aggregates=5),
        order_by=OrderBySpec([("dim_project", "project_type")]),
    )


def _r2_receivables_aging(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_invoice",
                     predicates=conjunction(
                         eq_predicate(rng, "fact_invoice", "paid_flag", 2),
                         range_predicate(rng, "fact_invoice", "invoice_date_key", 0.1, 0.4),
                         correlation=0.1),
                     projected_columns=["invoice_key", "order_key", "account_key",
                                        "invoice_date_key", "currency_key", "invoice_amount",
                                        "paid_flag"]),
            TableRef("fact_order",
                     projected_columns=["order_key", "account_key", "contact_key", "order_total"]),
            TableRef("dim_account",
                     predicates=conjunction(in_predicate(rng, "dim_account", "country", 3, 15)),
                     projected_columns=["account_key", "country", "industry", "credit_limit"]),
            TableRef("dim_contact", projected_columns=["contact_key", "role"]),
            TableRef("dim_currency", projected_columns=["currency_key", "iso_code"]),
            TableRef("dim_calendar",
                     predicates=conjunction(
                         range_predicate(rng, "dim_calendar", "fiscal_period", 0.2, 0.5)),
                     projected_columns=["date_key", "fiscal_period", "fiscal_year"]),
            TableRef("fact_gl_entry",
                     projected_columns=["account_key", "debit_amount", "credit_amount"]),
            TableRef("dim_costcenter", projected_columns=["costcenter_key", "department"]),
        ],
        joins=[
            JoinEdge("fact_invoice", "order_key", "fact_order", "order_key"),
            JoinEdge("fact_invoice", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_order", "contact_key", "dim_contact", "contact_key"),
            JoinEdge("fact_invoice", "currency_key", "dim_currency", "currency_key"),
            JoinEdge("fact_invoice", "invoice_date_key", "dim_calendar", "date_key"),
            JoinEdge("fact_gl_entry", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_gl_entry", "costcenter_key", "dim_costcenter", "costcenter_key"),
        ],
        aggregate=AggregateSpec(group_by={"dim_account": ["country", "industry"]}, n_aggregates=3),
        order_by=OrderBySpec([("dim_account", "country")]),
    )


def _r2_supply_chain(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_shipment",
                     predicates=conjunction(
                         range_predicate(rng, "fact_shipment", "ship_date_key", 0.1, 0.35)),
                     projected_columns=["shipment_key", "order_key", "plant_key", "vendor_key",
                                        "ship_date_key", "freight_cost", "weight_kg"]),
            TableRef("fact_order_line",
                     projected_columns=["order_key", "item_key", "plant_key", "quantity",
                                        "net_amount", "cost_amount"]),
            TableRef("fact_order", projected_columns=["order_key", "account_key", "order_status"]),
            TableRef("dim_vendor",
                     predicates=conjunction(in_predicate(rng, "dim_vendor", "vendor_country", 2, 10)),
                     projected_columns=["vendor_key", "vendor_country", "vendor_rating"]),
            TableRef("dim_item",
                     predicates=conjunction(eq_predicate(rng, "dim_item", "item_status", 5)),
                     projected_columns=["item_key", "item_group", "item_status", "standard_cost"]),
            TableRef("dim_plant",
                     predicates=conjunction(in_predicate(rng, "dim_plant", "plant_region", 1, 5)),
                     projected_columns=["plant_key", "plant_region"]),
            TableRef("dim_calendar",
                     predicates=conjunction(eq_predicate(rng, "dim_calendar", "fiscal_year", 7)),
                     projected_columns=["date_key", "fiscal_year"]),
            TableRef("dim_account", projected_columns=["account_key", "industry"]),
            TableRef("dim_project", projected_columns=["project_key", "project_type"]),
            TableRef("fact_invoice", projected_columns=["order_key", "invoice_amount"]),
        ],
        joins=[
            JoinEdge("fact_shipment", "order_key", "fact_order", "order_key"),
            JoinEdge("fact_order", "order_key", "fact_order_line", "order_key"),
            JoinEdge("fact_shipment", "vendor_key", "dim_vendor", "vendor_key"),
            JoinEdge("fact_order_line", "item_key", "dim_item", "item_key"),
            JoinEdge("fact_shipment", "plant_key", "dim_plant", "plant_key"),
            JoinEdge("fact_shipment", "ship_date_key", "dim_calendar", "date_key"),
            JoinEdge("fact_order", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_order", "project_key", "dim_project", "project_key"),
            JoinEdge("fact_order", "order_key", "fact_invoice", "order_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_vendor": ["vendor_country"], "dim_plant": ["plant_region"]},
            n_aggregates=4),
        order_by=OrderBySpec([("dim_vendor", "vendor_country")]),
    )


def _r2_gl_trial_balance(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_gl_entry",
                     predicates=conjunction(
                         range_predicate(rng, "fact_gl_entry", "posting_date_key", 0.2, 0.6)),
                     projected_columns=["gl_key", "costcenter_key", "account_key", "project_key",
                                        "posting_date_key", "debit_amount", "credit_amount"]),
            TableRef("dim_costcenter",
                     projected_columns=["costcenter_key", "department", "cc_code"]),
            TableRef("dim_account",
                     predicates=conjunction(in_predicate(rng, "dim_account", "account_tier", 1, 4)),
                     projected_columns=["account_key", "account_tier"]),
            TableRef("dim_calendar",
                     predicates=conjunction(
                         range_predicate(rng, "dim_calendar", "fiscal_period", 0.05, 0.2)),
                     projected_columns=["date_key", "fiscal_period"]),
            TableRef("dim_project", projected_columns=["project_key", "project_type"]),
        ],
        joins=[
            JoinEdge("fact_gl_entry", "costcenter_key", "dim_costcenter", "costcenter_key"),
            JoinEdge("fact_gl_entry", "account_key", "dim_account", "account_key"),
            JoinEdge("fact_gl_entry", "posting_date_key", "dim_calendar", "date_key"),
            JoinEdge("fact_gl_entry", "project_key", "dim_project", "project_key"),
        ],
        aggregate=AggregateSpec(
            group_by={"dim_costcenter": ["department"], "dim_calendar": ["fiscal_period"]},
            n_aggregates=2),
        order_by=OrderBySpec([("dim_costcenter", "department")]),
    )


def _r2_order_detail_export(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """A wide sorted export of order lines for a selective account filter."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef("fact_order",
                     predicates=conjunction(
                         range_predicate(rng, "fact_order", "account_key", 0.001, 0.02)),
                     projected_columns=["order_key", "account_key", "order_date_key",
                                        "order_total", "order_status"]),
            TableRef("fact_order_line",
                     projected_columns=["order_key", "item_key", "quantity", "net_amount",
                                        "cost_amount"]),
            TableRef("dim_item", projected_columns=["item_key", "item_code", "item_group"]),
            TableRef("dim_account", projected_columns=["account_key", "account_code"]),
        ],
        joins=[
            JoinEdge("fact_order", "order_key", "fact_order_line", "order_key"),
            JoinEdge("fact_order_line", "item_key", "dim_item", "item_key"),
            JoinEdge("fact_order", "account_key", "dim_account", "account_key"),
        ],
        order_by=OrderBySpec([("fact_order", "order_total")], descending=True),
    )


def real2_template_set() -> TemplateSet:
    """Real-2: ERP-style decision support (paper: 887 queries, ~12 joins)."""
    return TemplateSet("real2", [
        QueryTemplate("real2_order_fulfilment", _r2_order_fulfilment),
        QueryTemplate("real2_project_costing", _r2_project_costing),
        QueryTemplate("real2_receivables_aging", _r2_receivables_aging),
        QueryTemplate("real2_supply_chain", _r2_supply_chain),
        QueryTemplate("real2_gl_trial_balance", _r2_gl_trial_balance),
        QueryTemplate("real2_order_detail_export", _r2_order_detail_export),
    ])
