"""Filter predicates with *true* and *optimizer-estimated* selectivities.

Each predicate knows two selectivities:

* :meth:`Predicate.true_selectivity` — computed from the column's actual
  value distribution (Zipf-aware); used by the engine simulator to determine
  the rows that really flow through the plan.
* :meth:`Predicate.estimated_selectivity` — computed from the optimizer's
  histogram statistics; used by the planner, the optimizer cost model and
  the "optimizer-estimated features" experiments.

The gap between the two is the cardinality-estimation error that the paper's
Tables 7–12 study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog

__all__ = ["ColumnRef", "Predicate", "PredicateConjunction"]


@dataclass(frozen=True)
class ColumnRef:
    """A (table, column) reference; ``alias`` distinguishes self-joins."""

    table: str
    column: str
    alias: str | None = None

    @property
    def qualifier(self) -> str:
        return self.alias or self.table

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qualifier}.{self.column}"


@dataclass(frozen=True)
class Predicate:
    """A single filter predicate.

    Parameters
    ----------
    column:
        The filtered column.
    kind:
        ``"eq"`` — equality against one value; ``"in"`` — membership in
        ``value_count`` values; ``"range"`` — a range covering
        ``domain_fraction`` of the value domain.
    domain_fraction:
        For ``range`` predicates, the covered fraction of the value domain.
    value_rank:
        For ``eq`` predicates, the frequency rank of the compared value
        (0 = most frequent).
    value_count:
        For ``in`` predicates, the number of listed values (drawn from the
        head of the domain).
    anchor:
        ``"head"`` or ``"tail"``: whether a range starts at the frequent or
        the infrequent end of the domain.
    complexity:
        Number of elementary comparisons the predicate costs per row
        (e.g. LIKE patterns or nested CASE expressions cost more than a
        single comparison); feeds the engine's CPU model only.
    """

    column: ColumnRef
    kind: str = "range"
    domain_fraction: float = 0.1
    value_rank: int = 0
    value_count: int = 1
    anchor: str = "head"
    complexity: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("eq", "in", "range"):
            raise ValueError(f"unknown predicate kind {self.kind!r}")
        if not 0.0 <= self.domain_fraction <= 1.0:
            raise ValueError("domain_fraction must be within [0, 1]")
        if self.complexity < 1:
            raise ValueError("complexity must be >= 1")

    # -- selectivities -----------------------------------------------------------
    def true_selectivity(self, catalog: Catalog) -> float:
        """Fraction of rows that actually satisfy the predicate."""
        table = catalog.table(self.column.table)
        column = table.column(self.column.column)
        dist = column.resolved_distribution(table.row_count)
        if self.kind == "eq":
            return dist.eq_selectivity(self.value_rank)
        if self.kind == "in":
            ndv = column.resolved_ndv(table.row_count)
            count = min(max(self.value_count, 1), ndv)
            return sum(dist.eq_selectivity(rank) for rank in range(count))
        return dist.range_selectivity(self.domain_fraction, anchor=self.anchor)

    def estimated_selectivity(self, statistics: StatisticsCatalog) -> float:
        """Selectivity as the optimizer estimates it from histograms."""
        stats = statistics.column_statistics(self.column.table, self.column.column)
        if self.kind == "eq":
            return stats.estimated_eq_selectivity()
        if self.kind == "in":
            count = max(self.value_count, 1)
            return min(count * stats.estimated_eq_selectivity(), 1.0)
        return stats.estimated_range_selectivity(self.domain_fraction, anchor=self.anchor)

    def is_sargable_on(self, leading_column: str) -> bool:
        """Whether this predicate can drive an index seek on ``leading_column``."""
        return self.column.column == leading_column


@dataclass
class PredicateConjunction:
    """A conjunction (AND) of predicates over a single table reference.

    ``correlation`` in ``[0, 1]`` controls how correlated the member
    predicates really are: 0 means truly independent (the optimizer's
    assumption happens to be correct), 1 means fully redundant (the true
    combined selectivity equals the most selective member).  The optimizer
    always multiplies individual estimates, so correlation > 0 produces the
    classic under-estimation bias.
    """

    predicates: list[Predicate] = field(default_factory=list)
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be within [0, 1]")

    def __len__(self) -> int:
        return len(self.predicates)

    def __bool__(self) -> bool:
        return bool(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    @property
    def total_complexity(self) -> int:
        """Total per-row comparison count of the conjunction."""
        return sum(p.complexity for p in self.predicates)

    def true_selectivity(self, catalog: Catalog) -> float:
        """Combined true selectivity with the configured correlation."""
        if not self.predicates:
            return 1.0
        sels = [p.true_selectivity(catalog) for p in self.predicates]
        independent = 1.0
        for sel in sels:
            independent *= sel
        fully_correlated = min(sels)
        # Geometric interpolation between the independence and the
        # full-redundancy extremes.
        return float(independent ** (1.0 - self.correlation) * fully_correlated**self.correlation)

    def estimated_selectivity(self, statistics: StatisticsCatalog) -> float:
        """Combined selectivity under the optimizer's independence assumption."""
        estimate = 1.0
        for pred in self.predicates:
            estimate *= pred.estimated_selectivity(statistics)
        return float(estimate)

    def sargable_predicate(self, leading_column: str) -> Predicate | None:
        """The first member usable to seek an index led by ``leading_column``."""
        for pred in self.predicates:
            if pred.is_sargable_on(leading_column):
                return pred
        return None

    def residual(self, excluded: Predicate | None) -> "PredicateConjunction":
        """The conjunction without ``excluded`` (used for residual filters)."""
        if excluded is None:
            return self
        remaining = [p for p in self.predicates if p is not excluded]
        return PredicateConjunction(remaining, correlation=self.correlation)
