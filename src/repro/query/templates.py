"""Query-template framework (the QGEN stand-in).

A :class:`QueryTemplate` couples a name with a builder callable that, given
a random generator and a catalog, produces a parameterised
:class:`~repro.query.spec.QuerySpec`.  A :class:`TemplateSet` instantiates a
whole workload by cycling over its templates with independent random
parameter draws — this mirrors how the paper generates >2500 TPC-H queries
from the benchmark templates with random QGEN parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.catalog.schema import Catalog
from repro.data.rng import make_rng
from repro.query.spec import QuerySpec

__all__ = ["QueryTemplate", "TemplateSet"]

#: Signature of a template builder: (rng, catalog, query_name) -> QuerySpec.
TemplateBuilder = Callable[[np.random.Generator, Catalog, str], QuerySpec]


@dataclass(frozen=True)
class QueryTemplate:
    """A named, parameterisable query template."""

    name: str
    builder: TemplateBuilder
    #: Relative weight when sampling templates non-uniformly.
    weight: float = 1.0

    def instantiate(self, rng: np.random.Generator, catalog: Catalog, sequence: int) -> QuerySpec:
        """Build one concrete query from this template."""
        query_name = f"{self.name}#{sequence}"
        spec = self.builder(rng, catalog, query_name)
        spec.template = self.name
        spec.validate()
        return spec


class TemplateSet:
    """An ordered collection of templates forming a workload definition."""

    def __init__(self, name: str, templates: Iterable[QueryTemplate]) -> None:
        self.name = name
        self.templates = list(templates)
        if not self.templates:
            raise ValueError(f"template set {name!r} is empty")
        names = [t.name for t in self.templates]
        if len(names) != len(set(names)):
            raise ValueError(f"template set {name!r} has duplicate template names")

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def template(self, name: str) -> QueryTemplate:
        for tpl in self.templates:
            if tpl.name == name:
                return tpl
        raise KeyError(f"template set {self.name!r} has no template {name!r}")

    def generate(
        self,
        catalog: Catalog,
        n_queries: int,
        seed: int = 0,
        round_robin: bool = True,
    ) -> list[QuerySpec]:
        """Instantiate ``n_queries`` queries against ``catalog``.

        With ``round_robin`` the templates are cycled in order (so every
        template contributes ~equally, as QGEN streams do); otherwise
        templates are sampled proportionally to their weights.
        """
        if n_queries < 0:
            raise ValueError("n_queries must be >= 0")
        rng = make_rng(seed, "templates", self.name, catalog.name)
        weights = np.array([t.weight for t in self.templates], dtype=np.float64)
        weights = weights / weights.sum()
        queries: list[QuerySpec] = []
        for i in range(n_queries):
            if round_robin:
                template = self.templates[i % len(self.templates)]
            else:
                template = self.templates[int(rng.choice(len(self.templates), p=weights))]
            queries.append(template.instantiate(rng, catalog, sequence=i))
        return queries
