"""TPC-H-style query templates.

These are structural approximations of the TPC-H benchmark queries: the same
tables, join graphs, grouping and ordering shapes, with filter parameters
drawn randomly per instantiation (the QGEN role).  The SQL text itself is
irrelevant to the reproduction — only the physical plans and the resource
usage they induce matter — so templates are expressed directly as
:class:`~repro.query.spec.QuerySpec` builders.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Catalog
from repro.query.builders import conjunction, eq_predicate, in_predicate, range_predicate
from repro.query.spec import AggregateSpec, JoinEdge, OrderBySpec, QuerySpec, TableRef
from repro.query.templates import QueryTemplate, TemplateSet

__all__ = ["tpch_template_set"]


def _q1_pricing_summary(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """Scan lineitem with a shipdate cutoff, group by return flag / status."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef(
                "lineitem",
                predicates=conjunction(
                    range_predicate(rng, "lineitem", "l_shipdate", 0.55, 0.98, anchor="head"),
                ),
                projected_columns=[
                    "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
                    "l_discount", "l_tax", "l_shipdate",
                ],
            ),
        ],
        aggregate=AggregateSpec(group_by={"lineitem": ["l_returnflag", "l_linestatus"]},
                                n_aggregates=8),
        order_by=OrderBySpec([("lineitem", "l_returnflag"), ("lineitem", "l_linestatus")]),
    )


def _q3_shipping_priority(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("customer",
                     predicates=conjunction(eq_predicate(rng, "customer", "c_mktsegment", 5)),
                     projected_columns=["c_custkey", "c_mktsegment"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderdate", 0.1, 0.6)),
                     projected_columns=["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"]),
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_shipdate", 0.1, 0.6)),
                     projected_columns=["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]),
        ],
        joins=[
            JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
        aggregate=AggregateSpec(
            group_by={"orders": ["o_orderkey", "o_orderdate", "o_shippriority"]}, n_aggregates=1),
        order_by=OrderBySpec([("orders", "o_orderdate")], descending=True),
        limit=10,
    )


def _q4_order_priority(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderdate", 0.05, 0.25)),
                     projected_columns=["o_orderkey", "o_orderdate", "o_orderpriority"]),
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_commitdate", 0.2, 0.7)),
                     projected_columns=["l_orderkey", "l_commitdate"]),
        ],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        aggregate=AggregateSpec(group_by={"orders": ["o_orderpriority"]}, n_aggregates=1),
        order_by=OrderBySpec([("orders", "o_orderpriority")]),
    )


def _q5_local_supplier(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("customer", projected_columns=["c_custkey", "c_nationkey"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderdate", 0.1, 0.3)),
                     projected_columns=["o_orderkey", "o_custkey", "o_orderdate"]),
            TableRef("lineitem",
                     projected_columns=["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"]),
            TableRef("supplier", projected_columns=["s_suppkey", "s_nationkey"]),
            TableRef("nation",
                     predicates=conjunction(eq_predicate(rng, "nation", "n_regionkey", 5)),
                     projected_columns=["n_nationkey", "n_name", "n_regionkey"]),
        ],
        joins=[
            JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(group_by={"nation": ["n_name"]}, n_aggregates=1),
        order_by=OrderBySpec([("nation", "n_name")], descending=True),
    )


def _q6_forecast_revenue(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_shipdate", 0.1, 0.25),
                         range_predicate(rng, "lineitem", "l_discount", 0.15, 0.35),
                         range_predicate(rng, "lineitem", "l_quantity", 0.3, 0.6),
                         correlation=0.2),
                     projected_columns=["l_shipdate", "l_discount", "l_quantity",
                                        "l_extendedprice"]),
        ],
        aggregate=AggregateSpec(group_by={}, n_aggregates=1),
    )


def _q7_volume_shipping(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("supplier", projected_columns=["s_suppkey", "s_nationkey"]),
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_shipdate", 0.25, 0.45)),
                     projected_columns=["l_orderkey", "l_suppkey", "l_shipdate",
                                        "l_extendedprice", "l_discount"]),
            TableRef("orders", projected_columns=["o_orderkey", "o_custkey"]),
            TableRef("customer", projected_columns=["c_custkey", "c_nationkey"]),
            TableRef("nation",
                     predicates=conjunction(in_predicate(rng, "nation", "n_nationkey", 2, 4)),
                     projected_columns=["n_nationkey", "n_name"]),
        ],
        joins=[
            JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
            JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(group_by={"nation": ["n_name"]}, n_aggregates=2),
        order_by=OrderBySpec([("nation", "n_name")]),
    )


def _q8_market_share(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("part",
                     predicates=conjunction(eq_predicate(rng, "part", "p_type", 120)),
                     projected_columns=["p_partkey", "p_type"]),
            TableRef("lineitem",
                     projected_columns=["l_partkey", "l_suppkey", "l_orderkey",
                                        "l_extendedprice", "l_discount"]),
            TableRef("supplier", projected_columns=["s_suppkey", "s_nationkey"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderdate", 0.2, 0.4)),
                     projected_columns=["o_orderkey", "o_custkey", "o_orderdate"]),
            TableRef("customer", projected_columns=["c_custkey", "c_nationkey"]),
            TableRef("nation",
                     predicates=conjunction(eq_predicate(rng, "nation", "n_regionkey", 5)),
                     projected_columns=["n_nationkey", "n_regionkey"]),
        ],
        joins=[
            JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
            JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
            JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(group_by={"orders": ["o_orderdate"]}, n_aggregates=2),
        order_by=OrderBySpec([("orders", "o_orderdate")]),
    )


def _q9_product_profit(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("part",
                     predicates=conjunction(
                         range_predicate(rng, "part", "p_name", 0.03, 0.12, complexity=3)),
                     projected_columns=["p_partkey", "p_name"]),
            TableRef("lineitem",
                     projected_columns=["l_partkey", "l_suppkey", "l_orderkey", "l_quantity",
                                        "l_extendedprice", "l_discount"]),
            TableRef("supplier", projected_columns=["s_suppkey", "s_nationkey"]),
            TableRef("partsupp", projected_columns=["ps_partkey", "ps_suppkey", "ps_supplycost"]),
            TableRef("orders", projected_columns=["o_orderkey", "o_orderdate"]),
            TableRef("nation", projected_columns=["n_nationkey", "n_name"]),
        ],
        joins=[
            JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
            JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinEdge("lineitem", "l_partkey", "partsupp", "ps_partkey"),
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(group_by={"nation": ["n_name"], "orders": ["o_orderdate"]},
                                n_aggregates=1),
        order_by=OrderBySpec([("nation", "n_name"), ("orders", "o_orderdate")], descending=True),
    )


def _q10_returned_items(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("customer",
                     projected_columns=["c_custkey", "c_name", "c_acctbal", "c_nationkey",
                                        "c_address", "c_phone", "c_comment"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderdate", 0.05, 0.15)),
                     projected_columns=["o_orderkey", "o_custkey", "o_orderdate"]),
            TableRef("lineitem",
                     predicates=conjunction(eq_predicate(rng, "lineitem", "l_returnflag", 3)),
                     projected_columns=["l_orderkey", "l_returnflag", "l_extendedprice",
                                        "l_discount"]),
            TableRef("nation", projected_columns=["n_nationkey", "n_name"]),
        ],
        joins=[
            JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(
            group_by={"customer": ["c_custkey", "c_name", "c_acctbal", "c_phone"],
                      "nation": ["n_name"]},
            n_aggregates=1),
        order_by=OrderBySpec([("customer", "c_acctbal")], descending=True),
        limit=20,
    )


def _q12_shipmode(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("orders", projected_columns=["o_orderkey", "o_orderpriority"]),
            TableRef("lineitem",
                     predicates=conjunction(
                         in_predicate(rng, "lineitem", "l_shipmode", 2, 3),
                         range_predicate(rng, "lineitem", "l_receiptdate", 0.1, 0.25),
                         correlation=0.1),
                     projected_columns=["l_orderkey", "l_shipmode", "l_receiptdate"]),
        ],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        aggregate=AggregateSpec(group_by={"lineitem": ["l_shipmode"]}, n_aggregates=2),
        order_by=OrderBySpec([("lineitem", "l_shipmode")]),
    )


def _q13_customer_distribution(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("customer", projected_columns=["c_custkey"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_comment", 0.85, 0.99, complexity=4)),
                     projected_columns=["o_orderkey", "o_custkey", "o_comment"]),
        ],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey")],
        aggregate=AggregateSpec(group_by={"customer": ["c_custkey"]}, n_aggregates=1),
        order_by=OrderBySpec([("customer", "c_custkey")], descending=True),
    )


def _q14_promo_effect(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_shipdate", 0.02, 0.1)),
                     projected_columns=["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"]),
            TableRef("part", projected_columns=["p_partkey", "p_type"]),
        ],
        joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
        aggregate=AggregateSpec(group_by={}, n_aggregates=2),
    )


def _q17_small_quantity(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_quantity", 0.1, 0.4)),
                     projected_columns=["l_partkey", "l_quantity", "l_extendedprice"]),
            TableRef("part",
                     predicates=conjunction(
                         eq_predicate(rng, "part", "p_brand", 25),
                         eq_predicate(rng, "part", "p_container", 40),
                         correlation=0.1),
                     projected_columns=["p_partkey", "p_brand", "p_container"]),
        ],
        joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
        aggregate=AggregateSpec(group_by={}, n_aggregates=1),
    )


def _q18_large_volume(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("customer", projected_columns=["c_custkey", "c_name"]),
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_totalprice", 0.01, 0.08,
                                         anchor="tail")),
                     projected_columns=["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"]),
            TableRef("lineitem", projected_columns=["l_orderkey", "l_quantity"]),
        ],
        joins=[
            JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
        aggregate=AggregateSpec(
            group_by={"customer": ["c_custkey", "c_name"],
                      "orders": ["o_orderkey", "o_orderdate", "o_totalprice"]},
            n_aggregates=1),
        order_by=OrderBySpec([("orders", "o_totalprice")], descending=True),
        limit=100,
    )


def _q19_discounted_revenue(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("lineitem",
                     predicates=conjunction(
                         in_predicate(rng, "lineitem", "l_shipmode", 2, 2),
                         range_predicate(rng, "lineitem", "l_quantity", 0.2, 0.5),
                         correlation=0.15),
                     projected_columns=["l_partkey", "l_shipmode", "l_quantity",
                                        "l_extendedprice", "l_discount"]),
            TableRef("part",
                     predicates=conjunction(
                         in_predicate(rng, "part", "p_brand", 2, 4),
                         range_predicate(rng, "part", "p_size", 0.1, 0.5),
                         correlation=0.1),
                     projected_columns=["p_partkey", "p_brand", "p_size", "p_container"]),
        ],
        joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
        aggregate=AggregateSpec(group_by={}, n_aggregates=1),
    )


def _q21_suppliers_waiting(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("supplier", projected_columns=["s_suppkey", "s_name", "s_nationkey"]),
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_receiptdate", 0.3, 0.6)),
                     projected_columns=["l_orderkey", "l_suppkey", "l_receiptdate"]),
            TableRef("orders",
                     predicates=conjunction(eq_predicate(rng, "orders", "o_orderstatus", 3)),
                     projected_columns=["o_orderkey", "o_orderstatus"]),
            TableRef("nation",
                     predicates=conjunction(eq_predicate(rng, "nation", "n_nationkey", 25)),
                     projected_columns=["n_nationkey", "n_name"]),
        ],
        joins=[
            JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        aggregate=AggregateSpec(group_by={"supplier": ["s_name"]}, n_aggregates=1),
        order_by=OrderBySpec([("supplier", "s_name")]),
        limit=100,
    )


def _scan_filter_sort(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """A sort-heavy single-table query (ORDER BY on a non-indexed expression).

    This mirrors the micro-workload the paper uses to calibrate the Sort
    scaling function (Section 6.2) and adds sort-dominant plans to the mix.
    """
    return QuerySpec(
        name=name,
        tables=[
            TableRef("lineitem",
                     predicates=conjunction(
                         range_predicate(rng, "lineitem", "l_orderkey", 0.05, 0.9)),
                     projected_columns=["l_orderkey", "l_partkey", "l_quantity",
                                        "l_extendedprice", "l_comment"]),
        ],
        order_by=OrderBySpec([("lineitem", "l_extendedprice")], descending=True),
    )


def _point_lookup_join(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """A selective order lookup joined to its lineitems (index-nested-loop shaped)."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef("orders",
                     predicates=conjunction(
                         range_predicate(rng, "orders", "o_orderkey", 0.0005, 0.01)),
                     projected_columns=["o_orderkey", "o_custkey", "o_totalprice"]),
            TableRef("lineitem",
                     projected_columns=["l_orderkey", "l_quantity", "l_extendedprice"]),
        ],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        order_by=OrderBySpec([("orders", "o_totalprice")], descending=True),
    )


def tpch_template_set() -> TemplateSet:
    """The TPC-H-style workload used for training and in-distribution tests."""
    return TemplateSet("tpch", [
        QueryTemplate("tpch_q1", _q1_pricing_summary),
        QueryTemplate("tpch_q3", _q3_shipping_priority),
        QueryTemplate("tpch_q4", _q4_order_priority),
        QueryTemplate("tpch_q5", _q5_local_supplier),
        QueryTemplate("tpch_q6", _q6_forecast_revenue),
        QueryTemplate("tpch_q7", _q7_volume_shipping),
        QueryTemplate("tpch_q8", _q8_market_share),
        QueryTemplate("tpch_q9", _q9_product_profit),
        QueryTemplate("tpch_q10", _q10_returned_items),
        QueryTemplate("tpch_q12", _q12_shipmode),
        QueryTemplate("tpch_q13", _q13_customer_distribution),
        QueryTemplate("tpch_q14", _q14_promo_effect),
        QueryTemplate("tpch_q17", _q17_small_quantity),
        QueryTemplate("tpch_q18", _q18_large_volume),
        QueryTemplate("tpch_q19", _q19_discounted_revenue),
        QueryTemplate("tpch_q21", _q21_suppliers_waiting),
        QueryTemplate("tpch_sort_scan", _scan_filter_sort),
        QueryTemplate("tpch_point_join", _point_lookup_join),
    ])
