"""Logical query specification.

A :class:`QuerySpec` is a declarative description of a select-project-join
query with optional grouping, ordering and a row limit.  It is independent
of any physical plan; the planner (``repro.optimizer.planner``) chooses
access paths, join order and join algorithms from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.predicates import PredicateConjunction

__all__ = ["TableRef", "JoinEdge", "AggregateSpec", "OrderBySpec", "QuerySpec"]


@dataclass
class TableRef:
    """A reference to one base table in a query.

    Parameters
    ----------
    table:
        Base table name.
    alias:
        Alias used to refer to this occurrence (defaults to the table name);
        must be unique within the query.
    predicates:
        Conjunction of filter predicates applied to this table.
    projected_columns:
        Columns of this table the query actually needs upstream (select
        list, join keys, grouping columns...).  ``None`` means all columns.
    """

    table: str
    alias: str | None = None
    predicates: PredicateConjunction = field(default_factory=PredicateConjunction)
    projected_columns: list[str] | None = None

    def __post_init__(self) -> None:
        if self.alias is None:
            self.alias = self.table

    @property
    def name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge between two table references.

    ``left``/``right`` are aliases of :class:`TableRef` objects in the same
    query; ``left_column``/``right_column`` are the join columns.
    """

    left: str
    left_column: str
    right: str
    right_column: str

    def touches(self, alias: str) -> bool:
        return alias in (self.left, self.right)

    def other(self, alias: str) -> str:
        if alias == self.left:
            return self.right
        if alias == self.right:
            return self.left
        raise ValueError(f"alias {alias!r} is not part of this join edge")

    def column_for(self, alias: str) -> str:
        if alias == self.left:
            return self.left_column
        if alias == self.right:
            return self.right_column
        raise ValueError(f"alias {alias!r} is not part of this join edge")


@dataclass
class AggregateSpec:
    """Grouping and aggregation description.

    ``group_by`` maps aliases to the grouped columns of that alias; an empty
    mapping means a scalar aggregate producing a single row.
    ``n_aggregates`` is the number of aggregate expressions computed
    (``SUM``/``AVG``/``COUNT`` ... all cost roughly the same in the engine).
    """

    group_by: dict[str, list[str]] = field(default_factory=dict)
    n_aggregates: int = 1

    @property
    def is_scalar(self) -> bool:
        return not any(cols for cols in self.group_by.values())

    @property
    def grouping_columns(self) -> list[tuple[str, str]]:
        """Flat (alias, column) list of grouping columns."""
        pairs: list[tuple[str, str]] = []
        for alias, cols in self.group_by.items():
            pairs.extend((alias, col) for col in cols)
        return pairs


@dataclass
class OrderBySpec:
    """Ordering requirement on the query result."""

    columns: list[tuple[str, str]] = field(default_factory=list)
    descending: bool = False


@dataclass
class QuerySpec:
    """A full logical query.

    Attributes
    ----------
    name:
        Unique-ish identifier, usually ``"<template>#<sequence>"``.
    template:
        Identifier of the template that generated this query.
    tables:
        Table references (at least one).
    joins:
        Equi-join edges connecting the references; the join graph must be
        connected (checked by :meth:`validate`).
    aggregate / order_by / limit:
        Optional grouping, ordering and row limit.
    """

    name: str
    tables: list[TableRef]
    joins: list[JoinEdge] = field(default_factory=list)
    aggregate: AggregateSpec | None = None
    order_by: OrderBySpec | None = None
    limit: int | None = None
    template: str = ""

    # -- lookup -----------------------------------------------------------------
    def table_ref(self, alias: str) -> TableRef:
        for ref in self.tables:
            if ref.name == alias:
                return ref
        raise KeyError(f"query {self.name!r} has no table reference {alias!r}")

    @property
    def aliases(self) -> list[str]:
        return [ref.name for ref in self.tables]

    @property
    def n_joins(self) -> int:
        return len(self.joins)

    def joins_touching(self, alias: str) -> list[JoinEdge]:
        return [edge for edge in self.joins if edge.touches(alias)]

    # -- validation ---------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if the spec is structurally inconsistent."""
        if not self.tables:
            raise ValueError(f"query {self.name!r} has no table references")
        aliases = self.aliases
        if len(aliases) != len(set(aliases)):
            raise ValueError(f"query {self.name!r} has duplicate table aliases")
        alias_set = set(aliases)
        for edge in self.joins:
            if edge.left not in alias_set or edge.right not in alias_set:
                raise ValueError(
                    f"query {self.name!r}: join edge {edge} references unknown alias"
                )
        if len(self.tables) > 1:
            self._check_connected(alias_set)
        if self.aggregate is not None:
            for alias, _column in self.aggregate.grouping_columns:
                if alias not in alias_set:
                    raise ValueError(
                        f"query {self.name!r}: group-by references unknown alias {alias!r}"
                    )
        if self.order_by is not None:
            for alias, _column in self.order_by.columns:
                if alias not in alias_set:
                    raise ValueError(
                        f"query {self.name!r}: order-by references unknown alias {alias!r}"
                    )
        if self.limit is not None and self.limit <= 0:
            raise ValueError(f"query {self.name!r}: limit must be positive")

    def _check_connected(self, alias_set: set[str]) -> None:
        """Verify the join graph connects all table references."""
        if not self.joins:
            raise ValueError(
                f"query {self.name!r} has {len(self.tables)} tables but no join edges"
            )
        reached = {self.tables[0].name}
        frontier = [self.tables[0].name]
        while frontier:
            current = frontier.pop()
            for edge in self.joins_touching(current):
                other = edge.other(current)
                if other not in reached:
                    reached.add(other)
                    frontier.append(other)
        missing = alias_set - reached
        if missing:
            raise ValueError(
                f"query {self.name!r}: join graph is disconnected; unreachable: {sorted(missing)}"
            )
