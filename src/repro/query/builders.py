"""Shared helpers used by the workload template modules.

These helpers keep the template definitions short and declarative: drawing a
random range/equality predicate on a column, assembling predicate
conjunctions, and building join edges.
"""

from __future__ import annotations

import numpy as np

from repro.query.predicates import ColumnRef, Predicate, PredicateConjunction

__all__ = [
    "range_predicate",
    "eq_predicate",
    "in_predicate",
    "conjunction",
]


def range_predicate(
    rng: np.random.Generator,
    table: str,
    column: str,
    low: float,
    high: float,
    alias: str | None = None,
    anchor: str | None = None,
    complexity: int = 1,
) -> Predicate:
    """A range predicate covering a uniformly drawn fraction of the domain.

    ``low``/``high`` bound the covered *domain fraction*; the anchor (head or
    tail of the frequency-ranked domain) is drawn at random unless forced,
    which gives the within-template variance in true selectivity that the
    paper's skewed workloads exhibit.
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError(f"invalid fraction bounds [{low}, {high}]")
    fraction = float(rng.uniform(low, high))
    if anchor is None:
        anchor = "head" if rng.random() < 0.5 else "tail"
    return Predicate(
        column=ColumnRef(table, column, alias),
        kind="range",
        domain_fraction=fraction,
        anchor=anchor,
        complexity=complexity,
    )


def eq_predicate(
    rng: np.random.Generator,
    table: str,
    column: str,
    max_rank: int,
    alias: str | None = None,
    complexity: int = 1,
) -> Predicate:
    """An equality predicate against a randomly ranked value.

    ``max_rank`` bounds how deep into the frequency ranking the parameter may
    fall; under skew, rank 0 selects far more rows than rank ``max_rank``.
    """
    if max_rank < 1:
        raise ValueError("max_rank must be >= 1")
    rank = int(rng.integers(0, max_rank))
    return Predicate(
        column=ColumnRef(table, column, alias),
        kind="eq",
        value_rank=rank,
        complexity=complexity,
    )


def in_predicate(
    rng: np.random.Generator,
    table: str,
    column: str,
    min_values: int,
    max_values: int,
    alias: str | None = None,
    complexity: int = 2,
) -> Predicate:
    """An IN-list predicate with a random number of listed values."""
    if not 1 <= min_values <= max_values:
        raise ValueError("need 1 <= min_values <= max_values")
    count = int(rng.integers(min_values, max_values + 1))
    return Predicate(
        column=ColumnRef(table, column, alias),
        kind="in",
        value_count=count,
        complexity=complexity,
    )


def conjunction(*predicates: Predicate, correlation: float = 0.0) -> PredicateConjunction:
    """Bundle predicates into a conjunction with the given true correlation."""
    return PredicateConjunction(list(predicates), correlation=correlation)
