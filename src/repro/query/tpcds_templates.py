"""TPC-DS-style query templates (cross-workload generalisation test set).

Structural approximations of common TPC-DS query shapes over the subset
schema in :mod:`repro.catalog.tpcds`: star joins of one or more sales fact
tables with date/item/customer/store dimensions, selective dimension
filters, grouping and top-k ordering.  These plans differ from TPC-H in
table widths, join fan-outs and plan depth, which is exactly why the paper
uses TPC-DS to test generalisation of models trained on TPC-H.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Catalog
from repro.query.builders import conjunction, eq_predicate, in_predicate, range_predicate
from repro.query.spec import AggregateSpec, JoinEdge, OrderBySpec, QuerySpec, TableRef
from repro.query.templates import QueryTemplate, TemplateSet

__all__ = ["tpcds_template_set"]


def _store_sales_by_item(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_sales",
                     projected_columns=["ss_sold_date_sk", "ss_item_sk", "ss_quantity",
                                        "ss_ext_sales_price", "ss_net_profit"]),
            TableRef("date_dim",
                     predicates=conjunction(
                         eq_predicate(rng, "date_dim", "d_year", 10),
                         eq_predicate(rng, "date_dim", "d_moy", 12),
                         correlation=0.0),
                     projected_columns=["d_date_sk", "d_year", "d_moy"]),
            TableRef("item",
                     predicates=conjunction(in_predicate(rng, "item", "i_category", 1, 3)),
                     projected_columns=["i_item_sk", "i_item_id", "i_category"]),
        ],
        joins=[
            JoinEdge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            JoinEdge("store_sales", "ss_item_sk", "item", "i_item_sk"),
        ],
        aggregate=AggregateSpec(group_by={"item": ["i_item_id", "i_category"]}, n_aggregates=3),
        order_by=OrderBySpec([("item", "i_item_id")]),
        limit=100,
    )


def _customer_state_report(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_sales",
                     projected_columns=["ss_sold_date_sk", "ss_customer_sk", "ss_ext_sales_price"]),
            TableRef("customer", projected_columns=["c_customer_sk", "c_current_addr_sk"]),
            TableRef("customer_address",
                     predicates=conjunction(in_predicate(rng, "customer_address", "ca_state", 2, 6)),
                     projected_columns=["ca_address_sk", "ca_state"]),
            TableRef("date_dim",
                     predicates=conjunction(eq_predicate(rng, "date_dim", "d_year", 10)),
                     projected_columns=["d_date_sk", "d_year"]),
        ],
        joins=[
            JoinEdge("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
            JoinEdge("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
            JoinEdge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ],
        aggregate=AggregateSpec(group_by={"customer_address": ["ca_state"]}, n_aggregates=2),
        order_by=OrderBySpec([("customer_address", "ca_state")]),
    )


def _catalog_web_union_style(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """Catalog-sales star with warehouse and promotion dimensions."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef("catalog_sales",
                     predicates=conjunction(
                         range_predicate(rng, "catalog_sales", "cs_quantity", 0.2, 0.6)),
                     projected_columns=["cs_sold_date_sk", "cs_item_sk", "cs_promo_sk",
                                        "cs_quantity", "cs_ext_sales_price"]),
            TableRef("date_dim",
                     predicates=conjunction(
                         range_predicate(rng, "date_dim", "d_month_seq", 0.02, 0.08)),
                     projected_columns=["d_date_sk", "d_month_seq"]),
            TableRef("item",
                     predicates=conjunction(in_predicate(rng, "item", "i_class", 3, 8)),
                     projected_columns=["i_item_sk", "i_class", "i_current_price"]),
            TableRef("promotion",
                     predicates=conjunction(eq_predicate(rng, "promotion", "p_channel_email", 2)),
                     projected_columns=["p_promo_sk", "p_channel_email"]),
        ],
        joins=[
            JoinEdge("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
            JoinEdge("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
            JoinEdge("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"),
        ],
        aggregate=AggregateSpec(group_by={"item": ["i_class"]}, n_aggregates=2),
        order_by=OrderBySpec([("item", "i_class")]),
    )


def _web_sales_trend(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("web_sales",
                     projected_columns=["ws_sold_date_sk", "ws_item_sk", "ws_ext_sales_price",
                                        "ws_net_profit"]),
            TableRef("date_dim",
                     predicates=conjunction(
                         range_predicate(rng, "date_dim", "d_month_seq", 0.01, 0.05)),
                     projected_columns=["d_date_sk", "d_month_seq", "d_moy"]),
            TableRef("item",
                     predicates=conjunction(in_predicate(rng, "item", "i_color", 3, 10)),
                     projected_columns=["i_item_sk", "i_color", "i_brand"]),
        ],
        joins=[
            JoinEdge("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"),
            JoinEdge("web_sales", "ws_item_sk", "item", "i_item_sk"),
        ],
        aggregate=AggregateSpec(group_by={"item": ["i_brand"], "date_dim": ["d_moy"]},
                                n_aggregates=2),
        order_by=OrderBySpec([("date_dim", "d_moy")]),
        limit=100,
    )


def _inventory_positions(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("inventory",
                     predicates=conjunction(
                         range_predicate(rng, "inventory", "inv_quantity_on_hand", 0.1, 0.5)),
                     projected_columns=["inv_date_sk", "inv_item_sk", "inv_warehouse_sk",
                                        "inv_quantity_on_hand"]),
            TableRef("date_dim",
                     predicates=conjunction(eq_predicate(rng, "date_dim", "d_qoy", 4)),
                     projected_columns=["d_date_sk", "d_qoy"]),
            TableRef("item",
                     predicates=conjunction(
                         range_predicate(rng, "item", "i_current_price", 0.2, 0.6)),
                     projected_columns=["i_item_sk", "i_current_price"]),
            TableRef("warehouse", projected_columns=["w_warehouse_sk", "w_warehouse_name"]),
        ],
        joins=[
            JoinEdge("inventory", "inv_date_sk", "date_dim", "d_date_sk"),
            JoinEdge("inventory", "inv_item_sk", "item", "i_item_sk"),
            JoinEdge("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
        ],
        aggregate=AggregateSpec(group_by={"warehouse": ["w_warehouse_name"]}, n_aggregates=1),
        order_by=OrderBySpec([("warehouse", "w_warehouse_name")]),
    )


def _store_returns_analysis(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_returns",
                     projected_columns=["sr_returned_date_sk", "sr_item_sk", "sr_customer_sk",
                                        "sr_return_amt"]),
            TableRef("store_sales",
                     projected_columns=["ss_item_sk", "ss_customer_sk", "ss_ticket_number",
                                        "ss_ext_sales_price"]),
            TableRef("date_dim",
                     predicates=conjunction(eq_predicate(rng, "date_dim", "d_year", 10)),
                     projected_columns=["d_date_sk", "d_year"]),
            TableRef("item",
                     predicates=conjunction(in_predicate(rng, "item", "i_category", 1, 2)),
                     projected_columns=["i_item_sk", "i_category"]),
        ],
        joins=[
            JoinEdge("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk"),
            JoinEdge("store_returns", "sr_item_sk", "item", "i_item_sk"),
            JoinEdge("store_returns", "sr_customer_sk", "store_sales", "ss_customer_sk"),
        ],
        aggregate=AggregateSpec(group_by={"item": ["i_category"]}, n_aggregates=2),
        order_by=OrderBySpec([("item", "i_category")]),
    )


def _demographics_profile(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_sales",
                     projected_columns=["ss_cdemo_sk", "ss_sold_date_sk", "ss_quantity",
                                        "ss_sales_price"]),
            TableRef("customer_demographics",
                     predicates=conjunction(
                         eq_predicate(rng, "customer_demographics", "cd_gender", 2),
                         eq_predicate(rng, "customer_demographics", "cd_marital_status", 5),
                         eq_predicate(rng, "customer_demographics", "cd_education_status", 7),
                         correlation=0.1),
                     projected_columns=["cd_demo_sk", "cd_gender", "cd_marital_status",
                                        "cd_education_status"]),
            TableRef("date_dim",
                     predicates=conjunction(eq_predicate(rng, "date_dim", "d_year", 10)),
                     projected_columns=["d_date_sk", "d_year"]),
        ],
        joins=[
            JoinEdge("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            JoinEdge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ],
        aggregate=AggregateSpec(group_by={"customer_demographics": ["cd_education_status"]},
                                n_aggregates=4),
        order_by=OrderBySpec([("customer_demographics", "cd_education_status")]),
    )


def _store_channel_rollup(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_sales",
                     predicates=conjunction(
                         range_predicate(rng, "store_sales", "ss_sales_price", 0.2, 0.7)),
                     projected_columns=["ss_store_sk", "ss_sold_date_sk", "ss_ext_sales_price",
                                        "ss_sales_price", "ss_net_profit"]),
            TableRef("store",
                     predicates=conjunction(in_predicate(rng, "store", "s_state", 2, 5)),
                     projected_columns=["s_store_sk", "s_store_name", "s_state"]),
            TableRef("date_dim",
                     predicates=conjunction(
                         range_predicate(rng, "date_dim", "d_month_seq", 0.02, 0.06)),
                     projected_columns=["d_date_sk", "d_month_seq"]),
        ],
        joins=[
            JoinEdge("store_sales", "ss_store_sk", "store", "s_store_sk"),
            JoinEdge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ],
        aggregate=AggregateSpec(group_by={"store": ["s_store_name", "s_state"]}, n_aggregates=3),
        order_by=OrderBySpec([("store", "s_store_name")]),
    )


def _item_price_scan(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """A wide fact scan ordered by a computed measure (sort dominant)."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef("catalog_sales",
                     predicates=conjunction(
                         range_predicate(rng, "catalog_sales", "cs_list_price", 0.1, 0.6)),
                     projected_columns=["cs_item_sk", "cs_list_price", "cs_sales_price",
                                        "cs_ext_discount_amt", "cs_net_profit"]),
        ],
        order_by=OrderBySpec([("catalog_sales", "cs_net_profit")], descending=True),
        limit=1000,
    )


def _cross_channel_customer(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("web_sales",
                     projected_columns=["ws_customer_sk", "ws_sold_date_sk", "ws_ext_sales_price"]),
            TableRef("catalog_sales",
                     projected_columns=["cs_customer_sk", "cs_ext_sales_price"]),
            TableRef("customer",
                     predicates=conjunction(in_predicate(rng, "customer", "c_birth_country", 3, 10)),
                     projected_columns=["c_customer_sk", "c_birth_country", "c_last_name"]),
            TableRef("date_dim",
                     predicates=conjunction(eq_predicate(rng, "date_dim", "d_year", 10)),
                     projected_columns=["d_date_sk", "d_year"]),
        ],
        joins=[
            JoinEdge("web_sales", "ws_customer_sk", "customer", "c_customer_sk"),
            JoinEdge("catalog_sales", "cs_customer_sk", "customer", "c_customer_sk"),
            JoinEdge("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"),
        ],
        aggregate=AggregateSpec(group_by={"customer": ["c_birth_country"]}, n_aggregates=2),
        order_by=OrderBySpec([("customer", "c_birth_country")]),
    )


def _monthly_quantity_histogram(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=[
            TableRef("store_sales",
                     predicates=conjunction(
                         range_predicate(rng, "store_sales", "ss_quantity", 0.1, 0.4)),
                     projected_columns=["ss_sold_date_sk", "ss_quantity", "ss_wholesale_cost"]),
            TableRef("date_dim",
                     projected_columns=["d_date_sk", "d_moy", "d_year"]),
        ],
        joins=[JoinEdge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")],
        aggregate=AggregateSpec(group_by={"date_dim": ["d_year", "d_moy"]}, n_aggregates=3),
        order_by=OrderBySpec([("date_dim", "d_year"), ("date_dim", "d_moy")]),
    )


def _promo_lookup(rng: np.random.Generator, catalog: Catalog, name: str) -> QuerySpec:
    """Selective seek-style query against web sales by date."""
    return QuerySpec(
        name=name,
        tables=[
            TableRef("web_sales",
                     predicates=conjunction(
                         range_predicate(rng, "web_sales", "ws_sold_date_sk", 0.001, 0.01)),
                     projected_columns=["ws_sold_date_sk", "ws_item_sk", "ws_sales_price"]),
            TableRef("item", projected_columns=["i_item_sk", "i_item_desc"]),
        ],
        joins=[JoinEdge("web_sales", "ws_item_sk", "item", "i_item_sk")],
        order_by=OrderBySpec([("web_sales", "ws_sales_price")], descending=True),
        limit=50,
    )


def tpcds_template_set() -> TemplateSet:
    """The TPC-DS-style generalisation workload (paper: >100 random queries)."""
    return TemplateSet("tpcds", [
        QueryTemplate("tpcds_item_sales", _store_sales_by_item),
        QueryTemplate("tpcds_customer_state", _customer_state_report),
        QueryTemplate("tpcds_catalog_promo", _catalog_web_union_style),
        QueryTemplate("tpcds_web_trend", _web_sales_trend),
        QueryTemplate("tpcds_inventory", _inventory_positions),
        QueryTemplate("tpcds_returns", _store_returns_analysis),
        QueryTemplate("tpcds_demographics", _demographics_profile),
        QueryTemplate("tpcds_store_rollup", _store_channel_rollup),
        QueryTemplate("tpcds_price_scan", _item_price_scan),
        QueryTemplate("tpcds_cross_channel", _cross_channel_customer),
        QueryTemplate("tpcds_monthly_histogram", _monthly_quantity_histogram),
        QueryTemplate("tpcds_promo_lookup", _promo_lookup),
    ])
