"""Ground-truth per-operator resource functions.

For every operator type this module defines how much CPU time (µs) and how
many logical I/O operations (8 KB page accesses) executing the operator on
*true* cardinalities costs.  These are the functions the statistical models
in the rest of the library try to learn from observations; they embody the
asymptotic behaviours the paper's scaling functions target:

===================  ==========================================================
Operator             Dominant behaviour
===================  ==========================================================
Table / Index Scan   linear in pages (I/O) and rows × width (CPU)
Index Seek           logarithmic in table size (B-tree depth) per lookup
Filter               linear in input rows × predicate complexity
Sort                 n·log n comparisons; extra I/O and CPU for multi-pass
                     spills once the input exceeds the memory grant
Hash Join/Aggregate  linear per-tuple hashing scaled by the number of hash
                     columns; spills once the build side exceeds the grant
Merge Join           linear in the sum of the input sizes
Nested Loop Join     outer × log(inner) index navigation plus per-match cost
===================  ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.schema import PAGE_SIZE_BYTES
from repro.engine.hardware import HardwareProfile
from repro.plan.operators import OperatorType, PlanOperator

__all__ = ["ResourceModel", "OperatorResources"]


@dataclass(frozen=True)
class OperatorResources:
    """Actual resource consumption of one operator instance."""

    cpu_us: float
    logical_io: float

    def __add__(self, other: "OperatorResources") -> "OperatorResources":
        return OperatorResources(self.cpu_us + other.cpu_us, self.logical_io + other.logical_io)


class ResourceModel:
    """Computes true CPU / logical-I/O consumption for plan operators."""

    def __init__(self, hardware: HardwareProfile | None = None) -> None:
        self.hardware = hardware or HardwareProfile()

    # -- dispatch ---------------------------------------------------------------------
    def operator_resources(self, op: PlanOperator) -> OperatorResources:
        """Resource usage of ``op`` given its (true) cardinality annotations."""
        handler = {
            OperatorType.TABLE_SCAN: self._scan,
            OperatorType.INDEX_SCAN: self._scan,
            OperatorType.INDEX_SEEK: self._seek,
            OperatorType.FILTER: self._filter,
            OperatorType.COMPUTE_SCALAR: self._compute_scalar,
            OperatorType.SORT: self._sort,
            OperatorType.TOP: self._top,
            OperatorType.HASH_JOIN: self._hash_join,
            OperatorType.MERGE_JOIN: self._merge_join,
            OperatorType.NESTED_LOOP_JOIN: self._nested_loop_join,
            OperatorType.HASH_AGGREGATE: self._hash_aggregate,
            OperatorType.STREAM_AGGREGATE: self._stream_aggregate,
        }.get(op.op_type)
        if handler is None:
            raise ValueError(f"no resource model for operator type {op.op_type}")
        cpu, io = handler(op)
        return OperatorResources(cpu_us=max(cpu, 0.0), logical_io=max(io, 0.0))

    # -- leaves --------------------------------------------------------------------------
    def _scan(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        table_rows = float(op.props.get("table_rows", op.true_rows))
        pages = float(op.props.get("pages", 1.0))
        full_width = float(op.props.get("row_width_full", op.row_width))
        out_width = float(op.row_width)
        # Row decoding cost grows super-linearly with the stored row width
        # (more columns to skip over, worse cache locality), a non-linearity
        # commercial engines exhibit and linear feature models cannot capture.
        width_factor = (max(full_width, 1.0) / 100.0) ** 1.25
        cpu = (
            hw.operator_startup_us
            + table_rows * hw.cpu_per_tuple_us * (1.0 + 0.5 * width_factor)
            + table_rows * full_width * hw.cpu_per_byte_us * 0.25
            + op.true_rows * out_width * hw.cpu_per_byte_us
            + pages * hw.cpu_per_page_us
        )
        io = pages
        return cpu, io

    def _seek(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        depth = float(op.props.get("index_depth", 2))
        executions = float(op.props.get("executions", 1.0))
        leaf_pages = float(op.props.get("index_leaf_pages", op.props.get("pages", 1.0)))
        table_rows = max(float(op.props.get("table_rows", 1.0)), 1.0)
        rows = float(op.true_rows)
        out_width = float(op.row_width)
        # Pages actually touched at the leaf level: proportional share of the
        # leaf pages, at least one page per execution.
        leaf_touched = max(rows / table_rows * leaf_pages, executions)
        covering = bool(op.props.get("covering", True))
        lookup_io = 0.0 if covering else rows  # bookmark lookups, one page each
        cpu = (
            hw.operator_startup_us
            + executions * depth * hw.cpu_per_index_level_us
            + rows * hw.cpu_per_tuple_us
            + rows * out_width * hw.cpu_per_byte_us
            + (executions * depth + leaf_touched + lookup_io) * hw.cpu_per_page_us * 0.5
        )
        io = executions * (depth - 1) + leaf_touched + lookup_io
        return cpu, io

    # -- unary operators -------------------------------------------------------------------
    def _filter(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows_in = op.total_input_rows(estimated=False)
        complexity = float(op.props.get("predicate_complexity", 1))
        width = float(op.row_width)
        # Evaluating predicates over wide rows costs more per comparison
        # (column extraction), again super-linear in the row width.
        width_factor = 1.0 + 0.3 * (max(width, 1.0) / 100.0) ** 1.2
        cpu = (
            hw.operator_startup_us
            + rows_in * complexity * hw.cpu_per_comparison_us * width_factor
            + op.true_rows * hw.cpu_per_tuple_us * 0.5
        )
        return cpu, 0.0

    def _compute_scalar(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows_in = op.total_input_rows(estimated=False)
        n_expr = float(op.props.get("n_expressions", 1))
        cpu = hw.operator_startup_us + rows_in * n_expr * hw.cpu_per_comparison_us * 0.5
        return cpu, 0.0

    def _top(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        cpu = hw.operator_startup_us + op.true_rows * hw.cpu_per_tuple_us
        return cpu, 0.0

    def _sort(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows = max(op.total_input_rows(estimated=False), 0.0)
        width = float(op.row_width)
        sort_columns = float(op.props.get("n_sort_columns", 1))
        if rows < 2:
            return hw.operator_startup_us, 0.0
        # Comparison cost: n log2 n comparisons, each touching the sort keys.
        key_factor = 0.6 + 0.4 * sort_columns
        cpu = (
            hw.operator_startup_us
            + rows * math.log2(rows) * hw.cpu_per_sort_compare_us * key_factor
            + rows * width * hw.cpu_per_byte_us
        )
        io = 0.0
        # Multi-pass external sort: once the input exceeds the memory grant,
        # every additional merge pass rewrites all pages, and the CPU jumps —
        # the discontinuity the paper cites as a reason MART must not assume
        # continuous functions.
        input_bytes = rows * width
        grant = self.hardware.memory_grant_bytes
        if input_bytes > grant:
            input_pages = input_bytes / PAGE_SIZE_BYTES
            passes = max(int(math.ceil(math.log(input_bytes / grant, 32))) + 1, 1)
            io += input_pages * 2 * passes
            cpu += input_pages * passes * hw.cpu_per_page_us * 2
        return cpu, io

    # -- joins -------------------------------------------------------------------------------
    def _hash_join(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        probe = op.children[0] if op.children else None
        build = op.children[1] if len(op.children) > 1 else None
        probe_rows = probe.true_rows if probe is not None else 0.0
        build_rows = build.true_rows if build is not None else 0.0
        build_width = build.row_width if build is not None else 8.0
        hash_columns = float(op.props.get("hash_columns", op.props.get("inner_columns", 1)))
        per_tuple_hash = hw.cpu_per_hash_op_us * (0.7 + 0.3 * hash_columns)
        # Probing a larger hash table costs more per tuple (cache hierarchy):
        # a logarithmic growth factor in the build size.
        cache_factor = 1.0 + 0.12 * math.log2(max(build_rows, 2.0))
        cpu = (
            hw.operator_startup_us
            + build_rows * (per_tuple_hash + build_width * hw.cpu_per_byte_us)
            + probe_rows * per_tuple_hash * cache_factor
            + op.true_rows * hw.cpu_per_tuple_us
        )
        io = 0.0
        build_bytes = build_rows * build_width
        grant = hw.memory_grant_bytes
        if build_bytes > grant:
            # Grace hash join: spill both inputs to disk once and re-read them.
            probe_bytes = probe_rows * (probe.row_width if probe is not None else 8.0)
            spill_pages = (build_bytes + probe_bytes) / PAGE_SIZE_BYTES
            io += spill_pages * 2
            cpu += spill_pages * hw.cpu_per_page_us * 2
        return cpu, io

    def _merge_join(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows_in = op.total_input_rows(estimated=False)
        cpu = (
            hw.operator_startup_us
            + rows_in * hw.cpu_per_comparison_us * 1.2
            + op.true_rows * hw.cpu_per_tuple_us
        )
        return cpu, 0.0

    def _nested_loop_join(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        outer_rows = float(op.props.get("outer_rows_true",
                                        op.children[0].true_rows if op.children else 0.0))
        inner_table_rows = max(float(op.props.get("inner_table_rows", 1.0)), 2.0)
        depth = float(op.props.get("index_depth", max(math.log(inner_table_rows, 100), 1.0)))
        # Optimised batched nested loops (the paper's motivating example of a
        # query-processing improvement): sorting outer references localises
        # inner accesses, so the per-probe CPU is lower than a cold B-tree
        # descent, but an n·log n batch-sort term on the outer side appears.
        batch_sort_cpu = 0.0
        if outer_rows > 2:
            batch_sort_cpu = outer_rows * math.log2(outer_rows) * hw.cpu_per_sort_compare_us * 0.3
        cpu = (
            hw.operator_startup_us
            + batch_sort_cpu
            + outer_rows * depth * hw.cpu_per_index_level_us * 0.7
            + op.true_rows * hw.cpu_per_tuple_us * 1.5
        )
        # The inner side's seek I/O is accounted for by the inner Index Seek
        # operator itself (its `executions` property was set by the planner);
        # the join operator adds no I/O of its own.
        return cpu, 0.0

    # -- aggregates -----------------------------------------------------------------------------
    def _hash_aggregate(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows_in = op.total_input_rows(estimated=False)
        groups = max(op.true_rows, 1.0)
        hash_columns = float(op.props.get("hash_columns", op.props.get("n_group_columns", 1)))
        n_aggregates = float(op.props.get("n_aggregates", 1))
        per_tuple_hash = hw.cpu_per_hash_op_us * (0.7 + 0.3 * hash_columns)
        # As with hash joins, a larger group table costs more per probe.
        cache_factor = 1.0 + 0.12 * math.log2(max(groups, 2.0))
        cpu = (
            hw.operator_startup_us
            + rows_in * (per_tuple_hash * cache_factor + n_aggregates * hw.cpu_per_aggregate_us)
            + groups * op.row_width * hw.cpu_per_byte_us
        )
        io = 0.0
        table_bytes = groups * op.row_width
        if table_bytes > hw.memory_grant_bytes:
            spill_pages = table_bytes / PAGE_SIZE_BYTES
            io += spill_pages * 2
            cpu += spill_pages * hw.cpu_per_page_us * 2
        return cpu, io

    def _stream_aggregate(self, op: PlanOperator) -> tuple[float, float]:
        hw = self.hardware
        rows_in = op.total_input_rows(estimated=False)
        n_aggregates = float(op.props.get("n_aggregates", 1))
        cpu = (
            hw.operator_startup_us
            + rows_in * n_aggregates * hw.cpu_per_aggregate_us
            + rows_in * hw.cpu_per_tuple_us * 0.3
        )
        return cpu, 0.0
