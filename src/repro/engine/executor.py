"""Plan "execution": turning annotated plans into resource observations.

The :class:`QueryExecutor` walks a physical plan bottom-up, evaluates the
ground-truth resource model for every operator on its *true* cardinalities,
applies multiplicative measurement noise, and returns an
:class:`ExecutionResult` holding per-operator, per-pipeline and per-query
actual CPU time and logical I/O.  These observations are the training and
test labels for every statistical model in the library — the role played by
instrumented query executions on SQL Server in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.rng import make_rng
from repro.engine.hardware import HardwareProfile
from repro.engine.resource_model import ResourceModel
from repro.plan.operators import PlanOperator
from repro.plan.plan import QueryPlan

__all__ = ["OperatorObservation", "ExecutionResult", "QueryExecutor"]


@dataclass(frozen=True)
class OperatorObservation:
    """Observed execution metrics for one operator instance."""

    operator: PlanOperator
    actual_cpu_us: float
    actual_logical_io: float
    pipeline: int

    @property
    def node_id(self) -> int:
        return self.operator.node_id

    def resource(self, resource: str) -> float:
        """Observed value of ``resource`` (``"cpu"`` or ``"io"``)."""
        if resource == "cpu":
            return self.actual_cpu_us
        if resource == "io":
            return self.actual_logical_io
        raise ValueError(f"unknown resource {resource!r}")


@dataclass
class ExecutionResult:
    """Full execution feedback for one query plan."""

    plan: QueryPlan
    observations: list[OperatorObservation] = field(default_factory=list)

    # -- totals ------------------------------------------------------------------------
    @property
    def total_cpu_us(self) -> float:
        return float(sum(obs.actual_cpu_us for obs in self.observations))

    @property
    def total_logical_io(self) -> float:
        return float(sum(obs.actual_logical_io for obs in self.observations))

    def total(self, resource: str) -> float:
        """Query-level total of ``resource`` (``"cpu"`` or ``"io"``)."""
        return float(sum(obs.resource(resource) for obs in self.observations))

    # -- finer granularities -----------------------------------------------------------
    def by_operator(self) -> dict[int, OperatorObservation]:
        return {obs.node_id: obs for obs in self.observations}

    def pipeline_totals(self, resource: str) -> dict[int, float]:
        """Per-pipeline totals of ``resource``, keyed by pipeline index."""
        totals: dict[int, float] = {}
        for obs in self.observations:
            totals[obs.pipeline] = totals.get(obs.pipeline, 0.0) + obs.resource(resource)
        return totals

    def observation_for(self, operator: PlanOperator) -> OperatorObservation:
        for obs in self.observations:
            if obs.node_id == operator.node_id:
                return obs
        raise KeyError(f"no observation for operator {operator.node_id}")


class QueryExecutor:
    """Simulates plan execution and records resource observations."""

    def __init__(
        self,
        hardware: HardwareProfile | None = None,
        resource_model: ResourceModel | None = None,
        noise: bool = True,
    ) -> None:
        self.hardware = hardware or HardwareProfile()
        self.resource_model = resource_model or ResourceModel(self.hardware)
        self.noise = noise

    def execute(self, plan: QueryPlan, seed: int | None = None) -> ExecutionResult:
        """Execute ``plan`` and return its resource observations.

        The noise stream is derived from the query name (plus ``seed``), so
        repeated executions of the same plan observe the same values unless
        a different seed is supplied — convenient for reproducible datasets.
        """
        rng = self._noise_rng(plan, seed)
        pipeline_index = self._pipeline_index(plan)
        observations: list[OperatorObservation] = []
        for op in plan.operators_postorder():
            resources = self.resource_model.operator_resources(op)
            cpu = resources.cpu_us * self._noise_factor(rng)
            io = resources.logical_io
            if io > 0:
                # Logical I/O counts are nearly deterministic on a real
                # system; keep a tiny jitter to avoid exact ties.
                io = io * self._noise_factor(rng, scale=0.25)
            observations.append(
                OperatorObservation(
                    operator=op,
                    actual_cpu_us=float(cpu),
                    actual_logical_io=float(io),
                    pipeline=pipeline_index[op.node_id],
                )
            )
        return ExecutionResult(plan=plan, observations=observations)

    # -- helpers ------------------------------------------------------------------------
    def _noise_rng(self, plan: QueryPlan, seed: int | None) -> np.random.Generator:
        return make_rng(self.hardware.noise_seed, "execution", plan.query.name, seed or 0)

    def _noise_factor(self, rng: np.random.Generator, scale: float = 1.0) -> float:
        if not self.noise:
            return 1.0
        sigma = self.hardware.noise_sigma * scale
        if sigma <= 0:
            return 1.0
        return float(np.exp(rng.normal(0.0, sigma)))

    @staticmethod
    def _pipeline_index(plan: QueryPlan) -> dict[int, int]:
        index: dict[int, int] = {}
        for pipeline in plan.pipelines():
            for op in pipeline.operators:
                index[op.node_id] = pipeline.index
        return index
