"""Hardware / runtime profile of the simulated database server.

The constants loosely correspond to a mid-2000s commodity server (the paper
used a 3.16 GHz dual-core machine with 8 GB of RAM).  They are *not* meant
to be calibrated against any particular hardware: the statistical models
only ever see the resulting resource observations, so what matters is that
the constants induce realistic relative magnitudes and non-linearities.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareProfile"]


@dataclass(frozen=True)
class HardwareProfile:
    """Per-operation CPU costs (microseconds) and memory limits of the server."""

    #: Base CPU cost of pushing one tuple through an operator boundary.
    cpu_per_tuple_us: float = 0.12
    #: CPU cost per byte of tuple data touched (copy / materialisation cost).
    cpu_per_byte_us: float = 0.0009
    #: CPU cost of evaluating one predicate comparison.
    cpu_per_comparison_us: float = 0.045
    #: CPU cost of one hash operation on a single column.
    cpu_per_hash_op_us: float = 0.09
    #: CPU cost of one key comparison inside a sort.
    cpu_per_sort_compare_us: float = 0.055
    #: CPU cost of navigating one B-tree level during a seek.
    cpu_per_index_level_us: float = 0.8
    #: CPU cost of one aggregate-function update.
    cpu_per_aggregate_us: float = 0.03
    #: CPU cost associated with issuing one logical page read.
    cpu_per_page_us: float = 1.4
    #: Fixed per-operator startup CPU cost.
    operator_startup_us: float = 35.0
    #: Memory grant available to a single sort or hash operation, in bytes.
    memory_grant_bytes: float = 96.0 * 1024 * 1024
    #: Relative standard deviation of multiplicative measurement noise.
    noise_sigma: float = 0.04
    #: Seed namespace for the execution noise stream.
    noise_seed: int = 20120827

    def grant_pages(self, page_size: int = 8192) -> float:
        """Memory grant expressed in pages."""
        return self.memory_grant_bytes / float(page_size)
