"""Execution engine simulator.

This subpackage plays the role of "Microsoft SQL Server running on the
paper's testbed": given an annotated physical plan it produces the *actual*
CPU time (in microseconds) and the number of *logical I/O* operations of
every operator, pipeline and query.  The resource functions are non-linear
and operator-specific (n·log n sorts with multi-pass spills, per-tuple and
per-column hash costs, index-depth driven seeks, batched nested-loop
lookups) and include multiplicative measurement noise, so that learning the
mapping from plan features to resources is a non-trivial statistical
problem — just as it is on a real engine.
"""

from repro.engine.executor import ExecutionResult, OperatorObservation, QueryExecutor
from repro.engine.hardware import HardwareProfile
from repro.engine.resource_model import ResourceModel

__all__ = [
    "ExecutionResult",
    "OperatorObservation",
    "QueryExecutor",
    "HardwareProfile",
    "ResourceModel",
]
