"""Per-module analysis context: pragmas, suppressions and invariant zones.

The linter's rules are *scoped*: hot-path rules only fire in modules that
opted in via the ``# repro: hot-path`` pragma (or on functions carrying the
:func:`hot_path` decorator), RNG discipline only applies to workload /
experiment / benchmark code, and the persistence rule exempts the one module
that *is* the codec.  This module computes those scopes once per file so the
rules stay small.

Suppression syntax (checked per offending line)::

    some_call()  # repro: noqa[REPRO-R2]
    other_call()  # repro: noqa[REPRO-R2, REPRO-R6]
    anything()  # repro: noqa

A bare ``noqa`` suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = [
    "ModuleContext",
    "build_context",
    "hot_path",
    "HOT_PATH_PRAGMA",
    "HOT_PATH_DECORATOR",
]

#: Module-level pragma marking every line of the file as hot-path code.
HOT_PATH_PRAGMA = "repro: hot-path"
#: Decorator name marking a single function as hot-path code.
HOT_PATH_DECORATOR = "hot_path"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9\-_,\s]*)\])?")
_PRAGMA_RE = re.compile(r"#\s*" + re.escape(HOT_PATH_PRAGMA) + r"\b")

_F = TypeVar("_F", bound=Callable[..., object])


def hot_path(func: _F) -> _F:
    """Marker decorator: the decorated function is hot-path code.

    A no-op at runtime; ``repro lint`` applies the hot-path rules (scalar
    loops, dtype contract) to the function body even when the enclosing
    module did not opt in with the module pragma.
    """
    return func


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: Whole module opted into hot-path rules via the module pragma.
    is_hot: bool
    #: (first, last) line ranges of ``@hot_path``-decorated functions.
    hot_ranges: list[tuple[int, int]]
    #: RNG discipline zone (workloads / experiments / benchmarks).
    rng_zone: bool
    #: Float-equality zone (tree-split / model-selection / ml code).
    float_zone: bool
    #: The module *is* the persistence codec (R3 does not apply).
    codec_module: bool
    #: line -> suppressed rule ids; ``None`` value means "all rules".
    noqa: dict[int, set[str] | None] = field(default_factory=dict)

    def in_hot_scope(self, line: int) -> bool:
        if self.is_hot:
            return True
        return any(first <= line <= last for first, last in self.hot_ranges)

    def suppressed(self, line: int, rule: str) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule in rules

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _path_parts(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.replace("\\", "/").split("/") if part)


def _collect_noqa(lines: list[str]) -> dict[int, set[str] | None]:
    noqa: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            noqa[lineno] = None
        else:
            ids = {part.strip().upper() for part in rules.split(",") if part.strip()}
            # ``noqa[]`` with an empty list suppresses nothing.
            noqa[lineno] = ids if ids else set()
    return noqa


def _is_hot_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == HOT_PATH_DECORATOR
    if isinstance(target, ast.Attribute):
        return target.attr == HOT_PATH_DECORATOR
    return False


def _hot_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    ranges: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_is_hot_decorator(dec) for dec in node.decorator_list):
                ranges.append((node.lineno, node.end_lineno or node.lineno))
    return ranges


#: Path components that put a file in the seeded-RNG zone (R2).
_RNG_ZONE_PARTS = frozenset(
    {"workloads", "experiments", "benchmarks", "data", "serving", "adaptive"}
)
#: Path components / file names in the float-equality zone (R4).
_FLOAT_ZONE_PARTS = frozenset({"ml", "core"})


def build_context(path: str, source: str, tree: ast.Module) -> ModuleContext:
    """Compute the analysis context of one parsed module."""
    lines = source.splitlines()
    parts = _path_parts(path)
    is_hot = any(_PRAGMA_RE.search(line) for line in lines)
    codec_module = len(parts) >= 2 and parts[-2:] == ("core", "serialization.py")
    return ModuleContext(
        path=path,
        source=source,
        lines=lines,
        tree=tree,
        is_hot=is_hot,
        hot_ranges=_hot_ranges(tree),
        rng_zone=bool(_RNG_ZONE_PARTS.intersection(parts[:-1])),
        float_zone=is_hot or bool(_FLOAT_ZONE_PARTS.intersection(parts[:-1])),
        codec_module=codec_module,
        noqa=_collect_noqa(lines),
    )
