"""Finding records and output formats of the repo linter.

A finding is one rule violation at one source location.  The text format
(``path:line:col RULE-ID message``) is the grep-friendly default; the
``github`` format emits GitHub Actions workflow commands so findings show
up as inline annotations on pull requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LintFinding", "format_finding"]


@dataclass(frozen=True, order=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stripped source text of the offending line; used for baseline keys so
    #: grandfathered findings survive unrelated line-number drift.
    source_line: str = field(default="", compare=False)

    def text(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def github(self) -> str:
        # ``::`` inside the message would terminate the workflow command early.
        message = self.message.replace("::", ":")
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{message}"
        )

    def baseline_key(self) -> str:
        """Stable identity used by the baseline file (line-number free)."""
        return f"{self.path}::{self.rule}::{self.source_line.strip()}"


def format_finding(finding: LintFinding, fmt: str) -> str:
    """Render one finding in the requested output format."""
    if fmt == "github":
        return finding.github()
    return finding.text()
