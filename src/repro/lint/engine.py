"""The lint engine: file discovery, parallel checking, suppression.

``run_lint`` walks the given files/directories, parses every ``*.py`` file,
runs all rules (files are checked in parallel — each file is independent),
filters ``# repro: noqa[...]`` suppressions, and applies an optional
baseline.  Unparseable files surface as ``REPRO-E001`` findings rather than
crashing the gate: a syntax error in checked code is itself a finding.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.context import build_context
from repro.lint.findings import LintFinding
from repro.lint.rules import run_rules

__all__ = ["LintReport", "run_lint", "check_source", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "node_modules",
                        ".mypy_cache", ".pytest_cache", "build", "dist"})


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[LintFinding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``*.py`` file under ``paths`` (files are taken verbatim)."""
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
                and not any(part.startswith(".") for part in candidate.parts[1:])
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def display_path(path: Path, root: Path | None = None) -> str:
    """Stable, slash-separated path used in findings and baseline keys."""
    base = root or Path.cwd()
    try:
        relative = path.resolve().relative_to(base.resolve())
    except ValueError:
        return path.as_posix()
    return relative.as_posix()


def check_source(path: str, source: str) -> tuple[list[LintFinding], int]:
    """Lint one in-memory module; returns (findings, suppressed count)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                LintFinding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    rule="REPRO-E001",
                    message=f"cannot parse file: {exc.msg}",
                )
            ],
            0,
        )
    ctx = build_context(path, source, tree)
    raw = run_rules(ctx)
    findings = [f for f in raw if not ctx.suppressed(f.line, f.rule)]
    return sorted(findings), len(raw) - len(findings)


def _check_file(path: Path, root: Path | None) -> tuple[list[LintFinding], int]:
    name = display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        finding = LintFinding(
            path=name, line=1, col=1, rule="REPRO-E001",
            message=f"cannot read file: {exc}",
        )
        return [finding], 0
    return check_source(name, source)


def run_lint(
    paths: list[Path],
    baseline_path: Path | None = None,
    jobs: int | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``baseline_path`` (when given and existing) absorbs grandfathered
    findings; ``jobs`` caps the worker threads (default: CPU count).
    """
    files = iter_python_files(paths)
    report = LintReport(files_checked=len(files))
    if not files:
        return report

    workers = jobs or min(32, os.cpu_count() or 1)
    if workers <= 1 or len(files) == 1:
        results = [_check_file(path, root) for path in files]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(lambda p: _check_file(p, root), files))

    findings: list[LintFinding] = []
    for file_findings, suppressed in results:
        findings.extend(file_findings)
        report.suppressed += suppressed
    findings.sort()

    if baseline_path is not None:
        findings, absorbed = apply_baseline(findings, load_baseline(baseline_path))
        report.baselined = absorbed
    report.findings = findings
    return report
