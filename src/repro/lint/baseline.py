"""Baseline files: grandfathered findings that do not fail the gate.

A baseline is a checked-in text file with one key per line, as produced by
``repro lint --write-baseline``.  Keys are line-number free
(``path::RULE-ID::<stripped source line>``) so unrelated edits above a
grandfathered finding do not invalidate the baseline.  Matching is
multiset-aware: one baseline entry absorbs one finding, so *new* copies of
a grandfathered pattern still fail the gate.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.lint.findings import LintFinding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_HEADER = (
    "# repro lint baseline — grandfathered findings (one key per line).\n"
    "# Regenerate with: python -m repro.lint <paths> --write-baseline\n"
)


def load_baseline(path: Path) -> Counter[str]:
    """The baseline keys of ``path`` (empty when the file does not exist)."""
    entries: Counter[str] = Counter()
    if not path.is_file():
        return entries
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries[line] += 1
    return entries


def write_baseline(path: Path, findings: list[LintFinding]) -> int:
    """Write the baseline absorbing ``findings``; returns the entry count."""
    keys = sorted(finding.baseline_key() for finding in findings)
    body = "".join(key + "\n" for key in keys)
    path.write_text(_HEADER + body, encoding="utf-8")
    return len(keys)


def apply_baseline(
    findings: list[LintFinding], baseline: Counter[str]
) -> tuple[list[LintFinding], int]:
    """Drop findings absorbed by the baseline.

    Returns the surviving findings and the number absorbed.  Each baseline
    entry absorbs at most as many findings as its multiplicity.
    """
    remaining = Counter(baseline)
    survivors: list[LintFinding] = []
    absorbed = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            survivors.append(finding)
    return survivors, absorbed
