"""Command-line front end of the repo linter.

Reachable two ways with identical behaviour::

    python -m repro.lint [paths...] [options]
    python -m repro.cli lint [paths...] [options]

Exit codes (documented, regression-tested): **0** clean, **1** findings,
**2** usage error (unknown option, non-existent path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.engine import run_lint
from repro.lint.findings import format_finding
from repro.lint.rules import RULES

__all__ = ["add_lint_arguments", "run_lint_command", "main"]

_DEFAULT_BASELINE = "lint-baseline.txt"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/ and tests/ when "
        "present, else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        dest="output_format",
        help="output format: grep-style text (default) or GitHub Actions "
        "annotations",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{_DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads for the parallel file walk (default: CPU count)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule ids and what they enforce, then exit",
    )


def _default_paths() -> list[Path]:
    candidates = [Path("src"), Path("tests")]
    present = [path for path in candidates if path.is_dir()]
    return present or [Path(".")]


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.slug:<24} {rule.summary}")
        return 0

    paths = list(args.paths) if args.paths else _default_paths()
    missing = [path for path in paths if not path.exists()]
    if missing:
        names = ", ".join(str(path) for path in missing)
        print(f"repro lint: error: no such file or directory: {names}",
              file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("repro lint: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    baseline = args.baseline
    if baseline is None and Path(_DEFAULT_BASELINE).is_file():
        baseline = Path(_DEFAULT_BASELINE)

    if args.write_baseline:
        report = run_lint(paths, baseline_path=None, jobs=args.jobs)
        target = args.baseline or Path(_DEFAULT_BASELINE)
        count = write_baseline(target, report.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target}")
        return 0

    report = run_lint(paths, baseline_path=baseline, jobs=args.jobs)
    for finding in report.findings:
        print(format_finding(finding, args.output_format))
    summary = (
        f"checked {report.files_checked} files: "
        f"{len(report.findings)} finding(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed by noqa"
    if report.baselined:
        summary += f", {report.baselined} baselined"
    print(summary, file=sys.stderr)
    return 1 if report.findings else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based checker for the repo's estimation invariants.",
    )
    add_lint_arguments(parser)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 0 on --help and 2 on usage errors; surface both as
        # return codes so embedding callers never see SystemExit.
        return exc.code if isinstance(exc.code, int) else 2
    return run_lint_command(args)
