"""``repro.lint`` — AST-based checker for the repo's estimation invariants.

The library's robustness story rests on conventions no runtime test can
watch everywhere at once: the batched estimation path must never degrade
into scalar per-plan loops, experiments must be seed-reproducible, and model
persistence must flow through the versioned codec.  This package turns those
conventions into machine-checked rules (stdlib :mod:`ast` only — no new
runtime dependencies).

Run it as ``python -m repro.lint`` or ``python -m repro.cli lint``; see
:mod:`repro.lint.rules` for the rule catalogue, and use
:func:`~repro.lint.context.hot_path` to opt a single function into the
hot-path rules without the module pragma.
"""

from __future__ import annotations

from repro.lint.context import HOT_PATH_PRAGMA, hot_path
from repro.lint.engine import LintReport, check_source, run_lint
from repro.lint.findings import LintFinding
from repro.lint.rules import RULES, rule_ids

__all__ = [
    "LintFinding",
    "LintReport",
    "RULES",
    "HOT_PATH_PRAGMA",
    "check_source",
    "hot_path",
    "rule_ids",
    "run_lint",
]
