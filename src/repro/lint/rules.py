"""The repo-invariant rules of ``repro lint``.

Each rule encodes one convention the estimation library relies on but the
language cannot enforce:

=========  ======================  ====================================================
Rule id    Slug                    Invariant
=========  ======================  ====================================================
REPRO-R1   no-scalar-hot-loop      no per-plan scalar predict/estimate loops on the
                                   hot path (module pragma / ``@hot_path`` opt-in)
REPRO-R2   seeded-rng-only         workload, experiment and benchmark code draws
                                   randomness only from explicitly seeded generators
REPRO-R3   codec-only-persistence  pickle / numpy persistence happens only inside
                                   ``core/serialization.py`` (the versioned codec)
REPRO-R4   no-float-equality       no ``==`` / ``!=`` against floats in tree-split
                                   and model-selection code
REPRO-R5   no-silent-except        no bare / over-broad ``except`` that swallows the
                                   error without raising or logging
REPRO-R6   dtype-contract          numpy array constructors on the hot path pass an
                                   explicit ``dtype=``
=========  ======================  ====================================================

Rules are pure functions of a :class:`~repro.lint.context.ModuleContext`;
suppression (``# repro: noqa[...]``) and baseline filtering happen in the
engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import LintFinding

__all__ = ["Rule", "RULES", "rule_ids", "run_rules"]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    slug: str
    summary: str
    check: Callable[[ModuleContext], Iterator[LintFinding]]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


class ImportMap:
    """Resolves names in one module back to canonical dotted module paths.

    Tracks ``import x [as y]`` and ``from x import y [as z]`` so a call like
    ``np.random.rand(...)`` resolves to ``numpy.random.rand`` regardless of
    aliasing.  Only module-level resolution is attempted; names that are not
    rooted in an import resolve to ``None``.
    """

    #: Module aliases normalised to their canonical names.
    _CANONICAL = {"np": "numpy"}

    def __init__(self, tree: ast.Module) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._names[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._names[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, if import-rooted."""
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self._names.get(current.id)
        if root is None:
            return None
        parts = root.split(".")
        parts[0] = self._CANONICAL.get(parts[0], parts[0])
        return ".".join(parts + list(reversed(chain)))


def _finding(
    ctx: ModuleContext, node: ast.AST, rule_id: str, message: str
) -> LintFinding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return LintFinding(
        path=ctx.path,
        line=line,
        col=col + 1,
        rule=rule_id,
        message=message,
        source_line=ctx.source_line(line),
    )


# ---------------------------------------------------------------------------
# REPRO-R1 · no-scalar-hot-loop
# ---------------------------------------------------------------------------

#: Per-instance estimation entry points that are scalar by contract; any
#: call to one of these inside a hot loop is a per-item Python loop.  Their
#: batched counterparts (predict_batch, predict_queries, estimate_workload,
#: select_batch, estimate_feature_rows) are the calls hot loops should make.
_ALWAYS_SCALAR_CALLS = frozenset(
    {
        "predict_one",
        "_predict_one",
        "predict_scalar",
        "predict_operator",
        "predict_query",
        "estimate",
        "estimate_plan",
        "estimate_query",
        "estimate_operator",
        "select",
    }
)

#: Names that are row-batched in the ml layer (``model.predict(matrix)``)
#: but scalar when driven once per plan/row; these only fire when the
#: enclosing loop visibly iterates over plans, queries, operators or rows.
_AMBIGUOUS_CALLS = frozenset({"predict", "estimate_operators"})

#: Loop-target names that mark a loop as per-plan / per-row iteration.
_PER_ITEM_TARGETS = frozenset(
    {
        "plan", "plans", "query", "queries", "q", "op", "ops", "operator",
        "operators", "row", "rows", "observed", "instance", "instances",
        "sample", "samples",
    }
)

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)


def _loop_body_nodes(loop: ast.AST) -> Iterator[ast.AST]:
    if isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
        for stmt in loop.body:
            yield from ast.walk(stmt)
    elif isinstance(loop, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        yield from ast.walk(loop.elt)
    elif isinstance(loop, ast.DictComp):
        yield from ast.walk(loop.key)
        yield from ast.walk(loop.value)


def _target_names(node: ast.expr | None) -> Iterator[str]:
    if node is None:
        return
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name):
            yield leaf.id


def _loop_is_per_item(loop: ast.AST) -> bool:
    """True when the loop's targets name plans/queries/operators/rows."""
    targets: list[ast.expr] = []
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        targets = [loop.target]
    elif isinstance(loop, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        targets = [gen.target for gen in loop.generators]
    for target in targets:
        if any(name.lower() in _PER_ITEM_TARGETS for name in _target_names(target)):
            return True
    return False


def _check_scalar_hot_loop(ctx: ModuleContext) -> Iterator[LintFinding]:
    if not ctx.is_hot and not ctx.hot_ranges:
        return
    for loop in ast.walk(ctx.tree):
        if not isinstance(loop, _LOOP_NODES):
            continue
        if not ctx.in_hot_scope(getattr(loop, "lineno", 0)):
            continue
        per_item = _loop_is_per_item(loop)
        for node in _loop_body_nodes(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in _ALWAYS_SCALAR_CALLS or (
                per_item and name in _AMBIGUOUS_CALLS
            ):
                yield _finding(
                    ctx,
                    node,
                    "REPRO-R1",
                    f"scalar '{name}()' call inside a hot-path loop; use the "
                    "batched API (predict_batch / estimate_workload / "
                    "select_batch) so estimation stays vectorised",
                )


# ---------------------------------------------------------------------------
# REPRO-R2 · seeded-rng-only
# ---------------------------------------------------------------------------

#: RNG constructors that are fine *when given an explicit seed argument*.
_SEEDABLE = frozenset(
    {"Random", "SystemRandom", "Generator", "default_rng", "SeedSequence",
     "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState"}
)


def _check_seeded_rng(ctx: ModuleContext) -> Iterator[LintFinding]:
    if not ctx.rng_zone:
        return
    imports = ImportMap(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve(node.func)
        if resolved is None:
            continue
        if not (resolved.startswith("random.") or resolved.startswith("numpy.random.")):
            continue
        leaf = resolved.rsplit(".", 1)[1]
        if leaf in _SEEDABLE:
            if not node.args and not node.keywords:
                yield _finding(
                    ctx,
                    node,
                    "REPRO-R2",
                    f"'{resolved}()' without a seed; experiments must be "
                    "reproducible — pass an explicit seed "
                    "(e.g. repro.data.rng.make_rng)",
                )
            continue
        yield _finding(
            ctx,
            node,
            "REPRO-R2",
            f"call to global RNG '{resolved}'; draw from an explicitly "
            "seeded numpy Generator (repro.data.rng.make_rng) instead",
        )


# ---------------------------------------------------------------------------
# REPRO-R3 · codec-only-persistence
# ---------------------------------------------------------------------------

_PERSISTENCE_CALLS = frozenset(
    {
        "pickle.load", "pickle.loads", "pickle.dump", "pickle.dumps",
        "pickle.Pickler", "pickle.Unpickler",
        "marshal.load", "marshal.loads", "marshal.dump", "marshal.dumps",
        "numpy.save", "numpy.load", "numpy.savez", "numpy.savez_compressed",
        "numpy.savetxt", "joblib.dump", "joblib.load", "shelve.open",
    }
)


def _check_codec_only_persistence(ctx: ModuleContext) -> Iterator[LintFinding]:
    if ctx.codec_module:
        return
    imports = ImportMap(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve(node.func)
        if resolved in _PERSISTENCE_CALLS:
            yield _finding(
                ctx,
                node,
                "REPRO-R3",
                f"'{resolved}' outside core/serialization.py; persist models "
                "through the versioned CRC-checked codec "
                "(save_estimator / load_estimator / pack_envelope)",
            )


# ---------------------------------------------------------------------------
# REPRO-R4 · no-float-equality
# ---------------------------------------------------------------------------


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


def _check_float_equality(ctx: ModuleContext) -> Iterator[LintFinding]:
    if not ctx.float_zone:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(left) or _is_floatish(right):
                yield _finding(
                    ctx,
                    node,
                    "REPRO-R4",
                    "float equality comparison in split/selection code; use a "
                    "tolerance (math.isclose / np.isclose) or an ordered "
                    "comparison against an epsilon",
                )
                break


# ---------------------------------------------------------------------------
# REPRO-R5 · no-silent-except
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
_LOGGING_CALLS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _BROAD_EXCEPTIONS:
            return True
    return False


def _handler_surfaces_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOGGING_CALLS:
                return True
            if isinstance(func, ast.Name) and func.id in ("print", *_LOGGING_CALLS):
                return True
    return False


def _check_silent_except(ctx: ModuleContext) -> Iterator[LintFinding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_handler(node):
            continue
        if _handler_surfaces_error(node):
            continue
        yield _finding(
            ctx,
            node,
            "REPRO-R5",
            "broad 'except' swallows the error silently; narrow the exception "
            "type, re-raise (e.g. as EstimatorCodecError), or log the fallback",
        )


# ---------------------------------------------------------------------------
# REPRO-R6 · dtype-contract
# ---------------------------------------------------------------------------

#: Constructor -> index of the positional ``dtype`` parameter.
_DTYPE_CONSTRUCTORS = {
    "numpy.array": 1,
    "numpy.asarray": 1,
    "numpy.asanyarray": 1,
    "numpy.empty": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.full": 2,
    "numpy.arange": 4,
}


def _check_dtype_contract(ctx: ModuleContext) -> Iterator[LintFinding]:
    if not ctx.is_hot and not ctx.hot_ranges:
        return
    imports = ImportMap(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not ctx.in_hot_scope(getattr(node, "lineno", 0)):
            continue
        resolved = imports.resolve(node.func)
        if resolved not in _DTYPE_CONSTRUCTORS:
            continue
        dtype_position = _DTYPE_CONSTRUCTORS[resolved]
        has_dtype = len(node.args) > dtype_position or any(
            kw.arg == "dtype" for kw in node.keywords
        )
        if not has_dtype:
            yield _finding(
                ctx,
                node,
                "REPRO-R6",
                f"'{resolved}' on the hot path without an explicit dtype=; "
                "batch-path arrays must pin their dtype (usually np.float64) "
                "so matrices never silently become object or float32 arrays",
            )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULES: tuple[Rule, ...] = (
    Rule(
        "REPRO-R1",
        "no-scalar-hot-loop",
        "no scalar predict/estimate loops in hot-path modules",
        _check_scalar_hot_loop,
    ),
    Rule(
        "REPRO-R2",
        "seeded-rng-only",
        "workload/experiment/benchmark randomness must be explicitly seeded",
        _check_seeded_rng,
    ),
    Rule(
        "REPRO-R3",
        "codec-only-persistence",
        "pickle/numpy persistence only inside core/serialization.py",
        _check_codec_only_persistence,
    ),
    Rule(
        "REPRO-R4",
        "no-float-equality",
        "no float == / != in tree-split and model-selection code",
        _check_float_equality,
    ),
    Rule(
        "REPRO-R5",
        "no-silent-except",
        "no broad except that swallows errors without raising or logging",
        _check_silent_except,
    ),
    Rule(
        "REPRO-R6",
        "dtype-contract",
        "hot-path numpy constructors must pass an explicit dtype=",
        _check_dtype_contract,
    ),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.rule_id for rule in RULES)


def run_rules(ctx: ModuleContext) -> list[LintFinding]:
    """All raw findings of every rule on one module (no suppression).

    Deduplicated: nested loops can report the same call once per enclosing
    loop, which would double-count one defect.
    """
    findings: list[LintFinding] = []
    for rule in RULES:
        findings.extend(rule.check(ctx))
    return sorted(set(findings))
