"""Deterministic random-number helpers.

All stochastic components of the simulator (parameter generation, execution
noise, optimizer error) draw from :class:`numpy.random.Generator` instances
created through this module so that every experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng"]


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it does
    not rely on ``hash()``), so two components that derive their seed from
    the same labels always observe the same stream.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    names:
        Arbitrary labels (strings, ints, ...) identifying the component.

    Returns
    -------
    int
        A 63-bit non-negative integer suitable for seeding numpy.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"\x00")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(base_seed: int, *names: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a named component."""
    return np.random.default_rng(derive_seed(base_seed, *names))
