"""Column value distributions and selectivity arithmetic.

The simulator never materialises rows; instead each column carries a
*distribution* object from which we can answer the two questions query
processing needs:

* what fraction of rows satisfies an equality predicate on a given value
  (by frequency rank), and
* what fraction of rows satisfies a range predicate covering a given
  fraction of the value domain.

The distinction between *domain fraction* (how much of the value domain a
predicate covers) and *row fraction* (how many rows it actually selects) is
what creates cardinality-estimation error under skew: the optimizer's
uniformity assumption equates the two, whereas the true row fraction under a
Zipf distribution can be much larger or smaller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Distribution",
    "UniformDistribution",
    "ZipfDistribution",
    "NormalDistribution",
    "make_distribution",
]


class Distribution:
    """Base class for column value distributions.

    A distribution describes ``n_values`` distinct values.  Values are
    identified by *rank* ``0 .. n_values - 1`` in decreasing order of
    frequency.  Range predicates are expressed as a covered fraction of the
    value domain ``q in [0, 1]`` anchored either at the frequent head of the
    domain or at its infrequent tail.
    """

    def __init__(self, n_values: int) -> None:
        if n_values < 1:
            raise ValueError(f"n_values must be >= 1, got {n_values}")
        self.n_values = int(n_values)

    # -- row-fraction queries -------------------------------------------------
    def eq_selectivity(self, rank: int) -> float:
        """Fraction of rows carrying the value with frequency rank ``rank``."""
        raise NotImplementedError

    def range_selectivity(self, fraction: float, anchor: str = "head") -> float:
        """Fraction of rows selected by a range covering ``fraction`` of the domain.

        Parameters
        ----------
        fraction:
            Covered fraction of the value domain, clipped to ``[0, 1]``.
        anchor:
            ``"head"`` anchors the range at the most frequent values,
            ``"tail"`` at the least frequent ones.
        """
        raise NotImplementedError

    # -- misc ------------------------------------------------------------------
    def skew_coefficient(self) -> float:
        """A scalar summary of skew (0 for uniform)."""
        return 0.0

    def sample_rank(self, rng: np.random.Generator) -> int:
        """Sample a value rank proportionally to its frequency."""
        raise NotImplementedError

    def _clip_fraction(self, fraction: float) -> float:
        return float(min(1.0, max(0.0, fraction)))


class UniformDistribution(Distribution):
    """All distinct values are equally frequent."""

    def eq_selectivity(self, rank: int) -> float:
        return 1.0 / self.n_values

    def range_selectivity(self, fraction: float, anchor: str = "head") -> float:
        return self._clip_fraction(fraction)

    def sample_rank(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.n_values))


class ZipfDistribution(Distribution):
    """Zipf-distributed value frequencies with exponent ``z``.

    ``z = 0`` degenerates to the uniform distribution; the paper's skewed
    TPC-H generator uses ``z = 1`` and ``z = 2``.
    """

    #: Above this many distinct values the cumulative-frequency curve is
    #: approximated analytically instead of materialising every frequency.
    _EXACT_LIMIT = 200_000

    def __init__(self, n_values: int, z: float) -> None:
        super().__init__(n_values)
        if z < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {z}")
        self.z = float(z)
        self._exact = self.n_values <= self._EXACT_LIMIT
        if self._exact:
            ranks = np.arange(1, self.n_values + 1, dtype=np.float64)
            weights = ranks ** (-self.z)
            total = float(weights.sum())
            self._freqs = weights / total
            self._cum = np.cumsum(self._freqs)
        else:
            self._freqs = None
            self._cum = None
            self._harmonic = self._generalized_harmonic(self.n_values, self.z)

    @staticmethod
    def _generalized_harmonic(n: int, z: float) -> float:
        """Approximate the generalized harmonic number ``H_{n,z}``."""
        if z == 1.0:
            return math.log(n) + 0.5772156649015329 + 1.0 / (2 * n)
        if z > 1.0:
            # Converges; integral approximation plus the first term.
            return 1.0 + (1.0 - n ** (1.0 - z)) / (z - 1.0)
        # 0 <= z < 1: dominated by the integral term.
        return (n ** (1.0 - z) - 1.0) / (1.0 - z) + 1.0

    def _cumulative(self, k: int) -> float:
        """Cumulative frequency of the ``k`` most frequent values."""
        if k <= 0:
            return 0.0
        k = min(k, self.n_values)
        if self._exact:
            return float(self._cum[k - 1])
        return self._generalized_harmonic(k, self.z) / self._harmonic

    def eq_selectivity(self, rank: int) -> float:
        rank = int(min(max(rank, 0), self.n_values - 1))
        if self._exact:
            return float(self._freqs[rank])
        harmonic = self._harmonic
        return float((rank + 1) ** (-self.z) / harmonic)

    def range_selectivity(self, fraction: float, anchor: str = "head") -> float:
        fraction = self._clip_fraction(fraction)
        k = int(round(fraction * self.n_values))
        if anchor == "head":
            selectivity = self._cumulative(k)
        elif anchor == "tail":
            selectivity = 1.0 - self._cumulative(self.n_values - k)
        else:
            raise ValueError(f"anchor must be 'head' or 'tail', got {anchor!r}")
        return min(max(selectivity, 0.0), 1.0)

    def skew_coefficient(self) -> float:
        return self.z

    def sample_rank(self, rng: np.random.Generator) -> int:
        u = float(rng.random())
        if self._exact:
            return int(np.searchsorted(self._cum, u, side="left"))
        # Inverse-CDF search on the analytic cumulative curve.
        lo, hi = 1, self.n_values
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative(mid) < u:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1


class NormalDistribution(Distribution):
    """Discretised (truncated) normal distribution over the value domain.

    Used by the "real" workload schemas where numeric measures cluster
    around a mean rather than following a power law.
    """

    def __init__(self, n_values: int, relative_std: float = 0.2) -> None:
        super().__init__(n_values)
        if relative_std <= 0:
            raise ValueError("relative_std must be positive")
        self.relative_std = float(relative_std)
        # Discretise a normal bell over the ranks; centre mass at rank 0 so
        # "head" ranges behave like the Zipf case (most selective values
        # first).
        ranks = np.arange(self.n_values, dtype=np.float64)
        std = max(self.relative_std * self.n_values, 1.0)
        weights = np.exp(-0.5 * (ranks / std) ** 2)
        self._freqs = weights / weights.sum()
        self._cum = np.cumsum(self._freqs)

    def eq_selectivity(self, rank: int) -> float:
        rank = int(min(max(rank, 0), self.n_values - 1))
        return float(self._freqs[rank])

    def range_selectivity(self, fraction: float, anchor: str = "head") -> float:
        fraction = self._clip_fraction(fraction)
        k = int(round(fraction * self.n_values))
        if k <= 0:
            return 0.0
        if anchor == "head":
            return float(self._cum[min(k, self.n_values) - 1])
        if anchor == "tail":
            covered = self.n_values - k
            if covered <= 0:
                return 1.0
            return float(1.0 - self._cum[covered - 1])
        raise ValueError(f"anchor must be 'head' or 'tail', got {anchor!r}")

    def skew_coefficient(self) -> float:
        # A rough comparable scalar: ratio of the modal frequency to uniform.
        return float(self._freqs[0] * self.n_values - 1.0)

    def sample_rank(self, rng: np.random.Generator) -> int:
        u = float(rng.random())
        return int(np.searchsorted(self._cum, u, side="left"))


@dataclass(frozen=True)
class _DistributionSpec:
    kind: str
    n_values: int
    param: float


def make_distribution(kind: str, n_values: int, param: float = 0.0) -> Distribution:
    """Factory used by schema builders.

    Parameters
    ----------
    kind:
        ``"uniform"``, ``"zipf"`` or ``"normal"``.
    n_values:
        Number of distinct values in the column.
    param:
        Zipf exponent for ``"zipf"``, relative standard deviation for
        ``"normal"``; ignored for ``"uniform"``.
    """
    kind = kind.lower()
    if kind == "uniform":
        return UniformDistribution(n_values)
    if kind == "zipf":
        if param <= 0:
            return UniformDistribution(n_values)
        return ZipfDistribution(n_values, param)
    if kind == "normal":
        return NormalDistribution(n_values, param if param > 0 else 0.2)
    raise ValueError(f"unknown distribution kind: {kind!r}")
