"""Value-distribution substrate.

This sub-package models how values are distributed inside columns of the
synthetic databases.  The paper's workloads are generated over *skewed*
TPC-H data (Zipf factor ``Z``); the skew is what creates large variance in
resource consumption within a single query template, and it is also the main
source of cardinality-estimation error for the optimizer (which assumes
uniformity).  Everything downstream — true cardinalities, optimizer
estimates, and therefore every feature value — is derived from the
distributions defined here.
"""

from repro.data.distributions import (
    Distribution,
    NormalDistribution,
    UniformDistribution,
    ZipfDistribution,
    make_distribution,
)
from repro.data.rng import derive_seed, make_rng

__all__ = [
    "Distribution",
    "NormalDistribution",
    "UniformDistribution",
    "ZipfDistribution",
    "make_distribution",
    "derive_seed",
    "make_rng",
]
