"""SVM: kernel regression per operator family (paper Section 7, technique 5).

The paper evaluates WEKA's SVM regression with several kernels and reports
the best-performing kernel per experiment family (PolyKernel for CPU,
RBFKernel for I/O).  The substitute kernel machine is described in
:mod:`repro.ml.svr`; this baseline wires it up per operator family, with the
kernel configurable so the experiment harness can report the same
"best kernel" convention as the paper.
"""

from __future__ import annotations

from repro.baselines.base import PerOperatorBaseline
from repro.features.definitions import OperatorFamily, features_for_family
from repro.ml.kernels import make_kernel
from repro.ml.svr import KernelSVR

__all__ = ["SVMBaseline"]


class SVMBaseline(PerOperatorBaseline):
    """Per-family kernel regression (SVM-style)."""

    name = "SVM"

    def __init__(self, kernel: str = "poly", **kernel_params: float) -> None:
        super().__init__()
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.name = f"SVM({kernel.upper()[:4]})"

    def family_features(self, family: OperatorFamily) -> tuple[str, ...]:
        # Kernel machines need numeric features only.
        return tuple(f for f in features_for_family(family) if f != "OUTPUTUSAGE")

    def make_model(self, family: OperatorFamily) -> KernelSVR:
        return KernelSVR(kernel=make_kernel(self.kernel_name, **self.kernel_params))
