"""The SCALING technique wrapped behind the common baseline interface.

This is a thin adapter over :class:`repro.core.estimator.ResourceEstimator`
so that the experiment harness can fit and evaluate the paper's technique
exactly like every competitor (same training queries, same feature mode,
same query-level error metrics).
"""

from __future__ import annotations

from repro.baselines.base import BaselineEstimator
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.workloads.datasets import build_training_data
from repro.workloads.runner import ObservedQuery

__all__ = ["ScalingTechnique"]


class ScalingTechnique(BaselineEstimator):
    """MART + scaling functions + online model selection (the paper's method)."""

    name = "SCALING"

    def __init__(
        self,
        mart_config: MARTConfig | None = None,
        trainer_config: TrainerConfig | None = None,
    ) -> None:
        if trainer_config is None:
            trainer_config = TrainerConfig(mart=mart_config or MARTConfig())
        self.trainer_config = trainer_config
        self.resource = "cpu"
        self.mode: FeatureMode = FeatureMode.EXACT
        self.estimator_: ResourceEstimator | None = None

    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> "ScalingTechnique":
        self.resource = resource
        self.mode = mode
        training_data = build_training_data(train_queries, mode)
        self.estimator_ = ResourceEstimator.train(
            training_data,
            feature_mode=mode,
            resources=(resource,),
            config=self.trainer_config,
        )
        return self

    def predict_query(self, query: ObservedQuery) -> float:
        if self.estimator_ is None:
            raise RuntimeError("ScalingTechnique has not been fitted")
        total = 0.0
        for op in query.operators:
            total += self.estimator_._estimate_features(  # noqa: SLF001 - internal reuse
                op.family, op.features(self.mode), self.resource
            )
        return float(total)

    @property
    def estimator(self) -> ResourceEstimator:
        """The trained underlying estimator (for pipeline-level estimates)."""
        if self.estimator_ is None:
            raise RuntimeError("ScalingTechnique has not been fitted")
        return self.estimator_
