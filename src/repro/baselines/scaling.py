"""The SCALING technique wrapped behind the common baseline interface.

This is a thin adapter over :class:`repro.core.estimator.ResourceEstimator`
so that the experiment harness can fit and evaluate the paper's technique
exactly like every competitor (same training queries, same feature mode,
same query-level error metrics).  Query-level prediction goes through the
estimator's batched per-family path: one matrix per operator family across
the whole query list, not one model call per operator.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineEstimator
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.workloads.datasets import build_training_data, group_operator_features
from repro.workloads.runner import ObservedQuery

__all__ = ["ScalingTechnique"]


class ScalingTechnique(BaselineEstimator):
    """MART + scaling functions + online model selection (the paper's method)."""

    name = "SCALING"

    def __init__(
        self,
        mart_config: MARTConfig | None = None,
        trainer_config: TrainerConfig | None = None,
    ) -> None:
        if trainer_config is None:
            trainer_config = TrainerConfig(mart=mart_config or MARTConfig())
        self.trainer_config = trainer_config
        self.resource = "cpu"
        self.mode: FeatureMode = FeatureMode.EXACT
        self.estimator_: ResourceEstimator | None = None

    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> "ScalingTechnique":
        self.resource = resource
        self.mode = mode
        training_data = build_training_data(train_queries, mode)
        self.estimator_ = ResourceEstimator.train(
            training_data,
            feature_mode=mode,
            resources=(resource,),
            config=self.trainer_config,
        )
        return self

    def predict_queries(self, queries: list[ObservedQuery]) -> np.ndarray:
        """Batched query-level estimates: one model-set pass per family."""
        if self.estimator_ is None:
            raise RuntimeError("ScalingTechnique has not been fitted")
        totals = np.zeros(len(queries), dtype=np.float64)
        for family, (rows, owners) in group_operator_features(queries, self.mode).items():
            predictions = self.estimator_.estimate_feature_rows(family, rows, self.resource)
            totals += np.bincount(owners, weights=predictions, minlength=len(queries))
        return totals

    def predict_query(self, query: ObservedQuery) -> float:
        if self.estimator_ is None:
            raise RuntimeError("ScalingTechnique has not been fitted")
        return float(self.predict_queries([query])[0])

    @property
    def estimator(self) -> ResourceEstimator:
        """The trained underlying estimator (for pipeline-level estimates)."""
        if self.estimator_ is None:
            raise RuntimeError("ScalingTechnique has not been fitted")
        return self.estimator_
