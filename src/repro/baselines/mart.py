"""MART: the paper's base learner *without* the scaling component.

This baseline isolates the contribution of the scaling framework: identical
features, identical boosted-tree learner, but a single default model per
operator family and no extrapolation mechanism.  In the paper it fits the
in-distribution experiments extremely well but collapses whenever test
feature values exceed the training range (Figure 3, Tables 5–9).
"""

from __future__ import annotations

from repro.baselines.base import PerOperatorBaseline
from repro.features.definitions import OperatorFamily
from repro.ml.mart import MARTConfig, MARTRegressor

__all__ = ["MARTBaseline"]


class MARTBaseline(PerOperatorBaseline):
    """Per-family MART models over the paper's features, no scaling."""

    name = "MART"

    def __init__(self, mart_config: MARTConfig | None = None) -> None:
        super().__init__()
        self.mart_config = mart_config or MARTConfig()

    def make_model(self, family: OperatorFamily) -> MARTRegressor:
        return MARTRegressor(self.mart_config)
