"""Competing estimation techniques evaluated in the paper (Section 7).

Every technique implements the same interface
(:class:`~repro.baselines.base.BaselineEstimator`): fit on a list of
observed training queries for one resource and one feature mode, then
predict query-level resource usage for unseen queries.  The SCALING
technique itself is wrapped behind the same interface so the experiment
harness can treat all seven techniques uniformly.
"""

from repro.baselines.akdere import AkdereOperatorBaseline
from repro.baselines.base import BaselineEstimator, PerOperatorBaseline
from repro.baselines.linear import LinearBaseline
from repro.baselines.mart import MARTBaseline
from repro.baselines.opt import OptimizerBaseline
from repro.baselines.regtree import RegTreeBaseline
from repro.baselines.scaling import ScalingTechnique
from repro.baselines.svm import SVMBaseline

__all__ = [
    "AkdereOperatorBaseline",
    "BaselineEstimator",
    "PerOperatorBaseline",
    "LinearBaseline",
    "MARTBaseline",
    "OptimizerBaseline",
    "RegTreeBaseline",
    "ScalingTechnique",
    "SVMBaseline",
]


def standard_techniques(fast: bool = True, mart_config=None) -> list[BaselineEstimator]:
    """The full line-up of techniques compared in the CPU experiments.

    Thin wrapper over :func:`repro.api.registry.standard_lineup` — every
    technique is constructed through the unified estimator registry, so the
    harness and the registry can never disagree on the line-up.  (Imported
    lazily: the registry imports this package.)
    """
    from repro.api.registry import standard_lineup

    return standard_lineup(fast=fast, mart_config=mart_config)
