"""The operator-level model of Akdere et al. [8] (ICDE 2012).

Key characteristics reproduced here, following the paper's description of
the competitor:

* **linear regression per operator type** over a compact feature set
  (estimated input/output cardinalities, table size and page counts) with
  greedy feature selection;
* **bottom-up propagation**: instead of predicting each operator in
  isolation and summing, the model for an operator predicts the *cumulative*
  resource usage of its subtree and receives the (estimated) cumulative
  usage of its children as an additional input feature — the adaptation the
  paper makes is to propagate cumulative resource usage rather than
  start-up/execution times.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineEstimator
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.ml.linear import LinearRegressor, greedy_feature_selection
from repro.workloads.runner import ObservedOperator, ObservedQuery

__all__ = ["AkdereOperatorBaseline"]

#: The compact per-operator feature set of [8] (cardinality and size driven).
_AKDERE_FEATURES: tuple[str, ...] = (
    "COUT",
    "CIN1",
    "CIN2",
    "SOUTAVG",
    "TSIZE",
    "PAGES",
    "INDEXDEPTH",
)

#: Name of the synthetic feature carrying the children's cumulative estimate.
_CHILD_SUM_FEATURE = "CHILDREN_CUMULATIVE"


class AkdereOperatorBaseline(BaselineEstimator):
    """Operator-level linear models with bottom-up cumulative propagation."""

    name = "[8]"
    min_training_rows = 15

    def __init__(self) -> None:
        self.resource = "cpu"
        self.mode: FeatureMode = FeatureMode.EXACT
        self.models_: dict[OperatorFamily, LinearRegressor] = {}
        self.selected_: dict[OperatorFamily, list[int]] = {}
        self.per_tuple_fallback_: float = 0.0

    # -- dataset assembly --------------------------------------------------------------------
    @staticmethod
    def _children_of(query: ObservedQuery) -> dict[int, list[int]]:
        """node_id -> node_ids of the children, from the stored plan."""
        return {
            op.node_id: [child.node_id for child in op.children]
            for op in query.plan.operators()
        }

    def _cumulative_actuals(self, query: ObservedQuery) -> dict[int, float]:
        """Actual cumulative (subtree) resource usage per operator."""
        by_node = {op.node_id: op for op in query.operators}
        children = self._children_of(query)
        cumulative: dict[int, float] = {}

        def visit(node_id: int) -> float:
            if node_id in cumulative:
                return cumulative[node_id]
            own = by_node[node_id].actual(self.resource)
            total = own + sum(visit(child) for child in children.get(node_id, []))
            cumulative[node_id] = total
            return total

        for node_id in by_node:
            visit(node_id)
        return cumulative

    def _vector(self, op: ObservedOperator, child_sum: float) -> np.ndarray:
        features = op.features(self.mode)
        values = [features.get(name, 0.0) for name in _AKDERE_FEATURES]
        values.append(child_sum)
        return np.asarray(values, dtype=np.float64)

    # -- fitting -----------------------------------------------------------------------------------
    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> "AkdereOperatorBaseline":
        self.resource = resource
        self.mode = mode
        rows: dict[OperatorFamily, list[np.ndarray]] = {}
        targets: dict[OperatorFamily, list[float]] = {}
        per_tuple: list[float] = []
        for query in train_queries:
            cumulative = self._cumulative_actuals(query)
            children = self._children_of(query)
            for op in query.operators:
                child_sum = sum(cumulative[c] for c in children.get(op.node_id, []))
                rows.setdefault(op.family, []).append(self._vector(op, child_sum))
                targets.setdefault(op.family, []).append(cumulative[op.node_id])
                out_rows = max(op.features(mode).get("COUT", 0.0), 1.0)
                per_tuple.append(op.actual(resource) / out_rows)
        self.per_tuple_fallback_ = float(np.median(per_tuple)) if per_tuple else 0.0

        self.models_ = {}
        self.selected_ = {}
        for family, vectors in rows.items():
            if len(vectors) < self.min_training_rows:
                continue
            matrix = np.vstack(vectors)
            target_arr = np.asarray(targets[family], dtype=np.float64)
            selected = greedy_feature_selection(matrix, target_arr, max_features=5)
            # The children-cumulative feature is central to the propagation
            # mechanism of [8]; always keep it.
            child_index = matrix.shape[1] - 1
            if child_index not in selected:
                selected.append(child_index)
            model = LinearRegressor()
            model.fit(matrix[:, selected], target_arr)
            self.models_[family] = model
            self.selected_[family] = selected
        return self

    # -- prediction ----------------------------------------------------------------------------------
    def predict_query(self, query: ObservedQuery) -> float:
        by_node = {op.node_id: op for op in query.operators}
        children = self._children_of(query)
        estimates: dict[int, float] = {}

        def visit(node_id: int) -> float:
            if node_id in estimates:
                return estimates[node_id]
            op = by_node[node_id]
            child_sum = sum(visit(c) for c in children.get(node_id, []))
            model = self.models_.get(op.family)
            if model is None:
                own = self.per_tuple_fallback_ * max(op.features(self.mode).get("COUT", 0.0), 0.0)
                estimate = child_sum + own
            else:
                vector = self._vector(op, child_sum)[self.selected_[op.family]]
                estimate = float(model.predict(vector.reshape(1, -1))[0])
                # The cumulative estimate of a subtree can never be smaller
                # than that of its children.
                estimate = max(estimate, child_sum)
            estimates[node_id] = estimate
            return estimate

        return float(visit(query.plan.root.node_id))
