"""Common interface and shared machinery of the estimation techniques."""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.definitions import FeatureMode, OperatorFamily, features_for_family
from repro.workloads.runner import ObservedOperator, ObservedQuery

__all__ = ["BaselineEstimator", "PerOperatorBaseline"]


class BaselineEstimator:
    """Interface every estimation technique implements.

    A technique is fitted for one resource (``"cpu"`` or ``"io"``) and one
    feature mode (exact or optimizer-estimated) at a time, which mirrors how
    the paper runs each experiment.
    """

    #: Display name used in the experiment tables.
    name: str = "baseline"

    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> "BaselineEstimator":
        raise NotImplementedError

    def predict_query(self, query: ObservedQuery) -> float:
        """Estimate the query-level resource usage of one observed query."""
        raise NotImplementedError

    def predict_queries(self, queries: list[ObservedQuery]) -> np.ndarray:
        # Generic fallback for techniques without a native batch path; the
        # per-operator baselines override this with one family-batched pass.
        return np.array(
            [self.predict_query(q) for q in queries],  # repro: noqa[REPRO-R1]
            dtype=np.float64,
        )


@dataclass
class _FamilyFallback:
    """Per-output-tuple fallback for families absent from the training data."""

    per_tuple: float

    def predict(self, features: dict[str, float]) -> float:
        rows = max(features.get("COUT", 0.0), features.get("CIN1", 0.0))
        return max(self.per_tuple * rows, 0.0)

    def predict_batch(self, cout: np.ndarray, cin1: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict` over aligned COUT/CIN1 arrays."""
        rows = np.maximum(
            np.asarray(cout, dtype=np.float64), np.asarray(cin1, dtype=np.float64)
        )
        return np.maximum(self.per_tuple * rows, 0.0)


class PerOperatorBaseline(BaselineEstimator):
    """Shared scaffolding for techniques that train one regressor per family.

    Subclasses implement :meth:`make_model` (a fresh regressor exposing
    ``fit(X, y)`` / ``predict(X)``) and may override :meth:`family_features`
    to restrict the feature set.  The query-level estimate is the sum of the
    per-operator estimates, as in the paper.
    """

    #: Minimum number of operator observations required to fit a family model.
    min_training_rows: int = 15

    def __init__(self) -> None:
        self.resource: str = "cpu"
        self.mode: FeatureMode = FeatureMode.EXACT
        self.models_: dict[OperatorFamily, object] = {}
        self.feature_names_: dict[OperatorFamily, tuple[str, ...]] = {}
        self.fallback_: _FamilyFallback = _FamilyFallback(per_tuple=0.0)

    # -- hooks for subclasses ------------------------------------------------------------------
    def make_model(self, family: OperatorFamily):
        """Return an unfitted regressor for one operator family."""
        raise NotImplementedError

    def family_features(self, family: OperatorFamily) -> tuple[str, ...]:
        """Feature names used for a family (defaults to the paper's full set)."""
        return features_for_family(family)

    # -- fitting ----------------------------------------------------------------------------------
    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> "PerOperatorBaseline":
        self.resource = resource
        self.mode = mode
        self.models_ = {}
        self.feature_names_ = {}

        grouped: dict[OperatorFamily, list[ObservedOperator]] = {}
        per_tuple_rates: list[float] = []
        for query in train_queries:
            for op in query.operators:
                grouped.setdefault(op.family, []).append(op)
                rows = max(op.features(mode).get("COUT", 0.0), 1.0)
                per_tuple_rates.append(op.actual(resource) / rows)
        self.fallback_ = _FamilyFallback(
            per_tuple=float(np.median(per_tuple_rates)) if per_tuple_rates else 0.0
        )

        for family, operators in grouped.items():
            if len(operators) < self.min_training_rows:
                continue
            names = self.family_features(family)
            matrix = np.array(
                [[op.features(mode).get(n, 0.0) for n in names] for op in operators],
                dtype=np.float64,
            )
            targets = np.array([op.actual(resource) for op in operators], dtype=np.float64)
            names, matrix = self._select_features(family, names, matrix, targets)
            model = self.make_model(family)
            model.fit(matrix, targets)
            self.models_[family] = model
            self.feature_names_[family] = names
        return self

    def _select_features(
        self,
        family: OperatorFamily,
        names: tuple[str, ...],
        matrix: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[tuple[str, ...], np.ndarray]:
        """Optional feature-selection hook (identity by default)."""
        return names, matrix

    # -- prediction ----------------------------------------------------------------------------------
    def predict_operators(self, operators: list[ObservedOperator]) -> np.ndarray:
        """Batched per-operator estimates: one regressor call per family."""
        estimates = np.zeros(len(operators), dtype=np.float64)
        grouped: dict[OperatorFamily, list[int]] = {}
        for index, op in enumerate(operators):
            grouped.setdefault(op.family, []).append(index)
        for family, indices in grouped.items():
            model = self.models_.get(family)
            if model is None:
                cardinalities = np.array(
                    [
                        (
                            operators[i].features(self.mode).get("COUT", 0.0),
                            operators[i].features(self.mode).get("CIN1", 0.0),
                        )
                        for i in indices
                    ],
                    dtype=np.float64,
                ).reshape(len(indices), 2)
                estimates[indices] = self.fallback_.predict_batch(
                    cardinalities[:, 0], cardinalities[:, 1]
                )
                continue
            names = self.feature_names_[family]
            matrix = np.array(
                [[operators[i].features(self.mode).get(n, 0.0) for n in names] for i in indices],
                dtype=np.float64,
            )
            predicted = np.maximum(
                np.asarray(model.predict(matrix), dtype=np.float64), 0.0
            )
            # Sanitize: a regressor fed degenerate features can emit NaN/inf;
            # those rows fall back to the per-tuple rate instead of poisoning
            # the query-level sums.
            broken = ~np.isfinite(predicted)
            if broken.any():
                cardinalities = np.array(
                    [
                        (
                            operators[i].features(self.mode).get("COUT", 0.0),
                            operators[i].features(self.mode).get("CIN1", 0.0),
                        )
                        for i in np.asarray(indices, dtype=np.int64)[broken]
                    ],
                    dtype=np.float64,
                ).reshape(int(broken.sum()), 2)
                predicted[broken] = self.fallback_.predict_batch(
                    cardinalities[:, 0], cardinalities[:, 1]
                )
            estimates[indices] = predicted
        return estimates

    def predict_operator(self, op: ObservedOperator) -> float:
        return float(self.predict_operators([op])[0])

    def predict_query(self, query: ObservedQuery) -> float:
        return float(self.predict_operators(query.operators).sum())

    def predict_queries(self, queries: list[ObservedQuery]) -> np.ndarray:
        operators = [op for query in queries for op in query.operators]
        owners = np.repeat(
            np.arange(len(queries), dtype=np.int64),
            [len(query.operators) for query in queries],
        )
        per_operator = self.predict_operators(operators)
        return np.bincount(owners, weights=per_operator, minlength=len(queries))
