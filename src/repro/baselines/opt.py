"""OPT: adjusted optimizer cost estimates (paper Section 7, technique 1).

The optimizer's cost units are not measured in milliseconds or page counts,
so OPT maps them to the target resource by a per-operator-type adjustment
factor fitted on the training data (the factor minimising the L2 error
between ``factor x cost`` and the observed usage — the slope of the
regression line in the paper's Figure 1).  OPT always uses the optimizer's
own estimated cardinalities; it therefore only participates in the
"optimizer-estimated features" experiments.
"""

from __future__ import annotations

import numpy as np

from repro.features.definitions import FeatureMode, OperatorFamily
from repro.baselines.base import BaselineEstimator
from repro.workloads.runner import ObservedQuery

__all__ = ["OptimizerBaseline"]


class OptimizerBaseline(BaselineEstimator):
    """Optimizer cost x per-operator-type adjustment factor."""

    name = "OPT"

    def __init__(self) -> None:
        self.resource = "cpu"
        self.factors_: dict[OperatorFamily, float] = {}
        self.global_factor_: float = 1.0

    # -- helpers ---------------------------------------------------------------------------
    @staticmethod
    def _operator_cost(query: ObservedQuery, node_id: int, resource: str) -> float:
        """The optimizer's cost estimate for one operator and resource."""
        for op in query.plan.operators():
            if op.node_id == node_id:
                if resource == "cpu":
                    return float(op.est_cpu_cost)
                return float(op.est_io_cost)
        return 0.0

    # -- fitting -----------------------------------------------------------------------------
    def fit(
        self,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode = FeatureMode.ESTIMATED,
    ) -> "OptimizerBaseline":
        self.resource = resource
        costs: dict[OperatorFamily, list[float]] = {}
        actuals: dict[OperatorFamily, list[float]] = {}
        all_costs: list[float] = []
        all_actuals: list[float] = []
        for query in train_queries:
            for op in query.operators:
                cost = self._operator_cost(query, op.node_id, resource)
                actual = op.actual(resource)
                costs.setdefault(op.family, []).append(cost)
                actuals.setdefault(op.family, []).append(actual)
                all_costs.append(cost)
                all_actuals.append(actual)
        self.factors_ = {}
        for family in costs:
            self.factors_[family] = self._l2_factor(costs[family], actuals[family])
        self.global_factor_ = self._l2_factor(all_costs, all_actuals)
        return self

    @staticmethod
    def _l2_factor(costs: list[float], actuals: list[float]) -> float:
        cost_arr = np.asarray(costs, dtype=np.float64)
        actual_arr = np.asarray(actuals, dtype=np.float64)
        denominator = float(np.sum(cost_arr**2))
        if denominator <= 0:
            return 0.0
        return float(np.sum(cost_arr * actual_arr) / denominator)

    # -- prediction ---------------------------------------------------------------------------
    def predict_query(self, query: ObservedQuery) -> float:
        total = 0.0
        for op in query.operators:
            cost = self._operator_cost(query, op.node_id, self.resource)
            factor = self.factors_.get(op.family, self.global_factor_)
            total += factor * cost
        return float(max(total, 0.0))
