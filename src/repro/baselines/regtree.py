"""REGTREE: boosted piecewise-linear trees (transform-regression stand-in).

Mirrors the paper's own stand-in for the transform-regression approach of
Zhang et al. (XML cost estimation): a boosted sequence of shallow trees with
one-feature linear regressions at the leaves (see
:mod:`repro.ml.transform_regression`), trained per operator family on the
paper's feature set.
"""

from __future__ import annotations

from repro.baselines.base import PerOperatorBaseline
from repro.features.definitions import OperatorFamily
from repro.ml.transform_regression import TransformConfig, TransformRegressor

__all__ = ["RegTreeBaseline"]


class RegTreeBaseline(PerOperatorBaseline):
    """Per-family boosted piecewise-linear regression."""

    name = "REGTREE"

    def __init__(self, config: TransformConfig | None = None) -> None:
        super().__init__()
        self.config = config or TransformConfig()

    def make_model(self, family: OperatorFamily) -> TransformRegressor:
        return TransformRegressor(self.config)
