"""LINEAR: per-operator linear regression over the paper's feature set.

Uses the same numeric features as the SCALING technique (Tables 1 and 2) but
a linear model per operator family, with greedy forward feature selection.
Query-level estimates are the sum of operator estimates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PerOperatorBaseline
from repro.features.definitions import OperatorFamily, features_for_family
from repro.ml.linear import LinearRegressor, greedy_feature_selection

__all__ = ["LinearBaseline"]


class LinearBaseline(PerOperatorBaseline):
    """Per-family linear regression with greedy feature selection."""

    name = "LINEAR"

    def __init__(self, max_features: int = 6) -> None:
        super().__init__()
        self.max_features = max_features

    def family_features(self, family: OperatorFamily) -> tuple[str, ...]:
        # The categorical OUTPUTUSAGE feature is meaningless in a linear
        # model; every numeric feature of the paper is a candidate.
        return tuple(f for f in features_for_family(family) if f != "OUTPUTUSAGE")

    def make_model(self, family: OperatorFamily) -> LinearRegressor:
        return LinearRegressor()

    def _select_features(
        self,
        family: OperatorFamily,
        names: tuple[str, ...],
        matrix: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[tuple[str, ...], np.ndarray]:
        selected = greedy_feature_selection(matrix, targets, max_features=self.max_features)
        selected_names = tuple(names[i] for i in selected)
        return selected_names, matrix[:, selected]
