"""The ``repro adapt-bench`` scenario: drive a drifting mix through the loop.

The scenario reproduces the adaptive-loop story end to end, deterministic
in its seed:

1. train an incumbent on a TPC-H workload, register and promote it as
   ``v0001``, and serve it from its registry artifact behind a coalescing
   :class:`~repro.serving.ConcurrentEstimationService`;
2. **pre-drift** phase: serve in-distribution TPC-H traffic — rolling error
   sits well inside the calibrated band;
3. **drift** phase: shift the traffic to a TPC-DS pool (cross-schema, the
   paper's hardest generalisation case).  The rolling median relative
   error climbs past the trip threshold, the
   :class:`~repro.adaptive.drift.DriftMonitor` fires, and the
   :class:`~repro.adaptive.controller.RetrainController` refits in the
   background from the observation log while serving continues
   uninterrupted;
4. **post-swap** phase: keep serving the shifted traffic — the promoted
   refit model (``v0002``) brings the rolling error back inside the
   pre-drift band.

Every request is accounted: the record proves zero dropped/failed requests
across the background retrain and the hot-swap.  The resulting record is
written to ``benchmarks/results/adaptive_loop.json`` by the benchmark
suite and asserted by the CI ``adaptive-loop-smoke`` step.
"""

from __future__ import annotations

import json
import logging
import tempfile
from pathlib import Path
from statistics import median
from typing import Sequence

from repro.adaptive.controller import AdaptiveLoop, RetrainConfig
from repro.adaptive.drift import DriftConfig
from repro.adaptive.observation import Observation
from repro.adaptive.registry import ModelRegistry, corpus_fingerprint
from repro.api.protocol import TrainingCorpus
from repro.api.registry import make_estimator
from repro.api.service import EstimationService
from repro.catalog.tpcds import build_tpcds_catalog
from repro.catalog.tpch import build_tpch_catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.data.rng import make_rng
from repro.engine.executor import QueryExecutor
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.optimizer.planner import Planner
from repro.plan.plan import QueryPlan
from repro.query.tpcds_templates import tpcds_template_set
from repro.query.tpch_templates import tpch_template_set
from repro.serving.coalescer import ConcurrentEstimationService
from repro.workloads.tpch import build_tpch_workload

__all__ = ["run_adapt_bench"]

_LOGGER = logging.getLogger("repro.adaptive.bench")

#: Catalog scale/skew shared by training and serving pools.
_SCALE = 0.05
_TPCH_SKEW = 1.0
_TPCDS_SKEW = 0.8

#: Requests submitted per coalescing burst (exercises multi-request batches).
_BURST = 4


def run_adapt_bench(
    out_path: str | Path | None = None,
    registry_root: str | Path | None = None,
    train_queries: int = 96,
    iterations: int = 30,
    pool_size: int = 32,
    pre_requests: int = 96,
    drift_requests: int = 192,
    post_requests: int = 96,
    seed: int = 29,
    trip_threshold: float = 0.25,
    max_batch_size: int = 16,
    max_wait_ms: float = 0.5,
    resources: Sequence[str] = ("cpu", "io"),
) -> dict[str, object]:
    """Run the TPC-H → TPC-DS drifting-mix scenario; return the record."""
    resources = tuple(resources)
    clear_threshold = trip_threshold / 2.0
    # -- train + register the incumbent ----------------------------------------------------------
    trainer_config = TrainerConfig(
        mart=MARTConfig(n_iterations=iterations, max_leaves=8, learning_rate=0.15),
        min_training_rows=10,
        max_pair_models=1,
    )
    train_workload = build_tpch_workload(
        scale_factor=_SCALE, skew_z=_TPCH_SKEW, n_queries=train_queries, seed=seed
    )
    corpus = TrainingCorpus.from_workload(
        train_workload, FeatureMode.EXACT, resources
    )
    incumbent = make_estimator("scaling", trainer_config=trainer_config)
    assert isinstance(incumbent, ResourceEstimator)
    incumbent.fit(corpus)

    cleanup: tempfile.TemporaryDirectory[str] | None = None
    if registry_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-adapt-registry-")
        registry_root = cleanup.name
    registry = ModelRegistry(registry_root)
    seed_manifest = registry.register(
        incumbent, corpus=corpus_fingerprint(corpus), note="initial TPC-H model"
    )
    registry.promote(seed_manifest.version)

    # Serve the *registered artifact* (codec round-trip), not the in-memory fit.
    service = EstimationService.from_artifact(
        registry.artifact_path(seed_manifest.version)
    )
    drift_config = DriftConfig(
        window=48,
        min_observations=24,
        trip_threshold=trip_threshold,
        clear_threshold=clear_threshold,
        cooldown=24,
    )
    retrain_config = RetrainConfig(
        min_observations=64,
        max_observations=384,
        holdout_fraction=0.25,
        max_holdout_error=trip_threshold,
        seed=seed,
    )
    loop = AdaptiveLoop(service, registry, drift_config, retrain_config)

    # -- plan pools ------------------------------------------------------------------------------
    tpch_pool = _plan_pool("tpch", pool_size, seed + 1)
    tpcds_pool = _plan_pool("tpcds", pool_size, seed + 2)
    executor = QueryExecutor()

    phases: dict[str, dict[str, object]] = {}
    counters = {"requests": 0, "failed_requests": 0, "dropped_requests": 0}
    try:
        with ConcurrentEstimationService(
            service, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
        ) as front:
            phases["pre_drift"] = _drive_phase(
                "pre_drift", front, loop, executor, tpch_pool,
                pre_requests, seed, resources, counters,
            )
            phases["drifted"] = _drive_phase(
                "drifted", front, loop, executor, tpcds_pool,
                drift_requests, seed, resources, counters,
            )
            # Let an in-flight background refit land before the post phase.
            loop.controller.join(timeout=300.0)
            phases["post_swap"] = _drive_phase(
                "post_swap", front, loop, executor, tpcds_pool,
                post_requests, seed, resources, counters,
            )
            coalescing = front.coalescing_stats()
    finally:
        loop.close()

    # -- assemble the record ---------------------------------------------------------------------
    stats = service.stats.snapshot()
    history = [
        {
            "sequence": outcome.sequence,
            "status": outcome.status,
            "version": outcome.version,
            "holdout_error": dict(outcome.holdout_error),
            "reason": outcome.reason,
        }
        for outcome in loop.controller.history()
    ]
    promoted = [h for h in history if h["status"] == "promoted"]
    events = [
        {
            "sequence": event["sequence"],
            "event": event["event"],
            "version": event["version"],
        }
        for event in registry.events()
    ]
    pre = phases["pre_drift"]["median_relative_error"]
    drifted = phases["drifted"]["median_relative_error"]
    post = phases["post_swap"]["median_relative_error"]
    assert isinstance(pre, dict) and isinstance(drifted, dict) and isinstance(post, dict)
    checks = {
        "drift_tripped": loop.monitor.events >= 1
        and any(drifted[r] > trip_threshold for r in resources),
        "retrain_promoted": len(promoted) == 1,
        "exactly_one_swap": stats.swaps == 1 and stats.failed_swaps == 0,
        "zero_failed_requests": counters["failed_requests"] == 0
        and counters["dropped_requests"] == 0,
        "post_within_pre_drift_band": all(
            post[r] <= clear_threshold and pre[r] <= clear_threshold
            for r in resources
        ),
    }
    record: dict[str, object] = {
        "scenario": "tpch-to-tpcds-drifting-mix",
        "config": {
            "train_queries": train_queries,
            "iterations": iterations,
            "pool_size": pool_size,
            "pre_requests": pre_requests,
            "drift_requests": drift_requests,
            "post_requests": post_requests,
            "seed": seed,
            "trip_threshold": trip_threshold,
            "clear_threshold": clear_threshold,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "resources": list(resources),
        },
        "phases": phases,
        "retrain": history,
        "registry": {
            "versions": list(registry.versions()),
            "active": registry.active,
            "events": events,
        },
        "serving": {
            "requests": counters["requests"],
            "failed_requests": counters["failed_requests"],
            "dropped_requests": counters["dropped_requests"],
            "swaps": stats.swaps,
            "failed_swaps": stats.failed_swaps,
            "batches_served": stats.batches_served,
            "plans_coalesced": stats.plans_coalesced,
            "coalesced_batches": coalescing.batches,
        },
        "checks": checks,
        "passed": all(checks.values()),
    }
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        _LOGGER.info("adaptive-loop record written to %s", out)
    if cleanup is not None:
        cleanup.cleanup()
    return record


def _plan_pool(kind: str, pool_size: int, seed: int) -> list[QueryPlan]:
    """A planned serving pool over the bench catalogs (planning off the path)."""
    if kind == "tpch":
        catalog = build_tpch_catalog(scale_factor=_SCALE, skew_z=_TPCH_SKEW)
        queries = tpch_template_set().generate(catalog, pool_size, seed=seed)
    else:
        catalog = build_tpcds_catalog(scale_factor=_SCALE, skew_z=_TPCDS_SKEW)
        queries = tpcds_template_set().generate(catalog, pool_size, seed=seed)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    return [planner.plan(query) for query in queries]


def _drive_phase(
    phase: str,
    front: ConcurrentEstimationService,
    loop: AdaptiveLoop,
    executor: QueryExecutor,
    pool: list[QueryPlan],
    n_requests: int,
    seed: int,
    resources: tuple[str, ...],
    counters: dict[str, int],
) -> dict[str, object]:
    """Serve one phase in coalescing bursts; execute + complete every plan."""
    rng = make_rng(seed, "adapt-bench", phase)
    observations: list[Observation] = []
    swaps_before = loop.service.stats.snapshot().swaps
    submitted = 0
    while submitted < n_requests:
        burst_plans = [
            pool[int(rng.integers(len(pool)))]
            for _ in range(min(_BURST, n_requests - submitted))
        ]
        futures = [front.submit([plan]) for plan in burst_plans]
        submitted += len(burst_plans)
        counters["requests"] += len(burst_plans)
        for plan, future in zip(burst_plans, futures):
            try:
                future.result(timeout=60.0)
            except Exception as exc:
                counters["failed_requests"] += 1
                _LOGGER.warning("%s request failed: %s", phase, exc)
                continue
            result = executor.execute(plan)
            observation = loop.complete(plan, result)
            if observation is None:
                counters["dropped_requests"] += 1
                _LOGGER.warning("%s observation dropped (no parked prediction)", phase)
                continue
            observations.append(observation)
    errors = {
        resource: [obs.relative_error(resource) for obs in observations]
        for resource in resources
    }
    return {
        "requests": submitted,
        "observations": len(observations),
        "median_relative_error": {
            resource: float(median(values)) if values else 0.0
            for resource, values in errors.items()
        },
        "band_hit_rate": {
            resource: (
                sum(1 for obs in observations if obs.within_band(resource))
                / len(observations)
                if observations
                else 1.0
            )
            for resource in resources
        },
        "swaps_during_phase": loop.service.stats.snapshot().swaps - swaps_before,
    }
