"""Background refit on drift, with validation, registration and hot-swap.

The :class:`RetrainController` is the actuator of the adaptive loop.  On a
:class:`~repro.adaptive.drift.DriftEvent` it:

1. snapshots the newest completed observations from the
   :class:`~repro.adaptive.observation.ObservationLog` and splits them into
   a refit slice and a held-out slice with a seeded generator;
2. refits a candidate estimator **in a background thread** through the
   technique registry (:func:`repro.api.make_estimator`) on a
   :class:`~repro.api.TrainingCorpus` built from the refit slice — the
   serving path never blocks on training;
3. registers the candidate in the :class:`~repro.adaptive.registry.ModelRegistry`
   (immutable artifact + manifest with corpus fingerprint and holdout
   metrics), then validates it against the held-out slice;
4. atomically hot-swaps it into the live
   :class:`~repro.api.EstimationService` via the existing canary-checked
   :meth:`~repro.api.EstimationService.swap_artifact` — in-flight estimates
   finish on the incumbent, new calls see only the candidate.

Every failure path is a recorded outcome, never an exception on the serving
path: a candidate that fails holdout validation or the swap canary is
marked ``rejected`` in the registry, the incumbent keeps serving, and the
controller backs off exponentially (skipping the next
``backoff_events * 2**(failures-1)`` drift events) before trying again.

:class:`AdaptiveLoop` wires the four pieces together — log, monitor,
controller, service — behind a single ``complete(plan, result)`` call.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, TYPE_CHECKING

from repro.adaptive.drift import DriftConfig, DriftEvent, DriftMonitor
from repro.adaptive.observation import Observation, ObservationLog
from repro.adaptive.registry import ModelRegistry, corpus_fingerprint
from repro.api.protocol import TrainingCorpus
from repro.core.estimator import ResourceEstimator
from repro.data.rng import make_rng
from repro.robustness.lifecycle import ArtifactSwapError
from repro.workloads.runner import ObservedQuery

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.api.service import EstimationService
    from repro.engine.executor import ExecutionResult
    from repro.plan.plan import QueryPlan

__all__ = ["AdaptiveLoop", "RetrainConfig", "RetrainController", "RetrainOutcome"]

_LOGGER = logging.getLogger("repro.adaptive.controller")


@dataclass(frozen=True)
class RetrainConfig:
    """Knobs of one retrain controller."""

    #: Completed observations required before a refit is attempted.
    min_observations: int = 48
    #: Newest observations the refit corpus draws from (``None`` = all retained).
    max_observations: int | None = 512
    #: Fraction of the snapshot held out for candidate validation.
    holdout_fraction: float = 0.25
    #: Candidate acceptance bound: median relative error on the held-out
    #: slice must stay at or below this, per resource.  ``None`` disables
    #: the validation gate (the swap canary still guards the promotion).
    max_holdout_error: float | None = 0.25
    #: Seed for the refit/holdout split (derived per drift event).
    seed: int = 17
    #: Drift events skipped after a failed promotion; doubles per
    #: consecutive failure (exponential backoff).
    backoff_events: int = 1
    #: Margin forwarded to the swap canary checks.
    canary_margin: float = 1e9

    def __post_init__(self) -> None:
        if self.min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        if self.max_observations is not None and self.max_observations < self.min_observations:
            raise ValueError("max_observations must be >= min_observations")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.max_holdout_error is not None and self.max_holdout_error <= 0.0:
            raise ValueError("max_holdout_error must be > 0 (or None)")
        if self.backoff_events < 0:
            raise ValueError("backoff_events must be >= 0")


@dataclass(frozen=True)
class RetrainOutcome:
    """One retrain attempt, as recorded in the controller history."""

    #: Log sequence of the drift event that triggered the attempt.
    sequence: int
    #: ``promoted`` | ``canary-rejected`` | ``validation-failed`` |
    #: ``insufficient-data`` | ``skipped-backoff`` | ``error``.
    status: str
    #: Registry version of the candidate (``None`` if never registered).
    version: str | None = None
    #: Median relative error per resource on the held-out slice.
    holdout_error: dict[str, float] = field(default_factory=dict)
    reason: str = ""
    trigger: DriftEvent | None = None

    @property
    def promoted(self) -> bool:
        return self.status == "promoted"


class RetrainController:
    """Drift-triggered background refit + canary-checked promotion."""

    def __init__(
        self,
        service: "EstimationService",
        log: ObservationLog,
        registry: ModelRegistry,
        config: RetrainConfig | None = None,
        on_promote: Callable[[RetrainOutcome], None] | None = None,
    ) -> None:
        self.service = service
        self.log = log
        self.registry = registry
        self.config = config or RetrainConfig()
        #: Called after every successful promotion (the loop resets its
        #: drift monitor here); errors are logged, never propagated.
        self.on_promote = on_promote
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._history: list[RetrainOutcome] = []
        self._consecutive_failures = 0
        self._backoff_remaining = 0

    # -- triggering ------------------------------------------------------------------------------
    def handle_drift(self, event: DriftEvent) -> threading.Thread | None:
        """React to one drift event; returns the refit thread, if started.

        At most one refit runs at a time — events arriving while a refit is
        in flight are dropped (the in-flight candidate was trained on
        almost the same window).  Events arriving during failure backoff
        are recorded as ``skipped-backoff`` outcomes.
        """
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                _LOGGER.info(
                    "drift event at observation %d ignored: refit already in flight",
                    event.sequence,
                )
                return None
            if self._backoff_remaining > 0:
                self._backoff_remaining -= 1
                outcome = RetrainOutcome(
                    sequence=event.sequence,
                    status="skipped-backoff",
                    reason=(
                        f"backing off after {self._consecutive_failures} failed "
                        f"promotion(s); {self._backoff_remaining} event(s) left"
                    ),
                    trigger=event,
                )
                self._history.append(outcome)
                _LOGGER.warning("%s", outcome.reason)
                return None
            thread = threading.Thread(
                target=self._run,
                args=(event,),
                name=f"repro-adaptive-retrain-{event.sequence}",
                daemon=True,
            )
            self._thread = thread
        thread.start()
        return thread

    def _run(self, event: DriftEvent) -> None:
        try:
            self.retrain_now(event)
        except Exception as exc:  # pragma: no cover - defensive; recorded below
            _LOGGER.error("background retrain failed unexpectedly: %s", exc)
            with self._lock:
                self._history.append(
                    RetrainOutcome(
                        sequence=event.sequence,
                        status="error",
                        reason=str(exc),
                        trigger=event,
                    )
                )

    # -- the refit itself ------------------------------------------------------------------------
    def retrain_now(self, event: DriftEvent) -> RetrainOutcome:
        """Synchronous refit + validate + register + swap (thread target)."""
        config = self.config
        queries = self.log.observed_queries(limit=config.max_observations)
        if len(queries) < config.min_observations:
            outcome = RetrainOutcome(
                sequence=event.sequence,
                status="insufficient-data",
                reason=(
                    f"{len(queries)} completed observation(s) < "
                    f"min_observations={config.min_observations}"
                ),
                trigger=event,
            )
            self._finish(outcome)
            return outcome
        refit, holdout = self._split(queries, event.sequence)
        incumbent = self.service.estimator
        corpus = TrainingCorpus(
            queries=tuple(refit),
            mode=incumbent.feature_mode,
            resources=incumbent.resources,
            name=f"adaptive-refit-{event.sequence}",
        )
        try:
            candidate = self._fit_candidate(corpus)
        except (ValueError, RuntimeError) as exc:
            outcome = RetrainOutcome(
                sequence=event.sequence,
                status="error",
                reason=f"candidate fit failed: {exc}",
                trigger=event,
            )
            _LOGGER.error("%s", outcome.reason)
            self._finish(outcome, failed=True)
            return outcome
        holdout_error = _holdout_errors(candidate, holdout, incumbent.resources)
        manifest = self.registry.register(
            candidate,
            corpus=corpus_fingerprint(corpus),
            metrics={
                resource: {"median_relative_error": error}
                for resource, error in holdout_error.items()
            },
            parent=self.registry.active,
            note=f"refit after {event.reason} drift on {event.resource}",
        )
        if config.max_holdout_error is not None:
            worst = max(holdout_error.values(), default=0.0)
            if worst > config.max_holdout_error:
                reason = (
                    f"holdout validation failed: median relative error {worst:.3f} "
                    f"> {config.max_holdout_error:.3f}"
                )
                self.registry.record_rejection(manifest.version, reason)
                outcome = RetrainOutcome(
                    sequence=event.sequence,
                    status="validation-failed",
                    version=manifest.version,
                    holdout_error=holdout_error,
                    reason=reason,
                    trigger=event,
                )
                self._finish(outcome, failed=True)
                return outcome
        try:
            self.service.swap_artifact(
                self.registry.artifact_path(manifest.version),
                canary_margin=config.canary_margin,
            )
        except ArtifactSwapError as exc:
            reason = f"canary-checked swap rejected the candidate: {exc}"
            self.registry.record_rejection(manifest.version, reason)
            outcome = RetrainOutcome(
                sequence=event.sequence,
                status="canary-rejected",
                version=manifest.version,
                holdout_error=holdout_error,
                reason=reason,
                trigger=event,
            )
            _LOGGER.warning("%s", reason)
            self._finish(outcome, failed=True)
            return outcome
        self.registry.promote(manifest.version)
        outcome = RetrainOutcome(
            sequence=event.sequence,
            status="promoted",
            version=manifest.version,
            holdout_error=holdout_error,
            trigger=event,
        )
        _LOGGER.info(
            "promoted refit model %s (holdout error: %s)",
            manifest.version,
            {k: round(v, 4) for k, v in holdout_error.items()},
        )
        self._finish(outcome)
        if self.on_promote is not None:
            try:
                self.on_promote(outcome)
            except Exception as exc:
                _LOGGER.warning("on_promote callback failed: %s", exc)
        return outcome

    # -- introspection ---------------------------------------------------------------------------
    def history(self) -> tuple[RetrainOutcome, ...]:
        with self._lock:
            return tuple(self._history)

    @property
    def in_flight(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: float | None = None) -> None:
        """Wait for the current background refit to finish, if any."""
        with self._lock:
            thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)

    # -- seams & internals -----------------------------------------------------------------------
    def _fit_candidate(self, corpus: TrainingCorpus) -> ResourceEstimator:
        """Refit seam: build and fit a candidate through the technique registry.

        Tests override this to inject poisoned candidates; the default
        refits the incumbent's technique with the incumbent's trainer
        configuration on the fresh corpus.
        """
        from repro.api.registry import make_estimator

        incumbent = self.service.estimator
        candidate = make_estimator(
            "scaling", trainer_config=incumbent.trainer_config
        )
        assert isinstance(candidate, ResourceEstimator)
        candidate.feature_mode = incumbent.feature_mode
        candidate.resources = incumbent.resources
        candidate.fit(corpus)
        return candidate

    def _split(
        self, queries: list[ObservedQuery], sequence: int
    ) -> tuple[list[ObservedQuery], list[ObservedQuery]]:
        """Seeded refit/holdout split (by query, never by operator)."""
        rng = make_rng(self.config.seed, "adaptive-retrain", sequence)
        order = rng.permutation(len(queries))
        n_holdout = max(1, int(round(len(queries) * self.config.holdout_fraction)))
        n_holdout = min(n_holdout, len(queries) - 1)
        holdout_idx = set(int(i) for i in order[:n_holdout])
        refit = [q for i, q in enumerate(queries) if i not in holdout_idx]
        holdout = [q for i, q in enumerate(queries) if i in holdout_idx]
        return refit, holdout

    def _finish(self, outcome: RetrainOutcome, failed: bool = False) -> None:
        with self._lock:
            self._history.append(outcome)
            if failed:
                self._consecutive_failures += 1
                self._backoff_remaining = self.config.backoff_events * (
                    2 ** (self._consecutive_failures - 1)
                )
            elif outcome.promoted:
                self._consecutive_failures = 0
                self._backoff_remaining = 0


def _holdout_errors(
    candidate: ResourceEstimator,
    holdout: list[ObservedQuery],
    resources: tuple[str, ...],
) -> dict[str, float]:
    """Median query-level relative error of ``candidate`` on held-out queries."""
    errors: dict[str, float] = {}
    plans = [query.plan for query in holdout]
    for resource in resources:
        predicted = candidate.predict_batch(plans, resource)
        per_query = [
            abs(float(est) - query.actual(resource)) / max(abs(float(est)), 1e-9)
            for est, query in zip(predicted, holdout)
        ]
        errors[resource] = float(median(per_query)) if per_query else 0.0
    return errors


class AdaptiveLoop:
    """The assembled feedback loop: observe → detect drift → refit → swap.

    Attaches an :class:`~repro.adaptive.observation.ObservationLog` to the
    service, feeds every completed observation to a
    :class:`~repro.adaptive.drift.DriftMonitor`, and hands trip events to a
    :class:`RetrainController`.  After a successful promotion the monitor
    is reset (with cooldown) so the refit model fills the windows with its
    own errors before it can be judged.
    """

    def __init__(
        self,
        service: "EstimationService",
        registry: ModelRegistry,
        drift_config: DriftConfig | None = None,
        retrain_config: RetrainConfig | None = None,
        log: ObservationLog | None = None,
    ) -> None:
        self.service = service
        self.registry = registry
        self.log = log if log is not None else ObservationLog()
        self.monitor = DriftMonitor(drift_config)
        self.controller = RetrainController(
            service,
            self.log,
            registry,
            retrain_config,
            on_promote=self._after_promote,
        )
        self.log.attach(service)

    def complete(self, plan: "QueryPlan", result: "ExecutionResult") -> Observation | None:
        """Feed one plan's execution feedback through the whole loop.

        Joins the feedback with the parked prediction, updates the drift
        windows and — if the monitor trips — kicks off a background refit.
        Returns the completed observation (``None`` if the plan was never
        served through the observed session).
        """
        observation = self.log.complete(plan, result)
        if observation is None:
            return None
        event = self.monitor.observe(observation)
        if event is not None:
            self.controller.handle_drift(event)
        return observation

    def _after_promote(self, outcome: RetrainOutcome) -> None:
        self.monitor.reset(cooldown=True)
        _LOGGER.info(
            "drift monitor reset after promoting %s (cooldown %d observations)",
            outcome.version,
            self.monitor.config.cooldown,
        )

    def close(self) -> None:
        """Detach from the service and wait out any in-flight refit."""
        self.log.detach(self.service)
        self.controller.join(timeout=60.0)
        self.log.close()

    def __enter__(self) -> "AdaptiveLoop":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
