"""Rolling error windows and threshold-with-hysteresis drift detection.

The paper's robustness claim is an *accuracy band*: estimates stay within a
ratio of 2 of the actuals, and the L1 relative error stays small.  The
:class:`DriftMonitor` watches exactly those two quantities over a sliding
window of completed :class:`~repro.adaptive.observation.Observation`\\ s —
per served resource for the trip decision, and per (operator family,
resource) for diagnostics — and emits a :class:`DriftEvent` when either
leaves the calibrated band:

* the rolling **median relative error** rises above
  :attr:`DriftConfig.trip_threshold`, or
* the rolling **band hit rate** (fraction of queries with ratio error
  <= :attr:`DriftConfig.band_ratio`) falls below
  :attr:`DriftConfig.min_band_hit_rate`.

Tripping is hysteretic: once tripped, a resource stays tripped (emitting no
further events) until its window recovers below the lower
:attr:`DriftConfig.clear_threshold` — so a noisy error series oscillating
around the trip point cannot emit an event storm.  After a model swap the
loop calls :meth:`DriftMonitor.reset`, which clears the windows and starts
a cooldown during which no events fire while the new model fills the
window with its own errors.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass
from statistics import median

from repro.adaptive.observation import Observation

__all__ = ["DriftConfig", "DriftEvent", "DriftMonitor", "WindowMetrics"]

_LOGGER = logging.getLogger("repro.adaptive.drift")


@dataclass(frozen=True)
class DriftConfig:
    """Calibrated thresholds of one drift monitor."""

    #: Observations per rolling window (per resource).
    window: int = 48
    #: Observations required before any trip decision is made.
    min_observations: int = 24
    #: Rolling median relative error that trips a drift event.
    trip_threshold: float = 0.25
    #: Hysteresis: a tripped resource clears only below this level.
    clear_threshold: float = 0.125
    #: The paper's accuracy band: ratio error <= band_ratio counts as a hit.
    band_ratio: float = 2.0
    #: Band hit rate below which drift trips regardless of median error.
    min_band_hit_rate: float = 0.5
    #: Observations ignored after :meth:`DriftMonitor.reset` (post-swap warmup).
    cooldown: int = 48
    #: Resources watched (intersected with what each observation carries).
    resources: tuple[str, ...] = ("cpu", "io")

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_observations <= self.window:
            raise ValueError("min_observations must be in [1, window]")
        if self.trip_threshold <= 0.0:
            raise ValueError("trip_threshold must be > 0")
        if not 0.0 < self.clear_threshold < self.trip_threshold:
            raise ValueError("clear_threshold must be in (0, trip_threshold)")
        if self.band_ratio < 1.0:
            raise ValueError("band_ratio must be >= 1")
        if not 0.0 <= self.min_band_hit_rate <= 1.0:
            raise ValueError("min_band_hit_rate must be in [0, 1]")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if not self.resources:
            raise ValueError("a drift monitor must watch at least one resource")


@dataclass(frozen=True)
class WindowMetrics:
    """Point-in-time rolling metrics of one resource window."""

    resource: str
    n: int
    median_relative_error: float
    band_hit_rate: float


@dataclass(frozen=True)
class DriftEvent:
    """One threshold crossing: the rolling error left the calibrated band."""

    #: Log sequence of the observation that tripped the monitor.
    sequence: int
    resource: str
    median_relative_error: float
    band_hit_rate: float
    #: Window size the metrics were computed over.
    n: int
    trip_threshold: float
    #: ``"relative-error"`` or ``"band-hit-rate"`` — which bound was crossed.
    reason: str
    #: Worst rolling per-(family, resource) median errors at trip time,
    #: highest first — the diagnostic "where did the model go stale".
    family_errors: tuple[tuple[str, float], ...] = ()

    def describe(self) -> str:
        families = ", ".join(f"{name}={err:.3f}" for name, err in self.family_errors[:3])
        return (
            f"drift on {self.resource} at observation {self.sequence}: "
            f"median relative error {self.median_relative_error:.3f} "
            f"(trip {self.trip_threshold:.3f}, band hit rate "
            f"{self.band_hit_rate:.2f}, reason {self.reason}"
            + (f"; worst families: {families}" if families else "")
            + ")"
        )


class DriftMonitor:
    """Sliding-window drift detector over completed observations.

    Thread-safe: :meth:`observe`, :meth:`metrics` and :meth:`reset` may be
    called from different threads (the completion path and a background
    controller).  At most one :class:`DriftEvent` is returned per
    :meth:`observe` call — the first resource that trips wins; others trip
    on subsequent observations unless the loop resets first.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self._lock = threading.Lock()
        # resource -> (relative errors, band hits) rolling windows.
        self._errors: dict[str, deque[float]] = {}
        self._hits: dict[str, deque[bool]] = {}
        # (family value, resource) -> per-operator relative-error window.
        self._family_errors: dict[tuple[str, str], deque[float]] = {}
        self._tripped: dict[str, bool] = {}
        self._cooldown_remaining = 0
        self._events = 0

    # -- feeding ---------------------------------------------------------------------------------
    def observe(self, observation: Observation) -> DriftEvent | None:
        """Fold one completed observation in; return a trip event, if any."""
        config = self.config
        with self._lock:
            resources = [r for r in config.resources if r in observation.predicted]
            for resource in resources:
                errors = self._errors.setdefault(
                    resource, deque(maxlen=config.window)
                )
                hits = self._hits.setdefault(resource, deque(maxlen=config.window))
                errors.append(observation.relative_error(resource))
                hits.append(observation.within_band(resource, config.band_ratio))
            self._fold_families(observation, resources)
            if self._cooldown_remaining > 0:
                self._cooldown_remaining -= 1
                return None
            for resource in resources:
                event = self._evaluate(resource, observation.sequence)
                if event is not None:
                    self._events += 1
                    _LOGGER.info("%s", event.describe())
                    return event
        return None

    def _fold_families(
        self, observation: Observation, resources: list[str]
    ) -> None:
        """Per-operator family errors (caller holds the lock)."""
        config = self.config
        for resource in resources:
            predicted = observation.operator_predicted.get(resource)
            if not predicted:
                continue
            for op in observation.observed.operators:
                estimate = predicted.get(op.node_id)
                if estimate is None:
                    continue
                key = (op.family.value, resource)
                window = self._family_errors.setdefault(
                    key, deque(maxlen=config.window)
                )
                window.append(
                    abs(estimate - op.actual(resource)) / max(abs(estimate), 1e-9)
                )

    def _evaluate(self, resource: str, sequence: int) -> DriftEvent | None:
        """Trip/clear decision for one resource (caller holds the lock)."""
        config = self.config
        errors = self._errors.get(resource)
        hits = self._hits.get(resource)
        if errors is None or hits is None or len(errors) < config.min_observations:
            return None
        rolling = float(median(errors))
        hit_rate = sum(hits) / len(hits)
        if self._tripped.get(resource, False):
            if rolling <= config.clear_threshold and hit_rate >= config.min_band_hit_rate:
                self._tripped[resource] = False
                _LOGGER.info(
                    "drift on %s cleared: median relative error %.3f <= %.3f",
                    resource,
                    rolling,
                    config.clear_threshold,
                )
            return None
        reason: str | None = None
        if rolling > config.trip_threshold:
            reason = "relative-error"
        elif hit_rate < config.min_band_hit_rate:
            reason = "band-hit-rate"
        if reason is None:
            return None
        self._tripped[resource] = True
        worst = sorted(
            (
                (family, float(median(window)))
                for (family, res), window in self._family_errors.items()
                if res == resource and window
            ),
            key=lambda item: item[1],
            reverse=True,
        )
        return DriftEvent(
            sequence=sequence,
            resource=resource,
            median_relative_error=rolling,
            band_hit_rate=hit_rate,
            n=len(errors),
            trip_threshold=config.trip_threshold,
            reason=reason,
            family_errors=tuple(worst),
        )

    # -- reading ---------------------------------------------------------------------------------
    def metrics(self) -> dict[str, WindowMetrics]:
        """Current rolling metrics per watched resource."""
        with self._lock:
            out: dict[str, WindowMetrics] = {}
            for resource in self.config.resources:
                errors = self._errors.get(resource)
                hits = self._hits.get(resource)
                if not errors or not hits:
                    out[resource] = WindowMetrics(resource, 0, 0.0, 1.0)
                    continue
                out[resource] = WindowMetrics(
                    resource=resource,
                    n=len(errors),
                    median_relative_error=float(median(errors)),
                    band_hit_rate=sum(hits) / len(hits),
                )
            return out

    def family_metrics(self) -> dict[tuple[str, str], float]:
        """Rolling median per-operator relative error per (family, resource)."""
        with self._lock:
            return {
                key: float(median(window))
                for key, window in self._family_errors.items()
                if window
            }

    def tripped(self, resource: str) -> bool:
        with self._lock:
            return self._tripped.get(resource, False)

    @property
    def any_tripped(self) -> bool:
        with self._lock:
            return any(self._tripped.values())

    @property
    def events(self) -> int:
        """Drift events emitted over this monitor's lifetime."""
        with self._lock:
            return self._events

    # -- lifecycle -------------------------------------------------------------------------------
    def reset(self, cooldown: bool = True) -> None:
        """Forget all windows (post-swap): the new model starts clean.

        With ``cooldown=True`` the next :attr:`DriftConfig.cooldown`
        observations are folded into the windows but cannot trip events.
        """
        with self._lock:
            self._errors.clear()
            self._hits.clear()
            self._family_errors.clear()
            self._tripped.clear()
            self._cooldown_remaining = self.config.cooldown if cooldown else 0
