"""Adaptive serving: observe, detect drift, refit in background, hot-swap.

The paper trains once and argues the models stay accurate as workloads
shift; this package closes the remaining loop so the reproduction *keeps*
its accuracy bands when the traffic drifts away from the training
distribution:

* :mod:`repro.adaptive.observation` — :class:`ObservationLog`, a bounded
  tap on the serving session that joins every prediction with the engine's
  simulated-actual counters (append-only JSONL spill, ring-buffer memory);
* :mod:`repro.adaptive.drift` — :class:`DriftMonitor`, rolling
  per-(family, resource) error windows with threshold-plus-hysteresis
  :class:`DriftEvent` tripping;
* :mod:`repro.adaptive.registry` — :class:`ModelRegistry`, immutable
  versioned artifacts over the existing codec with manifests (checksum,
  corpus fingerprint, train metrics) and a promote/reject event log;
* :mod:`repro.adaptive.controller` — :class:`RetrainController` /
  :class:`AdaptiveLoop`, drift-triggered background refit, holdout
  validation, registration and canary-checked hot-swap with exponential
  backoff on failed promotions;
* :mod:`repro.adaptive.bench` — the ``repro adapt-bench`` drifting-mix
  scenario (TPC-H → TPC-DS) recording pre-drift / drifted / post-swap
  error.

Exports resolve lazily (PEP 562, same pattern as :mod:`repro.robustness`):
the bench submodule pulls in catalogs and planners that light ``import
repro.adaptive`` users should not pay for.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adaptive.bench import run_adapt_bench
    from repro.adaptive.controller import (
        AdaptiveLoop,
        RetrainConfig,
        RetrainController,
        RetrainOutcome,
    )
    from repro.adaptive.drift import DriftConfig, DriftEvent, DriftMonitor, WindowMetrics
    from repro.adaptive.observation import Observation, ObservationLog
    from repro.adaptive.registry import (
        ModelManifest,
        ModelRegistry,
        RegistryError,
        corpus_fingerprint,
        manifest_for_artifact,
    )

_EXPORTS: dict[str, str] = {
    "Observation": "observation",
    "ObservationLog": "observation",
    "DriftConfig": "drift",
    "DriftEvent": "drift",
    "DriftMonitor": "drift",
    "WindowMetrics": "drift",
    "ModelManifest": "registry",
    "ModelRegistry": "registry",
    "RegistryError": "registry",
    "corpus_fingerprint": "registry",
    "manifest_for_artifact": "registry",
    "AdaptiveLoop": "controller",
    "RetrainConfig": "controller",
    "RetrainController": "controller",
    "RetrainOutcome": "controller",
    "run_adapt_bench": "bench",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
