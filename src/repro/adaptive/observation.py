"""Recording (plan, prediction, simulated-actual) triples from the serving path.

The adaptive loop starts with feedback: every estimate the serving session
produces is eventually joined with the simulated execution counters the
engine (:mod:`repro.engine.executor`) observed for the same plan.  The
:class:`ObservationLog` is that join point:

* :meth:`ObservationLog.attach` registers the log as a post-serve observer
  on an :class:`~repro.api.EstimationService` (or, through the passthrough
  on :class:`~repro.serving.ConcurrentEstimationService`, on a coalescing
  front).  Every served ``(plans, estimate)`` pair parks the per-plan
  predictions in a bounded pending map keyed by plan identity.
* :meth:`ObservationLog.complete` takes the plan's
  :class:`~repro.engine.executor.ExecutionResult`, joins it with the parked
  prediction through :func:`~repro.workloads.runner.observe_execution`
  (producing a refit-ready :class:`~repro.workloads.runner.ObservedQuery`)
  and emits one immutable :class:`Observation`.

Memory is bounded on both sides: completed observations live in a ring
buffer (``capacity`` newest win) and the pending map evicts its oldest
entry once ``pending_capacity`` predictions are waiting for feedback.
Optionally every completed observation is also spilled to an append-only
JSONL file — one ``json.dumps(..., sort_keys=True)`` object per line, no
wall-clock fields, so a seeded run reproduces the spill byte-for-byte.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING

from repro.core.estimator import WorkloadEstimate
from repro.engine.executor import ExecutionResult
from repro.features.definitions import FeatureMode
from repro.features.extractor import FeatureExtractor
from repro.plan.plan import QueryPlan
from repro.workloads.runner import ObservedQuery, observe_execution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.api.service import EstimationService

__all__ = ["Observation", "ObservationLog"]

_LOGGER = logging.getLogger("repro.adaptive.observation")

#: Floor keeping relative/ratio errors finite (matches ``repro.ml.metrics``).
_EPSILON = 1e-9

#: One parked prediction: the plan (kept so ``id`` stays valid), the per-
#: resource query totals and the per-resource per-operator estimates.  Each
#: plan identity holds a FIFO of these — the same plan object may be served
#: several times before its first execution feedback arrives.
_Pending = tuple[QueryPlan, dict[str, float], dict[str, dict[int, float]]]


@dataclass(frozen=True)
class Observation:
    """One completed (plan, prediction, simulated-actual) triple."""

    #: Monotonic completion index within the owning log (0-based).
    sequence: int
    query_name: str
    template: str
    #: Query-level predicted totals per resource.
    predicted: dict[str, float]
    #: Query-level simulated-actual totals per resource.
    actual: dict[str, float]
    #: Per-operator predictions per resource (``node_id -> estimate``).
    operator_predicted: dict[str, dict[int, float]]
    #: The feature-annotated execution record (refit training row source).
    observed: ObservedQuery = field(repr=False, compare=False)

    @property
    def resources(self) -> tuple[str, ...]:
        return tuple(sorted(self.predicted))

    def relative_error(self, resource: str) -> float:
        """``|predicted - actual| / |predicted|`` (paper normalisation)."""
        predicted = self.predicted[resource]
        return abs(predicted - self.actual[resource]) / max(abs(predicted), _EPSILON)

    def ratio_error(self, resource: str) -> float:
        """``max(predicted/actual, actual/predicted)`` — always >= 1."""
        predicted = max(self.predicted[resource], _EPSILON)
        actual = max(self.actual[resource], _EPSILON)
        return max(predicted / actual, actual / predicted)

    def within_band(self, resource: str, band: float = 2.0) -> bool:
        """Whether this query hit the paper's accuracy band (ratio <= band)."""
        return self.ratio_error(resource) <= band

    def record(self) -> dict[str, object]:
        """Deterministic JSON-ready form (the spill-line payload)."""
        return {
            "sequence": self.sequence,
            "query": self.query_name,
            "template": self.template,
            "resources": {
                resource: {
                    "predicted": self.predicted[resource],
                    "actual": self.actual[resource],
                    "relative_error": self.relative_error(resource),
                    "ratio_error": self.ratio_error(resource),
                }
                for resource in self.resources
            },
        }


class ObservationLog:
    """Bounded, thread-safe store of serving predictions joined with actuals.

    The log is a passive tap: attaching it to a service costs one callback
    per served workload, and nothing blocks the serving path — the join
    with execution feedback happens in whatever thread calls
    :meth:`complete`.  All state is guarded by one lock, so the serving
    observer, the completion caller and a background retrain reading
    :meth:`observed_queries` can overlap freely.
    """

    def __init__(
        self,
        capacity: int = 512,
        spill_path: str | Path | None = None,
        pending_capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if pending_capacity < 1:
            raise ValueError("pending_capacity must be >= 1")
        self.capacity = int(capacity)
        self.pending_capacity = int(pending_capacity)
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self._lock = threading.Lock()
        self._pending: OrderedDict[int, list[_Pending]] = OrderedDict()
        self._n_pending = 0
        self._observations: deque[Observation] = deque(maxlen=self.capacity)
        self._sequence = 0
        self._dropped_pending = 0
        self._unmatched_completions = 0
        self._spill: IO[str] | None = None
        self._exact = FeatureExtractor(FeatureMode.EXACT)
        self._estimated = FeatureExtractor(FeatureMode.ESTIMATED)

    # -- wiring ----------------------------------------------------------------------------------
    def attach(self, service: "EstimationService") -> "ObservationLog":
        """Start recording every estimate ``service`` serves (idempotent)."""
        service.add_observer(self.record_prediction)
        return self

    def detach(self, service: "EstimationService") -> None:
        """Stop recording estimates from ``service`` (idempotent)."""
        service.remove_observer(self.record_prediction)

    # -- the serving-side tap --------------------------------------------------------------------
    def record_prediction(
        self, plans: list[QueryPlan], estimate: WorkloadEstimate
    ) -> None:
        """Park the per-plan predictions of one served workload estimate.

        This is the :data:`~repro.api.service.EstimationObserver` callback;
        coalesced micro-batches arrive here as their combined plan list, so
        each rider plan is parked individually under its own identity.
        """
        resources = tuple(estimate.resources)
        with self._lock:
            for index, plan in enumerate(plans):
                predicted = {
                    resource: float(estimate.query(index, resource))
                    for resource in resources
                }
                operator_predicted = {
                    resource: dict(estimate.operators(index, resource))
                    for resource in resources
                }
                queue = self._pending.setdefault(id(plan), [])
                queue.append((plan, predicted, operator_predicted))
                self._pending.move_to_end(id(plan))
                self._n_pending += 1
            while self._n_pending > self.pending_capacity:
                oldest_key = next(iter(self._pending))
                oldest = self._pending[oldest_key]
                oldest.pop(0)
                if not oldest:
                    del self._pending[oldest_key]
                self._n_pending -= 1
                self._dropped_pending += 1

    # -- the execution-side join -----------------------------------------------------------------
    def complete(self, plan: QueryPlan, result: ExecutionResult) -> Observation | None:
        """Join a plan's execution feedback with its parked prediction.

        Returns the completed :class:`Observation`, or ``None`` when no
        prediction is parked for this plan (it was never served, or its
        pending entry was evicted).
        """
        with self._lock:
            queue = self._pending.get(id(plan))
            pending: _Pending | None = None
            if queue is not None and queue[0][0] is plan:
                pending = queue.pop(0)
                self._n_pending -= 1
                if not queue:
                    del self._pending[id(plan)]
            if pending is None:
                # id() reuse can only pair a *dead* plan's entry with a new
                # object; treat it like "never predicted".
                self._unmatched_completions += 1
        if pending is None:
            _LOGGER.debug(
                "no pending prediction for plan %r; execution feedback dropped",
                getattr(plan.query, "name", "?"),
            )
            return None
        _, predicted, operator_predicted = pending
        observed = observe_execution(plan, result, self._exact, self._estimated)
        actual = {
            resource: observed.actual(resource)
            for resource in predicted
        }
        with self._lock:
            observation = Observation(
                sequence=self._sequence,
                query_name=observed.query.name,
                template=observed.template,
                predicted=predicted,
                actual=actual,
                operator_predicted=operator_predicted,
                observed=observed,
            )
            self._sequence += 1
            self._observations.append(observation)
            self._spill_record(observation.record())
        return observation

    # -- reading ---------------------------------------------------------------------------------
    def snapshot(self) -> tuple[Observation, ...]:
        """The retained observations, oldest first (consistent copy)."""
        with self._lock:
            return tuple(self._observations)

    def observed_queries(self, limit: int | None = None) -> list[ObservedQuery]:
        """Refit-ready execution records, oldest first (newest ``limit``)."""
        observations = self.snapshot()
        if limit is not None and limit >= 0:
            observations = observations[-limit:]
        return [observation.observed for observation in observations]

    def __len__(self) -> int:
        with self._lock:
            return len(self._observations)

    @property
    def sequence(self) -> int:
        """Total observations ever completed (ring evictions included)."""
        with self._lock:
            return self._sequence

    @property
    def pending_count(self) -> int:
        """Predictions currently waiting for execution feedback."""
        with self._lock:
            return self._n_pending

    @property
    def dropped_pending(self) -> int:
        """Predictions evicted before feedback arrived (capacity pressure)."""
        with self._lock:
            return self._dropped_pending

    @property
    def unmatched_completions(self) -> int:
        """Execution results that arrived with no parked prediction."""
        with self._lock:
            return self._unmatched_completions

    # -- spill -----------------------------------------------------------------------------------
    def _spill_record(self, record: dict[str, object]) -> None:
        """Append one JSONL line (caller holds the lock)."""
        if self.spill_path is None:
            return
        try:
            if self._spill is None:
                self.spill_path.parent.mkdir(parents=True, exist_ok=True)
                self._spill = self.spill_path.open("a", encoding="utf-8")
            self._spill.write(json.dumps(record, sort_keys=True) + "\n")
            self._spill.flush()
        except OSError as exc:
            _LOGGER.warning(
                "observation spill to %s failed (%s); disabling spill",
                self.spill_path,
                exc,
            )
            self.spill_path = None
            self._spill = None

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        with self._lock:
            if self._spill is not None:
                try:
                    self._spill.close()
                except OSError as exc:
                    _LOGGER.warning("closing observation spill failed: %s", exc)
                self._spill = None

    def __enter__(self) -> "ObservationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
