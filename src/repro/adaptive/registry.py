"""An immutable, versioned model registry over the artifact codec.

The registry is a directory of promoted and candidate model artifacts —
the audit trail the adaptive loop swaps through:

.. code-block:: text

    registry-root/
        registry.json          # index: versions, active pointer, event log
        v0001/
            model.bin          # versioned CRC-checked codec artifact
            manifest.json      # checksum, corpus fingerprint, train metrics
        v0002/
            ...

Artifacts are written exactly once through the existing codec
(:meth:`~repro.core.estimator.ResourceEstimator.save`) and never mutated;
every registration captures a :class:`ModelManifest` with the artifact's
SHA-256 checksum, its codec format version, a fingerprint of the training
corpus it was fitted from and its metrics at train time.  Promotion moves
the ``active`` pointer and appends to the event log; rejected candidates
(failed validation or canary) stay on disk with status ``rejected`` so a
failed promotion is a recorded fact, not a deleted file.

Index and manifest writes go through a temp-file + :func:`os.replace`
rename, so a crashed writer never leaves a half-written JSON behind.  No
manifest field carries wall-clock time — a seeded run produces the same
registry byte-for-byte, matching the repository's determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.core.estimator import ResourceEstimator
from repro.core.serialization import read_artifact_version

__all__ = [
    "ModelManifest",
    "ModelRegistry",
    "RegistryError",
    "corpus_fingerprint",
    "manifest_for_artifact",
]

_LOGGER = logging.getLogger("repro.adaptive.registry")

#: File names inside a registry root / version directory.
_INDEX_NAME = "registry.json"
_MANIFEST_NAME = "manifest.json"
_ARTIFACT_NAME = "model.bin"

#: Manifest lifecycle states.
_STATUSES = ("candidate", "active", "retired", "rejected")


class RegistryError(ValueError):
    """Raised for unknown versions, duplicate ids and malformed registries."""


@dataclass(frozen=True)
class ModelManifest:
    """The immutable metadata recorded for one registered model version."""

    version: str
    #: SHA-256 of the artifact bytes as written.
    checksum: str
    #: Codec format version of the artifact (``read_artifact_version``).
    artifact_version: int
    #: Fingerprint of the training corpus (:func:`corpus_fingerprint`).
    corpus: dict[str, object] = field(default_factory=dict)
    #: Metrics at train time, ``{resource: {metric: value}}``.
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Version this model was refit to replace (``None`` for the seed model).
    parent: str | None = None
    status: str = "candidate"
    note: str = ""

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise RegistryError(
                f"unknown manifest status {self.status!r}; known: {_STATUSES}"
            )

    def to_json(self) -> dict[str, object]:
        return dict(asdict(self))

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "ModelManifest":
        return cls(
            version=str(payload["version"]),
            checksum=str(payload["checksum"]),
            artifact_version=int(payload["artifact_version"]),  # type: ignore[arg-type]
            corpus=dict(payload.get("corpus", {})),  # type: ignore[arg-type]
            metrics={
                str(resource): {str(k): float(v) for k, v in values.items()}
                for resource, values in dict(payload.get("metrics", {})).items()  # type: ignore[arg-type]
            },
            parent=None if payload.get("parent") is None else str(payload["parent"]),
            status=str(payload.get("status", "candidate")),
            note=str(payload.get("note", "")),
        )


def corpus_fingerprint(
    queries: object, mode: object = None, name: str | None = None
) -> dict[str, object]:
    """A compact, deterministic fingerprint of a training corpus.

    Accepts a :class:`~repro.api.TrainingCorpus` (or anything exposing
    ``queries``/``mode``/``name``); alternatively a plain sequence of
    :class:`~repro.workloads.runner.ObservedQuery` plus explicit ``mode`` and
    ``name``.  The digest hashes the ordered query names and templates, so
    two corpora built from the same observations fingerprint identically.
    """
    corpus_queries = getattr(queries, "queries", queries)
    corpus_mode = mode if mode is not None else getattr(queries, "mode", None)
    corpus_name = name if name is not None else str(getattr(queries, "name", "corpus"))
    names = [
        f"{query.query.name}\t{query.template}" for query in corpus_queries  # type: ignore[union-attr]
    ]
    digest = hashlib.sha256("\n".join(names).encode("utf-8")).hexdigest()
    return {
        "name": corpus_name,
        "mode": getattr(corpus_mode, "value", str(corpus_mode)),
        "n_queries": len(names),
        "n_operators": sum(
            len(query.operators) for query in corpus_queries  # type: ignore[union-attr]
        ),
        "digest": digest,
    }


class ModelRegistry:
    """Directory-backed registry of immutable model versions.

    Thread-safe: the background retrain controller registers and promotes
    while CLI readers list and diff.  All mutation happens under one lock
    and lands on disk through atomic renames.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._index = self._load_index()

    # -- registration ----------------------------------------------------------------------------
    def register(
        self,
        estimator: ResourceEstimator,
        corpus: dict[str, object] | None = None,
        metrics: dict[str, dict[str, float]] | None = None,
        parent: str | None = None,
        note: str = "",
    ) -> ModelManifest:
        """Persist ``estimator`` as the next immutable version (status candidate)."""
        with self._lock:
            sequence = int(self._index["next"])  # type: ignore[arg-type]
            version = f"v{sequence:04d}"
            if parent is not None and parent not in self.versions():
                raise RegistryError(f"unknown parent version {parent!r}")
            version_dir = self.root / version
            version_dir.mkdir(parents=True, exist_ok=False)
            artifact = version_dir / _ARTIFACT_NAME
            estimator.save(artifact)
            manifest = ModelManifest(
                version=version,
                checksum=_sha256(artifact),
                artifact_version=read_artifact_version(artifact),
                corpus=dict(corpus or {}),
                metrics={k: dict(v) for k, v in (metrics or {}).items()},
                parent=parent,
                status="candidate",
                note=note,
            )
            _write_json(version_dir / _MANIFEST_NAME, manifest.to_json())
            self._index["next"] = sequence + 1
            versions = list(self._index["versions"])  # type: ignore[arg-type]
            versions.append(version)
            self._index["versions"] = versions
            self._record_event("register", version, note)
            self._save_index()
            _LOGGER.info("registered model %s (checksum %s)", version, manifest.checksum[:12])
            return manifest

    def promote(self, version: str, note: str = "") -> ModelManifest:
        """Make ``version`` the active model; the previous active retires."""
        with self._lock:
            manifest = self.manifest(version)
            if manifest.status == "rejected":
                raise RegistryError(f"cannot promote rejected version {version}")
            previous = self.active
            if previous is not None and previous != version:
                prior = self.manifest(previous)
                self._write_manifest(replace(prior, status="retired"))
            self._write_manifest(replace(manifest, status="active", note=note or manifest.note))
            self._index["active"] = version
            self._record_event("promote", version, note)
            self._save_index()
            _LOGGER.info("promoted model %s (previous active: %s)", version, previous)
            return self.manifest(version)

    def record_rejection(self, version: str, reason: str) -> ModelManifest:
        """Mark a candidate as rejected (failed validation or canary)."""
        with self._lock:
            manifest = self.manifest(version)
            if manifest.status == "active":
                raise RegistryError(f"cannot reject the active version {version}")
            self._write_manifest(replace(manifest, status="rejected", note=reason))
            self._record_event("reject", version, reason)
            self._save_index()
            _LOGGER.warning("rejected model %s: %s", version, reason)
            return self.manifest(version)

    # -- reading ---------------------------------------------------------------------------------
    def versions(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._index["versions"])  # type: ignore[arg-type]

    @property
    def active(self) -> str | None:
        with self._lock:
            active = self._index.get("active")
            return None if active is None else str(active)

    def manifest(self, version: str) -> ModelManifest:
        path = self.root / version / _MANIFEST_NAME
        if version not in self.versions() or not path.exists():
            raise RegistryError(f"unknown model version {version!r}")
        return ModelManifest.from_json(_read_json(path))

    def artifact_path(self, version: str) -> Path:
        path = self.root / version / _ARTIFACT_NAME
        if version not in self.versions() or not path.exists():
            raise RegistryError(f"unknown model version {version!r}")
        return path

    def events(self) -> tuple[dict[str, object], ...]:
        """The append-only event log (register / promote / reject), oldest first."""
        with self._lock:
            return tuple(dict(event) for event in self._index["events"])  # type: ignore[arg-type]

    def diff(self, a: str, b: str) -> dict[str, object]:
        """Structured comparison of two versions (the ``models diff`` payload)."""
        left, right = self.manifest(a), self.manifest(b)
        metric_delta: dict[str, dict[str, float]] = {}
        for resource in sorted(set(left.metrics) | set(right.metrics)):
            lhs = left.metrics.get(resource, {})
            rhs = right.metrics.get(resource, {})
            # Deltas only where both sides measured the metric; raw per-side
            # values travel alongside for one-sided reporting.
            metric_delta[resource] = {
                metric: rhs[metric] - lhs[metric]
                for metric in sorted(set(lhs) & set(rhs))
            }
        return {
            "metrics": {"a": dict(left.metrics), "b": dict(right.metrics)},
            "a": a,
            "b": b,
            "identical_artifacts": left.checksum == right.checksum,
            "status": {"a": left.status, "b": right.status},
            "corpus_changed": left.corpus.get("digest") != right.corpus.get("digest"),
            "corpus": {"a": left.corpus, "b": right.corpus},
            "metrics_delta": metric_delta,
            "lineage": {"a_parent": left.parent, "b_parent": right.parent},
        }

    # -- internals -------------------------------------------------------------------------------
    def _write_manifest(self, manifest: ModelManifest) -> None:
        _write_json(self.root / manifest.version / _MANIFEST_NAME, manifest.to_json())

    def _record_event(self, kind: str, version: str, note: str) -> None:
        events = list(self._index["events"])  # type: ignore[arg-type]
        events.append(
            {"sequence": len(events), "event": kind, "version": version, "note": note}
        )
        self._index["events"] = events

    def _load_index(self) -> dict[str, object]:
        path = self.root / _INDEX_NAME
        if not path.exists():
            return {"versions": [], "active": None, "events": [], "next": 1}
        payload = _read_json(path)
        for key in ("versions", "events", "next"):
            if key not in payload:
                raise RegistryError(f"malformed registry index {path}: missing {key!r}")
        return payload

    def _save_index(self) -> None:
        _write_json(self.root / _INDEX_NAME, self._index)


def manifest_for_artifact(path: str | Path) -> ModelManifest | None:
    """The registry manifest of an artifact, if it lives inside a registry.

    ``models inspect`` calls this on any artifact path: when the file sits
    in a ``<registry>/<version>/`` directory (sibling ``manifest.json``,
    grandparent ``registry.json``), the manifest is returned; plain
    artifacts return ``None``.
    """
    artifact = Path(path)
    manifest_path = artifact.parent / _MANIFEST_NAME
    index_path = artifact.parent.parent / _INDEX_NAME
    if not manifest_path.exists() or not index_path.exists():
        return None
    try:
        return ModelManifest.from_json(_read_json(manifest_path))
    except (OSError, ValueError, KeyError) as exc:
        _LOGGER.warning("unreadable registry manifest %s: %s", manifest_path, exc)
        return None


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _read_json(path: Path) -> dict[str, object]:
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise RegistryError(f"{path} does not contain a JSON object")
    return payload


def _write_json(path: Path, payload: dict[str, object]) -> None:
    """Atomic JSON write: temp file in the same directory, then rename."""
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
