"""TPC-DS workload builder (cross-schema generalisation test set)."""

from __future__ import annotations

from repro.catalog.tpcds import build_tpcds_catalog
from repro.engine.hardware import HardwareProfile
from repro.query.tpcds_templates import tpcds_template_set
from repro.workloads.runner import ObservedWorkload, WorkloadRunner

__all__ = ["build_tpcds_workload"]


def build_tpcds_workload(
    scale_factor: float = 1.0,
    skew_z: float = 0.8,
    n_queries: int = 100,
    seed: int = 100,
    hardware: HardwareProfile | None = None,
) -> ObservedWorkload:
    """Run a TPC-DS workload (the paper uses >100 randomly chosen queries)."""
    catalog = build_tpcds_catalog(scale_factor=scale_factor, skew_z=skew_z)
    runner = WorkloadRunner(catalog, hardware=hardware)
    name = f"tpcds_sf{scale_factor:g}"
    return runner.run_templates(tpcds_template_set(), n_queries, seed=seed, workload_name=name)
