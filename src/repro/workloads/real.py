"""Workload builders for the two synthetic "real-life" decision-support sets.

Query counts default to the paper's (Real-1: 222 queries, Real-2: 887
queries) scaled down by the experiment configuration where appropriate; the
schemas and join depths match the paper's description (see
:mod:`repro.catalog.real`).
"""

from __future__ import annotations

from repro.catalog.real import build_real1_catalog, build_real2_catalog
from repro.engine.hardware import HardwareProfile
from repro.query.real_templates import real1_template_set, real2_template_set
from repro.workloads.runner import ObservedWorkload, WorkloadRunner

__all__ = ["build_real1_workload", "build_real2_workload"]


def build_real1_workload(
    n_queries: int = 222,
    skew_z: float = 1.2,
    seed: int = 200,
    hardware: HardwareProfile | None = None,
) -> ObservedWorkload:
    """Run the Real-1 sales/reporting workload (5-8 joins per query)."""
    catalog = build_real1_catalog(skew_z=skew_z)
    runner = WorkloadRunner(catalog, hardware=hardware)
    return runner.run_templates(
        real1_template_set(), n_queries, seed=seed, workload_name="real1"
    )


def build_real2_workload(
    n_queries: int = 887,
    skew_z: float = 1.4,
    seed: int = 300,
    hardware: HardwareProfile | None = None,
) -> ObservedWorkload:
    """Run the Real-2 ERP workload (~12 joins per query)."""
    catalog = build_real2_catalog(skew_z=skew_z)
    runner = WorkloadRunner(catalog, hardware=hardware)
    return runner.run_templates(
        real2_template_set(), n_queries, seed=seed, workload_name="real2"
    )
