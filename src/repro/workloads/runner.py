"""Running workloads through the planner and the engine simulator.

The runner is the library's equivalent of "execute the training queries on
the server and collect counters": for every query it builds the physical
plan, extracts per-operator features in both feature modes, simulates the
execution, and stores everything in plain dataclasses that the estimation
techniques and the experiment harness consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.engine.executor import ExecutionResult, QueryExecutor
from repro.engine.hardware import HardwareProfile
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.features.extractor import FeatureExtractor
from repro.optimizer.planner import Planner, PlannerConfig
from repro.plan.plan import QueryPlan
from repro.query.spec import QuerySpec
from repro.query.templates import TemplateSet

__all__ = [
    "ObservedOperator",
    "ObservedQuery",
    "ObservedWorkload",
    "WorkloadRunner",
    "observe_execution",
]


@dataclass
class ObservedOperator:
    """One operator instance: features (both modes) plus observed resources."""

    family: OperatorFamily
    exact_features: dict[str, float]
    estimated_features: dict[str, float]
    actual_cpu_us: float
    actual_logical_io: float
    pipeline: int
    node_id: int

    def features(self, mode: FeatureMode) -> dict[str, float]:
        if mode is FeatureMode.EXACT:
            return self.exact_features
        return self.estimated_features

    def actual(self, resource: str) -> float:
        if resource == "cpu":
            return self.actual_cpu_us
        if resource == "io":
            return self.actual_logical_io
        raise ValueError(f"unknown resource {resource!r}")


@dataclass
class ObservedQuery:
    """One executed query: its plan, operators and query-level totals."""

    query: QuerySpec
    plan: QueryPlan
    operators: list[ObservedOperator]
    total_cpu_us: float
    total_logical_io: float
    optimizer_cost: float

    @property
    def template(self) -> str:
        return self.query.template

    def actual(self, resource: str) -> float:
        if resource == "cpu":
            return self.total_cpu_us
        if resource == "io":
            return self.total_logical_io
        raise ValueError(f"unknown resource {resource!r}")


@dataclass
class ObservedWorkload:
    """A named collection of observed queries over one catalog."""

    name: str
    catalog: Catalog
    queries: list[ObservedQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def extend(self, other: "ObservedWorkload") -> "ObservedWorkload":
        """Append another workload's queries (used for multi-scale TPC-H)."""
        self.queries.extend(other.queries)
        return self

    def templates(self) -> list[str]:
        return sorted({q.template for q in self.queries})

    def operators(self) -> list[ObservedOperator]:
        return [op for query in self.queries for op in query.operators]

    def plans(self) -> list[QueryPlan]:
        """All query plans in workload order (the batch-estimation input)."""
        return [query.plan for query in self.queries]


class WorkloadRunner:
    """Plans and "executes" query workloads against one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsCatalog | None = None,
        hardware: HardwareProfile | None = None,
        planner_config: PlannerConfig | None = None,
        noise: bool = True,
    ) -> None:
        self.catalog = catalog
        self.statistics = statistics or StatisticsCatalog(catalog)
        self.planner = Planner(catalog, self.statistics, planner_config)
        self.executor = QueryExecutor(hardware=hardware, noise=noise)
        self._exact_extractor = FeatureExtractor(FeatureMode.EXACT)
        self._estimated_extractor = FeatureExtractor(FeatureMode.ESTIMATED)

    # -- public API ------------------------------------------------------------------------------
    def run_queries(self, queries: list[QuerySpec], workload_name: str) -> ObservedWorkload:
        """Plan and execute a list of query specs."""
        workload = ObservedWorkload(name=workload_name, catalog=self.catalog)
        for query in queries:
            workload.queries.append(self.run_query(query))
        return workload

    def run_templates(
        self, templates: TemplateSet, n_queries: int, seed: int = 0, workload_name: str | None = None
    ) -> ObservedWorkload:
        """Instantiate ``n_queries`` from ``templates`` and execute them."""
        queries = templates.generate(self.catalog, n_queries, seed=seed)
        return self.run_queries(queries, workload_name or templates.name)

    def run_query(self, query: QuerySpec) -> ObservedQuery:
        """Plan, execute and featurise a single query."""
        plan = self.planner.plan(query)
        result = self.executor.execute(plan)
        return self._observe(plan, result)

    # -- internals ----------------------------------------------------------------------------------
    def _observe(self, plan: QueryPlan, result: ExecutionResult) -> ObservedQuery:
        return observe_execution(
            plan, result, self._exact_extractor, self._estimated_extractor
        )


def observe_execution(
    plan: QueryPlan,
    result: ExecutionResult,
    exact_extractor: FeatureExtractor | None = None,
    estimated_extractor: FeatureExtractor | None = None,
) -> ObservedQuery:
    """Join a plan with its execution feedback into an :class:`ObservedQuery`.

    This is the single place a ``(plan, ExecutionResult)`` pair becomes the
    feature-annotated observation every training path consumes — the
    :class:`WorkloadRunner` uses it for offline workloads and the adaptive
    serving loop (:mod:`repro.adaptive`) uses it to turn live execution
    feedback into refit-ready training rows.  Extractors default to fresh
    ones; long-lived callers pass their own to reuse extraction state.
    """
    exact_extractor = exact_extractor or FeatureExtractor(FeatureMode.EXACT)
    estimated_extractor = estimated_extractor or FeatureExtractor(FeatureMode.ESTIMATED)
    exact = exact_extractor.extract_plan(plan)
    estimated = estimated_extractor.extract_plan(plan)
    operators: list[ObservedOperator] = []
    for obs in result.observations:
        node_id = obs.node_id
        operators.append(
            ObservedOperator(
                family=exact[node_id].family,
                exact_features=exact[node_id].values,
                estimated_features=estimated[node_id].values,
                actual_cpu_us=obs.actual_cpu_us,
                actual_logical_io=obs.actual_logical_io,
                pipeline=obs.pipeline,
                node_id=node_id,
            )
        )
    return ObservedQuery(
        query=plan.query,
        plan=plan,
        operators=operators,
        total_cpu_us=result.total_cpu_us,
        total_logical_io=result.total_logical_io,
        optimizer_cost=plan.total_estimated_cost,
    )
