"""TPC-H workload builders (training workload of every experiment).

The paper's main training set is >2500 TPC-H queries generated with QGEN on
skewed data, executed over databases at scale factors 1–10.  The builders
here mirror that: queries are instantiated from the TPC-H templates and run
against multiple catalogs built at different scale factors, so that training
data contains the same template at very different data sizes.

The *default* scale factors used by the library are smaller than the paper's
(the simulator is exact, not sampled, so nothing is gained by huge tables,
and the experiment suite should run on a laptop); the experiment
configuration can raise them to paper scale.
"""

from __future__ import annotations

from repro.catalog.tpch import build_tpch_catalog
from repro.engine.hardware import HardwareProfile
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.runner import ObservedWorkload, WorkloadRunner

__all__ = ["build_tpch_workload", "build_tpch_multi_scale_workload"]


def build_tpch_workload(
    scale_factor: float = 1.0,
    skew_z: float = 1.0,
    n_queries: int = 120,
    seed: int = 0,
    hardware: HardwareProfile | None = None,
) -> ObservedWorkload:
    """Run a TPC-H workload at a single scale factor."""
    catalog = build_tpch_catalog(scale_factor=scale_factor, skew_z=skew_z)
    runner = WorkloadRunner(catalog, hardware=hardware)
    name = f"tpch_sf{scale_factor:g}"
    return runner.run_templates(tpch_template_set(), n_queries, seed=seed, workload_name=name)


def build_tpch_multi_scale_workload(
    scale_factors: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0),
    skew_z: float = 2.0,
    queries_per_scale: int = 90,
    seed: int = 0,
    hardware: HardwareProfile | None = None,
) -> ObservedWorkload:
    """Run the same template set over several scale factors and merge.

    This mirrors the paper's training workload (TPC-H with skew Z=2, scale
    factors 1–10): the same templates appear at different data sizes, which
    is what gives the in-distribution experiments their within-template
    variance and the data-size generalisation experiments their small/large
    partitions.
    """
    if not scale_factors:
        raise ValueError("scale_factors must not be empty")
    merged: ObservedWorkload | None = None
    for i, scale_factor in enumerate(scale_factors):
        workload = build_tpch_workload(
            scale_factor=scale_factor,
            skew_z=skew_z,
            n_queries=queries_per_scale,
            seed=seed + i,
            hardware=hardware,
        )
        if merged is None:
            merged = ObservedWorkload(name="tpch_multi_scale", catalog=workload.catalog)
        merged.extend(workload)
    assert merged is not None
    return merged
