"""Dataset utilities: train/test splits and per-family training matrices."""

from __future__ import annotations

import numpy as np

from repro.core.trainer import FamilyTrainingData
from repro.data.rng import make_rng
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.workloads.runner import ObservedQuery, ObservedWorkload

__all__ = [
    "split_workload",
    "build_training_data",
    "group_operator_features",
    "filter_by_template",
]


def split_workload(
    workload: ObservedWorkload,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> tuple[list[ObservedQuery], list[ObservedQuery]]:
    """Random train/test split of a workload's queries.

    The split is by *query* (never by operator), so no operator instance of a
    test query ever leaks into training — matching the paper's setup where
    train and test sets never share an identical query.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = make_rng(seed, "split", workload.name)
    indices = rng.permutation(len(workload.queries))
    n_train = int(round(train_fraction * len(indices)))
    n_train = min(max(n_train, 1), len(indices) - 1) if len(indices) > 1 else len(indices)
    train_idx = set(int(i) for i in indices[:n_train])
    train = [q for i, q in enumerate(workload.queries) if i in train_idx]
    test = [q for i, q in enumerate(workload.queries) if i not in train_idx]
    return train, test


def build_training_data(
    queries: list[ObservedQuery],
    mode: FeatureMode = FeatureMode.EXACT,
) -> dict[OperatorFamily, FamilyTrainingData]:
    """Assemble per-operator-family training data from observed queries."""
    data: dict[OperatorFamily, FamilyTrainingData] = {}
    for query in queries:
        for op in query.operators:
            family_data = data.setdefault(op.family, FamilyTrainingData(family=op.family))
            family_data.add(
                op.features(mode),
                {"cpu": op.actual_cpu_us, "io": op.actual_logical_io},
            )
    return data


def group_operator_features(
    queries: list[ObservedQuery],
    mode: FeatureMode = FeatureMode.EXACT,
) -> dict[OperatorFamily, tuple[list[dict[str, float]], np.ndarray]]:
    """Group the operators of observed queries by family for batch estimation.

    Returns, per family, the feature dictionaries of its operator instances
    (in workload order) plus the index of the query each instance belongs to,
    so batched per-family predictions can be scattered back to per-query
    totals with one ``np.bincount`` per family.
    """
    grouped: dict[OperatorFamily, tuple[list[dict[str, float]], list[int]]] = {}
    for query_index, query in enumerate(queries):
        for op in query.operators:
            rows, owners = grouped.setdefault(op.family, ([], []))
            rows.append(op.features(mode))
            owners.append(query_index)
    return {
        family: (rows, np.asarray(owners, dtype=np.int64))
        for family, (rows, owners) in grouped.items()
    }


def filter_by_template(
    workload: ObservedWorkload, templates: list[str]
) -> list[ObservedQuery]:
    """Queries of a workload whose template is in ``templates``."""
    allowed = set(templates)
    return [q for q in workload.queries if q.template in allowed]
