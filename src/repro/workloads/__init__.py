"""Workload assembly: generate queries, plan them, "execute" them, and turn
the observations into training/test datasets for the estimation techniques.

A :class:`~repro.workloads.runner.ObservedQuery` bundles one query's plan,
its per-operator feature vectors (exact and optimizer-estimated) and the
actual resource usage observed by the engine simulator.  Collections of
observed queries (:class:`~repro.workloads.runner.ObservedWorkload`) are the
unit the experiment harness trains and evaluates on.
"""

from repro.workloads.datasets import build_training_data, split_workload
from repro.workloads.runner import ObservedOperator, ObservedQuery, ObservedWorkload, WorkloadRunner
from repro.workloads.real import build_real1_workload, build_real2_workload
from repro.workloads.tpch import build_tpch_workload, build_tpch_multi_scale_workload
from repro.workloads.tpcds import build_tpcds_workload

__all__ = [
    "build_training_data",
    "split_workload",
    "ObservedOperator",
    "ObservedQuery",
    "ObservedWorkload",
    "WorkloadRunner",
    "build_real1_workload",
    "build_real2_workload",
    "build_tpch_workload",
    "build_tpch_multi_scale_workload",
    "build_tpcds_workload",
]
