"""Weighted serving scenarios over the benchmark template sweeps.

A :class:`Scenario` names one kind of request traffic: a pool of planned
queries (a TPC-H or TPC-DS template sweep), how many plans one request
carries, which resources it asks for, and a relative weight in the overall
mix.  The load generator (:mod:`repro.serving.loadgen`) draws requests from
a weighted mix of scenarios with a seeded generator, in the shape of the
weighted-template / queries-per-second workload-generator exemplars the
ROADMAP points at.

Plan pools are planned once up front — the load harness measures the
*serving* layer, so planning stays out of the request path (exactly like a
plan-handle cache in front of a real optimiser).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpcds import build_tpcds_catalog
from repro.catalog.tpch import build_tpch_catalog
from repro.optimizer.planner import Planner
from repro.plan.plan import QueryPlan
from repro.query.tpcds_templates import tpcds_template_set
from repro.query.tpch_templates import tpch_template_set

__all__ = [
    "Scenario",
    "tpch_plan_pool",
    "tpcds_plan_pool",
    "standard_scenarios",
    "SCENARIO_MIXES",
]


@dataclass(frozen=True)
class Scenario:
    """One weighted request pattern in a serving workload mix."""

    name: str
    #: Relative frequency in the mix (normalised across scenarios).
    weight: float
    #: Pre-planned query pool requests draw from (with replacement).
    plans: tuple[QueryPlan, ...] = field(repr=False)
    #: Plans per request (1 = interactive what-if call, >1 = batched caller).
    plans_per_request: int = 1
    #: Resources each request asks for; ``None`` means every served resource.
    resources: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.weight <= 0.0:
            raise ValueError(f"scenario {self.name!r}: weight must be > 0")
        if not self.plans:
            raise ValueError(f"scenario {self.name!r}: plan pool is empty")
        if self.plans_per_request < 1:
            raise ValueError(f"scenario {self.name!r}: plans_per_request must be >= 1")


def tpch_plan_pool(
    n_queries: int = 96,
    seed: int = 101,
    scale_factor: float = 0.1,
    skew_z: float = 1.0,
) -> tuple[QueryPlan, ...]:
    """A planned TPC-H template sweep to draw serving requests from."""
    catalog = build_tpch_catalog(scale_factor=scale_factor, skew_z=skew_z)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    queries = tpch_template_set().generate(catalog, n_queries, seed=seed)
    return tuple(planner.plan(query) for query in queries)


def tpcds_plan_pool(
    n_queries: int = 96,
    seed: int = 103,
    scale_factor: float = 0.1,
    skew_z: float = 0.8,
) -> tuple[QueryPlan, ...]:
    """A planned TPC-DS template sweep (the cross-schema traffic source)."""
    catalog = build_tpcds_catalog(scale_factor=scale_factor, skew_z=skew_z)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    queries = tpcds_template_set().generate(catalog, n_queries, seed=seed)
    return tuple(planner.plan(query) for query in queries)


#: Named mixes ``standard_scenarios`` can build; ``tpch`` is the default
#: (in-distribution traffic only), ``mixed`` adds cross-schema TPC-DS
#: requests, which typically serve OOD-flagged but still bounded estimates.
SCENARIO_MIXES: tuple[str, ...] = ("tpch", "mixed")


def standard_scenarios(
    mix: str = "tpch",
    pool_size: int = 96,
    seed: int = 101,
    scale_factor: float = 0.1,
) -> tuple[Scenario, ...]:
    """The stock scenario mixes used by ``repro serve-bench`` and CI smoke.

    ``tpch``: 70% interactive single-plan requests and 30% batched 8-plan
    requests (an admission-control caller costing a queue at once), both
    over one TPC-H sweep.  ``mixed`` splits the same shape across TPC-H and
    TPC-DS pools to exercise heterogeneous concurrent traffic.
    """
    if mix not in SCENARIO_MIXES:
        raise ValueError(f"unknown scenario mix {mix!r}; known: {SCENARIO_MIXES}")
    tpch_pool = tpch_plan_pool(
        n_queries=pool_size, seed=seed, scale_factor=scale_factor
    )
    if mix == "tpch":
        return (
            Scenario("tpch-interactive", 0.7, tpch_pool, plans_per_request=1),
            Scenario("tpch-batch8", 0.3, tpch_pool, plans_per_request=8),
        )
    tpcds_pool = tpcds_plan_pool(
        n_queries=pool_size, seed=seed + 2, scale_factor=scale_factor
    )
    return (
        Scenario("tpch-interactive", 0.45, tpch_pool, plans_per_request=1),
        Scenario("tpch-batch8", 0.15, tpch_pool, plans_per_request=8),
        Scenario("tpcds-interactive", 0.3, tpcds_pool, plans_per_request=1),
        Scenario("tpcds-batch4", 0.1, tpcds_pool, plans_per_request=4),
    )
