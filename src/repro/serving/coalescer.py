"""Micro-batch coalescing over a thread-safe :class:`EstimationService`.

The paper's deployment argument (Section 7.3) prices a *resident* model at
microseconds per prediction — but that number is only reachable when many
concurrent callers share one vectorised evaluation.  A single
``estimate_query`` call pays the full per-call overhead (grouping, matrix
build, one kernel launch per family) for one plan; the batched
``estimate_workload`` path amortises that overhead over hundreds of rows.

:class:`ConcurrentEstimationService` closes that gap for concurrent
traffic: callers submit requests into a thread-safe queue, a single worker
thread drains the queue into **micro-batches** (closed by whichever comes
first: ``max_batch_size`` coalesced plans, or ``max_wait_ms`` elapsed since
the batch opened), serves each batch with one
:meth:`~repro.api.EstimationService.estimate_workload` call riding the
vectorised ``extract_plans`` → ``FlatForest.predict_batch`` path, and
demultiplexes the batched :class:`~repro.core.estimator.WorkloadEstimate`
back to per-request futures.

Model evaluation is row-independent (per-row model selection, per-row tree
descent), so a plan's estimate does not depend on which other plans share
its matrix — coalesced results are **bit-identical** to direct
``estimate_workload`` calls.  ``max_wait_ms`` bounds the queue latency any
request can pay on top of its batch's service time.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.api.service import EstimationObserver, EstimationService
from repro.core.estimator import WorkloadEstimate
from repro.features.definitions import OperatorFamily, operator_family
from repro.plan.plan import QueryPlan
from repro.robustness.degradation import DegradationReport
from repro.robustness.validation import PlanValidationError

__all__ = ["CoalescingStats", "ConcurrentEstimationService"]

_LOGGER = logging.getLogger("repro.serving.coalescer")

#: Sentinel enqueued by :meth:`ConcurrentEstimationService.close`.
_SHUTDOWN = object()


@dataclass(frozen=True)
class CoalescingStats:
    """Point-in-time coalescing counters of one serving front."""

    #: Micro-batches served so far.
    batches: int
    #: Requests demultiplexed out of those batches.
    requests: int
    #: Plans that rode those batches.
    plans: int
    #: Deepest request queue observed at submit time.
    max_queue_depth: int
    #: Worst batch service time (close -> demux complete) observed, in ms —
    #: the empirical bound on what any single micro-batch cost under load.
    max_service_ms: float = 0.0

    @property
    def mean_requests_per_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_plans_per_batch(self) -> float:
        return self.plans / self.batches if self.batches else 0.0


class _Request:
    """One pending ``estimate_workload`` call travelling through the queue."""

    __slots__ = ("plans", "resources", "future", "submitted_at")

    def __init__(
        self,
        plans: list[QueryPlan],
        resources: tuple[str, ...],
        submitted_at: float,
    ) -> None:
        self.plans = plans
        self.resources = resources
        self.future: Future[WorkloadEstimate] = Future()
        self.submitted_at = submitted_at


class ConcurrentEstimationService:
    """A concurrent serving front that coalesces calls into micro-batches.

    Wraps a (thread-safe) :class:`~repro.api.EstimationService`; any number
    of caller threads may :meth:`submit` or :meth:`estimate_workload`
    concurrently.  The wrapped service stays fully usable directly — e.g.
    :meth:`~repro.api.EstimationService.swap_artifact` hot-swaps the model
    under live coalesced traffic.

    The worker thread starts lazily on the first submit; :meth:`close`
    drains outstanding requests and stops it.  Usable as a context manager.
    """

    def __init__(
        self,
        service: EstimationService,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
    ) -> None:
        if not isinstance(service, EstimationService):
            raise TypeError(
                "ConcurrentEstimationService fronts an EstimationService; got "
                f"{type(service).__name__}"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        self.service = service
        #: Coalesced-plan budget that closes a micro-batch.
        self.max_batch_size = int(max_batch_size)
        #: Longest a batch stays open waiting for more requests.
        self.max_wait_ms = float(max_wait_ms)
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._lifecycle = threading.Lock()
        self._worker: threading.Thread | None = None
        self._closed = False
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._requests = 0
        self._plans = 0
        self._max_queue_depth = 0
        self._max_service_ms = 0.0

    # -- lifecycle -------------------------------------------------------------------------------
    def start(self) -> "ConcurrentEstimationService":
        """Start the batching worker (idempotent; submit starts it lazily)."""
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("serving front is closed")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, name="repro-serving-coalescer", daemon=True
                )
                self._worker.start()
        return self

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the worker after serving everything already queued.

        Requests that race past the shutdown marker fail with
        :class:`RuntimeError` instead of hanging.  Idempotent.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if worker is not None:
            self._queue.put(_SHUTDOWN)
            worker.join(timeout)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                item.future.set_exception(
                    RuntimeError("serving front closed before the request ran")
                )

    def __enter__(self) -> "ConcurrentEstimationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- serving ---------------------------------------------------------------------------------
    def submit(
        self,
        plans: Iterable[QueryPlan],
        resources: Sequence[str] | None = None,
    ) -> "Future[WorkloadEstimate]":
        """Enqueue one estimate request; returns a future of its estimate.

        The request is validated eagerly (non-empty, known resources) so
        errors surface in the calling thread, not inside the worker.
        """
        request_plans = list(plans)
        if not request_plans:
            raise ValueError("submit needs at least one plan")
        available = self.service.resources
        resolved = tuple(resources) if resources is not None else available
        for resource in resolved:
            if resource not in available:
                raise ValueError(
                    f"unknown resource {resource!r}; this service models {available}"
                )
        if self._worker is None:
            self.start()
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("serving front is closed")
            request = _Request(request_plans, resolved, time.perf_counter())
            self._queue.put(request)
        depth = self._queue.qsize()
        with self._stats_lock:
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
        return request.future

    def estimate_workload(
        self,
        plans: Iterable[QueryPlan],
        resources: Sequence[str] | None = None,
    ) -> WorkloadEstimate:
        """Blocking submit: coalesces with concurrent callers, then waits."""
        return self.submit(plans, resources).result()

    def estimate_query(self, plan: QueryPlan, resource: str = "cpu") -> float:
        """Query-level estimate for one plan through the coalesced path."""
        return self.estimate_workload([plan], (resource,)).query(0, resource)

    # -- observation -----------------------------------------------------------------------------
    def add_observer(self, observer: "EstimationObserver") -> None:
        """Register a post-serve observer on the wrapped service.

        Coalesced micro-batches run through the inner service's
        ``estimate_workload``, so an observer registered here sees every
        batch exactly once (as its combined plan list) — the adaptive
        loop's :class:`~repro.adaptive.observation.ObservationLog` parks
        each rider plan's prediction individually from that callback.
        """
        self.service.add_observer(observer)

    def remove_observer(self, observer: "EstimationObserver") -> None:
        """Unregister an observer added via :meth:`add_observer` (idempotent)."""
        self.service.remove_observer(observer)

    def coalescing_stats(self) -> CoalescingStats:
        """Current coalescing counters (consistent copy)."""
        with self._stats_lock:
            return CoalescingStats(
                batches=self._batches,
                requests=self._requests,
                plans=self._plans,
                max_queue_depth=self._max_queue_depth,
                max_service_ms=self._max_service_ms,
            )

    # -- worker ----------------------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            assert isinstance(item, _Request)
            batch = [item]
            n_plans = len(item.plans)
            deadline = time.perf_counter() + self.max_wait_ms / 1000.0
            saw_shutdown = False
            while n_plans < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    saw_shutdown = True
                    break
                assert isinstance(nxt, _Request)
                batch.append(nxt)
                n_plans += len(nxt.plans)
            self._serve_batch(batch, n_plans)
            if saw_shutdown:
                return

    def _serve_batch(self, batch: list[_Request], n_plans: int) -> None:
        served_at = time.perf_counter()
        queue_waits_ms = [
            (served_at - request.submitted_at) * 1000.0 for request in batch
        ]
        all_plans = [plan for request in batch for plan in request.plans]
        union_resources: list[str] = []
        for request in batch:
            for resource in request.resources:
                if resource not in union_resources:
                    union_resources.append(resource)
        try:
            combined = self.service.estimate_workload(
                all_plans, tuple(union_resources)
            )
        except PlanValidationError:
            # Reject mode failed the whole batch; re-serve per request so only
            # the offending caller(s) see the rejection.
            _LOGGER.warning(
                "micro-batch of %d request(s) failed validation; re-serving "
                "requests individually",
                len(batch),
            )
            for request in batch:
                self._serve_single(request)
        except Exception as exc:
            # The error belongs to the callers: every future in the batch
            # carries it (nothing is swallowed), and the worker stays alive
            # for subsequent batches.
            _LOGGER.warning(
                "micro-batch of %d request(s) failed: %s", len(batch), exc
            )
            for request in batch:
                request.future.set_exception(exc)
        else:
            offset = 0
            for request in batch:
                count = len(request.plans)
                request.future.set_result(
                    _slice_estimate(combined, offset, count, request.resources)
                )
                offset += count
        service_ms = (time.perf_counter() - served_at) * 1000.0
        self.service.stats.record_batch(len(batch), n_plans, queue_waits_ms)
        with self._stats_lock:
            self._batches += 1
            self._requests += len(batch)
            self._plans += n_plans
            if service_ms > self._max_service_ms:
                self._max_service_ms = service_ms

    def _serve_single(self, request: _Request) -> None:
        try:
            estimate = self.service.estimate_workload(
                request.plans, request.resources
            )
        except Exception as exc:
            # Not swallowed: logged here, and the future hands the error to
            # the caller.
            _LOGGER.warning(
                "request of %d plan(s) failed: %s", len(request.plans), exc
            )
            request.future.set_exception(exc)
        else:
            request.future.set_result(estimate)


def _slice_estimate(
    combined: WorkloadEstimate,
    offset: int,
    n_plans: int,
    resources: tuple[str, ...],
) -> WorkloadEstimate:
    """The request's own ``WorkloadEstimate``, cut out of a coalesced batch.

    The per-plan estimate dictionaries are **rebuilt in exactly the
    insertion order a direct ``estimate_workload`` call would produce**
    (operator families in first-seen order across the request's plans,
    nodes in plan pre-order within each family).  The float values are
    already identical row-for-row; replaying the direct call's dict order
    additionally makes every order-dependent float summation downstream —
    ``query``/``query_totals``/``pipelines`` — bit-identical too, not just
    equal-per-operator.  The degradation report is re-indexed into the
    request's local plan numbering so it reads exactly like a direct
    call's report.
    """
    stop = offset + n_plans
    plans = combined.plans[offset:stop]
    group_order: dict[OperatorFamily, list[tuple[int, int]]] = {}
    for plan_index, plan in enumerate(plans):
        for op in plan.operators():
            group_order.setdefault(operator_family(op.op_type), []).append(
                (plan_index, op.node_id)
            )
    operator_estimates: dict[str, list[dict[int, float]]] = {}
    for resource in resources:
        source = combined.operator_estimates[resource]
        per_plan: list[dict[int, float]] = [{} for _ in plans]
        for rows in group_order.values():
            for plan_index, node_id in rows:
                per_plan[plan_index][node_id] = source[offset + plan_index][node_id]
        operator_estimates[resource] = per_plan
    degradation: DegradationReport | None = None
    if combined.degradation is not None:
        entries = tuple(
            replace(entry, plan_index=entry.plan_index - offset)
            for entry in combined.degradation.entries
            if offset <= entry.plan_index < stop and entry.resource in resources
        )
        ood_plans = {
            plan_index - offset: score
            for plan_index, score in combined.degradation.ood_plans.items()
            if offset <= plan_index < stop
        }
        degradation = DegradationReport(entries=entries, ood_plans=ood_plans)
    return WorkloadEstimate(
        plans=combined.plans[offset:stop],
        resources=resources,
        operator_estimates=operator_estimates,
        degradation=degradation,
    )
