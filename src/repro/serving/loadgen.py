"""Seeded closed/open-loop load generation against the serving layer.

Two standard load-testing disciplines drive the coalescing front:

* **closed loop** — ``concurrency`` worker threads issue requests
  back-to-back: each worker submits, waits for its estimate, then draws the
  next request.  Offered load adapts to service capacity; the measured rate
  *is* the sustained throughput at that concurrency.
* **open loop** — requests arrive on a fixed schedule at ``qps`` requests
  per second (seeded-exponential inter-arrivals, i.e. a Poisson process)
  regardless of completions, which is how latency SLOs are measured without
  coordinated omission: a slow service visibly builds queue depth instead
  of silently slowing the generator down.

Every run is **deterministic in its seed**: the full request trace —
scenario choice, plan indices, arrival offsets — is generated up front by
:func:`build_trace` from one seeded generator, so the same
:class:`LoadConfig` always offers the same requests in the same order.

The first ``config.warmup`` requests warm caches and the coalescer and are
excluded from the latency/throughput accounting; the remaining
``config.requests`` are the measured window reported as a
:class:`LoadReport` (p50/p95/p99/max latency, sustained throughput,
coalescing and queue-wait statistics).
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.estimator import WorkloadEstimate
from repro.plan.plan import QueryPlan
from repro.serving.coalescer import ConcurrentEstimationService
from repro.serving.scenarios import Scenario

__all__ = [
    "LoadConfig",
    "RequestSpec",
    "LatencySummary",
    "LoadReport",
    "build_trace",
    "run_load",
]

_LOGGER = logging.getLogger("repro.serving.loadgen")

_MODES: tuple[str, ...] = ("closed", "open")


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run, fully determined by its fields."""

    #: ``"closed"`` (fixed concurrency) or ``"open"`` (fixed arrival rate).
    mode: str = "closed"
    #: Measured requests (after warmup).
    requests: int = 1000
    #: Requests served before measurement starts (cache/coalescer warmup).
    warmup: int = 100
    #: Closed-loop worker threads (also the open-loop completion bound).
    concurrency: int = 8
    #: Open-loop arrival rate in requests/second (ignored when closed).
    qps: float = 200.0
    #: Seed of the request trace (scenarios, plan draws, arrivals).
    seed: int = 17

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.mode == "open" and self.qps <= 0.0:
            raise ValueError("open-loop qps must be > 0")


@dataclass(frozen=True)
class RequestSpec:
    """One request of a pre-generated trace."""

    index: int
    scenario: str
    #: Indices into the scenario's plan pool.
    plan_indices: tuple[int, ...]
    #: Arrival offset from run start in seconds (0.0 in closed loop).
    arrival_s: float
    #: Warmup requests are served but excluded from measurement.
    warmup: bool


def build_trace(
    scenarios: Sequence[Scenario], config: LoadConfig
) -> tuple[RequestSpec, ...]:
    """The deterministic request trace of one run (same seed → same trace)."""
    if not scenarios:
        raise ValueError("need at least one scenario")
    rng = np.random.default_rng(config.seed)
    total = config.warmup + config.requests
    weights = np.asarray([s.weight for s in scenarios], dtype=np.float64)
    probabilities = weights / weights.sum()
    chosen = rng.choice(len(scenarios), size=total, p=probabilities)
    if config.mode == "open":
        arrivals = np.cumsum(rng.exponential(1.0 / config.qps, size=total))
    else:
        arrivals = np.zeros(total, dtype=np.float64)
    specs: list[RequestSpec] = []
    for index in range(total):
        scenario = scenarios[int(chosen[index])]
        draws = rng.integers(
            0, len(scenario.plans), size=scenario.plans_per_request
        )
        specs.append(
            RequestSpec(
                index=index,
                scenario=scenario.name,
                plan_indices=tuple(int(draw) for draw in draws),
                arrival_s=float(arrivals[index]),
                warmup=index < config.warmup,
            )
        )
    return tuple(specs)


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency percentiles of one measured window (milliseconds)."""

    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_ms: float

    @classmethod
    def from_samples(cls, samples_ms: np.ndarray) -> "LatencySummary":
        if samples_ms.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        p50, p95, p99 = np.percentile(samples_ms, [50.0, 95.0, 99.0])
        return cls(
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=float(samples_ms.max()),
            mean_ms=float(samples_ms.mean()),
        )


@dataclass(frozen=True)
class LoadReport:
    """Everything one load run measured, ready for JSON or rendering."""

    mode: str
    requests: int
    warmup: int
    concurrency: int
    #: Open-loop offered rate; 0.0 for closed loop (offered = sustained).
    offered_qps: float
    errors: int
    #: Measured window: first measured submit to last measured completion.
    duration_s: float
    #: Sustained request throughput over the measured window.
    throughput_rps: float
    #: Sustained plan throughput (requests carry >= 1 plan each).
    plan_throughput_rps: float
    latency: LatencySummary
    #: Coalescing shape over the whole run (incl. warmup).
    mean_requests_per_batch: float
    mean_plans_per_batch: float
    max_queue_depth: int
    queue_wait_p50_ms: float
    queue_wait_p95_ms: float
    #: Measured requests per scenario name.
    scenario_counts: Mapping[str, int] = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """Flat JSON-ready record (the serve-bench/CI exchange format)."""
        return {
            "mode": self.mode,
            "requests": self.requests,
            "warmup": self.warmup,
            "concurrency": self.concurrency,
            "offered_qps": round(self.offered_qps, 3),
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "plan_throughput_rps": round(self.plan_throughput_rps, 2),
            "latency_p50_ms": round(self.latency.p50_ms, 3),
            "latency_p95_ms": round(self.latency.p95_ms, 3),
            "latency_p99_ms": round(self.latency.p99_ms, 3),
            "latency_max_ms": round(self.latency.max_ms, 3),
            "latency_mean_ms": round(self.latency.mean_ms, 3),
            "mean_requests_per_batch": round(self.mean_requests_per_batch, 2),
            "mean_plans_per_batch": round(self.mean_plans_per_batch, 2),
            "max_queue_depth": self.max_queue_depth,
            "queue_wait_p50_ms": round(self.queue_wait_p50_ms, 3),
            "queue_wait_p95_ms": round(self.queue_wait_p95_ms, 3),
            "scenario_counts": dict(sorted(self.scenario_counts.items())),
        }

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI output)."""
        lines = [
            f"mode: {self.mode} "
            + (
                f"(offered {self.offered_qps:.0f} req/s)"
                if self.mode == "open"
                else f"(concurrency {self.concurrency})"
            ),
            f"measured requests: {self.requests} (+{self.warmup} warmup), "
            f"errors: {self.errors}",
            f"sustained throughput: {self.throughput_rps:,.0f} req/s "
            f"({self.plan_throughput_rps:,.0f} plans/s) over {self.duration_s:.2f}s",
            f"latency (ms): p50={self.latency.p50_ms:.2f} "
            f"p95={self.latency.p95_ms:.2f} p99={self.latency.p99_ms:.2f} "
            f"max={self.latency.max_ms:.2f}",
            f"coalescing: {self.mean_requests_per_batch:.1f} req/batch, "
            f"{self.mean_plans_per_batch:.1f} plans/batch, "
            f"max queue depth {self.max_queue_depth}",
            f"queue wait (ms): p50={self.queue_wait_p50_ms:.2f} "
            f"p95={self.queue_wait_p95_ms:.2f}",
        ]
        if self.scenario_counts:
            mix = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.scenario_counts.items())
            )
            lines.append(f"scenario mix: {mix}")
        return "\n".join(lines)


def run_load(
    server: ConcurrentEstimationService,
    scenarios: Sequence[Scenario],
    config: LoadConfig,
) -> LoadReport:
    """Drive one load run against a coalescing front and measure it."""
    by_name = {scenario.name: scenario for scenario in scenarios}
    if len(by_name) != len(scenarios):
        raise ValueError("scenario names must be unique")
    trace = build_trace(scenarios, config)
    total = len(trace)
    starts = np.zeros(total, dtype=np.float64)
    ends = np.zeros(total, dtype=np.float64)
    failed = np.zeros(total, dtype=bool)

    server.start()
    if config.mode == "closed":
        _run_closed(server, by_name, trace, starts, ends, failed, config)
    else:
        _run_open(server, by_name, trace, starts, ends, failed, config)

    measured = np.asarray([not spec.warmup for spec in trace], dtype=bool)
    completed = measured & ~failed
    latencies_ms = (ends[completed] - starts[completed]) * 1000.0
    window_start = float(starts[measured].min()) if measured.any() else 0.0
    window_end = float(ends[measured].max()) if measured.any() else 0.0
    duration_s = max(window_end - window_start, 1e-9)
    n_measured = int(measured.sum())
    measured_plans = sum(
        len(spec.plan_indices) for spec in trace if not spec.warmup
    )
    scenario_counts: dict[str, int] = {}
    for spec in trace:
        if not spec.warmup:
            scenario_counts[spec.scenario] = scenario_counts.get(spec.scenario, 0) + 1

    coalescing = server.coalescing_stats()
    stats = server.service.stats.snapshot()
    return LoadReport(
        mode=config.mode,
        requests=n_measured,
        warmup=config.warmup,
        concurrency=config.concurrency,
        offered_qps=config.qps if config.mode == "open" else 0.0,
        errors=int(failed[measured].sum()),
        duration_s=duration_s,
        throughput_rps=n_measured / duration_s,
        plan_throughput_rps=measured_plans / duration_s,
        latency=LatencySummary.from_samples(latencies_ms),
        mean_requests_per_batch=coalescing.mean_requests_per_batch,
        mean_plans_per_batch=coalescing.mean_plans_per_batch,
        max_queue_depth=coalescing.max_queue_depth,
        queue_wait_p50_ms=stats.queue_wait_p50_ms,
        queue_wait_p95_ms=stats.queue_wait_p95_ms,
        scenario_counts=scenario_counts,
    )


def _request_plans(
    by_name: Mapping[str, Scenario], spec: RequestSpec
) -> tuple[list[QueryPlan], tuple[str, ...] | None]:
    scenario = by_name[spec.scenario]
    return [scenario.plans[index] for index in spec.plan_indices], scenario.resources


def _run_closed(
    server: ConcurrentEstimationService,
    by_name: Mapping[str, Scenario],
    trace: tuple[RequestSpec, ...],
    starts: np.ndarray,
    ends: np.ndarray,
    failed: np.ndarray,
    config: LoadConfig,
) -> None:
    cursor_lock = threading.Lock()
    cursor = 0

    def worker() -> None:
        nonlocal cursor
        while True:
            with cursor_lock:
                index = cursor
                if index >= len(trace):
                    return
                cursor = index + 1
            spec = trace[index]
            plans, resources = _request_plans(by_name, spec)
            started = time.perf_counter()
            try:
                server.estimate_workload(plans, resources)
            except Exception as exc:
                failed[index] = True
                _LOGGER.warning("request %d failed: %s", index, exc)
            finished = time.perf_counter()
            starts[index] = started
            ends[index] = finished

    threads = [
        threading.Thread(target=worker, name=f"repro-loadgen-{i}", daemon=True)
        for i in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _run_open(
    server: ConcurrentEstimationService,
    by_name: Mapping[str, Scenario],
    trace: tuple[RequestSpec, ...],
    starts: np.ndarray,
    ends: np.ndarray,
    failed: np.ndarray,
    config: LoadConfig,
) -> None:
    done = threading.Semaphore(0)
    run_start = time.perf_counter()
    futures: "list[Future[WorkloadEstimate]]" = []
    for spec in trace:
        target = run_start + spec.arrival_s
        delay = target - time.perf_counter()
        if delay > 0.0:
            time.sleep(delay)
        plans, resources = _request_plans(by_name, spec)
        submitted = time.perf_counter()
        starts[spec.index] = submitted

        def record(
            future: "Future[WorkloadEstimate]", index: int = spec.index
        ) -> None:
            ends[index] = time.perf_counter()
            error = future.exception()
            if error is not None:
                failed[index] = True
                _LOGGER.warning("request %d failed: %s", index, error)
            done.release()

        future = server.submit(plans, resources)
        future.add_done_callback(record)
        futures.append(future)
    for _ in futures:
        done.acquire()
