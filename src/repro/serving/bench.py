"""The serve-bench harness: sequential baseline vs coalesced concurrent serving.

One entry point, :func:`run_serve_bench`, is shared by the ``repro
serve-bench`` CLI subcommand, the CI smoke step and the opt-in
``benchmarks/test_serve_load.py`` reproduction, so every consumer measures
and reports the same way:

1. **warmup** — the warmup slice of the seeded trace is served once
   sequentially, so both sides start from a warm feature cache and compiled
   kernels;
2. **sequential baseline** — the measured trace is replayed one request at
   a time directly against the :class:`~repro.api.EstimationService`
   (no coalescing, no concurrency): the single-caller request rate the
   serving layer must beat;
3. **single-batch service time** — the worst of quiet direct probes of one
   ``max_batch_size``-plan batch (max-of-5, on both sides of the loaded
   window) and the worst batch the coalescer actually served: together
   with ``max_wait_ms`` this bounds the worst-case latency a coalesced
   request should see (the report's ``p99_budget_ms``);
4. **coalesced run** — the same seeded trace drives the micro-batch
   coalescing front under the configured closed/open-loop discipline
   (:func:`~repro.serving.loadgen.run_load`).

The returned :class:`ServeBenchResult` carries the full
:class:`~repro.serving.loadgen.LoadReport` plus the baseline comparison
(`throughput_ratio`, SLO pass/fail) as one JSON-ready record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.api.service import EstimationService
from repro.serving.coalescer import ConcurrentEstimationService
from repro.serving.loadgen import LoadConfig, LoadReport, build_trace, run_load
from repro.serving.scenarios import Scenario

__all__ = ["ServeBenchConfig", "ServeBenchResult", "run_serve_bench"]


@dataclass(frozen=True)
class ServeBenchConfig:
    """Knobs of one serve-bench run (load discipline + coalescer shape)."""

    #: Default batch budget leaves headroom above the heaviest standard-mix
    #: burst (8 closed-loop callers x 8 plans = 64), so the budget probe —
    #: one full ``max_batch_size``-plan batch — strictly upper-bounds any
    #: batch the run actually serves.
    load: LoadConfig = LoadConfig()
    max_batch_size: int = 96
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")


@dataclass(frozen=True)
class ServeBenchResult:
    """A coalesced load run next to its single-caller sequential baseline."""

    report: LoadReport
    #: Single-threaded direct request rate on the identical measured trace.
    sequential_rps: float
    #: Coalesced sustained throughput / sequential baseline.
    throughput_ratio: float
    #: Worst single-batch service time: quiet max-of-5 direct probes on
    #: both sides of the loaded window, and the worst served batch.
    single_batch_ms: float
    #: Latency budget: ``max_wait_ms`` + one batch service time.
    p99_budget_ms: float
    max_batch_size: int
    max_wait_ms: float

    @property
    def p99_within_budget(self) -> bool:
        return self.report.latency.p99_ms <= self.p99_budget_ms

    def to_record(self) -> dict[str, object]:
        record = self.report.to_record()
        record.update(
            {
                "max_batch_size": self.max_batch_size,
                "max_wait_ms": round(self.max_wait_ms, 3),
                "sequential_rps": round(self.sequential_rps, 2),
                "throughput_ratio": round(self.throughput_ratio, 2),
                "single_batch_ms": round(self.single_batch_ms, 3),
                "p99_budget_ms": round(self.p99_budget_ms, 3),
                "p99_within_budget": self.p99_within_budget,
            }
        )
        return record

    def render(self) -> str:
        budget = "within" if self.p99_within_budget else "OVER"
        return "\n".join(
            [
                self.report.render(),
                f"coalescer: max_batch_size={self.max_batch_size} plans, "
                f"max_wait_ms={self.max_wait_ms:g}",
                f"sequential baseline: {self.sequential_rps:,.0f} req/s "
                f"-> coalesced {self.report.throughput_rps:,.0f} req/s "
                f"({self.throughput_ratio:.1f}x)",
                f"p99 {self.report.latency.p99_ms:.2f} ms is {budget} the "
                f"{self.p99_budget_ms:.2f} ms budget "
                f"(max_wait {self.max_wait_ms:g} ms + single batch "
                f"{self.single_batch_ms:.2f} ms)",
            ]
        )


def run_serve_bench(
    service: EstimationService,
    scenarios: Sequence[Scenario],
    config: ServeBenchConfig,
) -> ServeBenchResult:
    """Measure sequential and coalesced serving on the same seeded trace."""
    by_name = {scenario.name: scenario for scenario in scenarios}
    trace = build_trace(scenarios, config.load)

    # Warm caches and compiled kernels once, outside every measurement.
    for spec in trace:
        if spec.warmup:
            scenario = by_name[spec.scenario]
            plans = [scenario.plans[i] for i in spec.plan_indices]
            service.estimate_workload(plans, scenario.resources)

    # Sequential baseline: the measured trace, one direct call at a time.
    measured_specs = [spec for spec in trace if not spec.warmup]
    sequential_started = time.perf_counter()
    for spec in measured_specs:
        scenario = by_name[spec.scenario]
        plans = [scenario.plans[i] for i in spec.plan_indices]
        service.estimate_workload(plans, scenario.resources)
    sequential_seconds = max(time.perf_counter() - sequential_started, 1e-9)
    sequential_rps = len(measured_specs) / sequential_seconds

    single_batch_before_ms = _measure_single_batch_ms(
        service, scenarios, config.max_batch_size
    )

    with ConcurrentEstimationService(
        service,
        max_batch_size=config.max_batch_size,
        max_wait_ms=config.max_wait_ms,
    ) as server:
        report = run_load(server, scenarios, config.load)
        served_max_ms = server.coalescing_stats().max_service_ms

    # Single-batch service time = the worst of (a) quiet direct probes on
    # both sides of the loaded window and (b) the worst batch the coalescer
    # actually served.  Quiet probes alone under-sample the GIL/scheduler
    # contention a loaded batch runs under, which would make the latency
    # budget spuriously tight; the served maximum keeps the budget honest
    # while the p99 check still verifies the real SLO contract — that queue
    # wait stays bounded by ``max_wait_ms`` (it fails under overload, when
    # requests pile up behind in-flight batches).
    single_batch_ms = max(
        single_batch_before_ms,
        _measure_single_batch_ms(service, scenarios, config.max_batch_size),
        served_max_ms,
    )

    return ServeBenchResult(
        report=report,
        sequential_rps=sequential_rps,
        throughput_ratio=report.throughput_rps / max(sequential_rps, 1e-9),
        single_batch_ms=single_batch_ms,
        p99_budget_ms=config.max_wait_ms + single_batch_ms,
        max_batch_size=config.max_batch_size,
        max_wait_ms=config.max_wait_ms,
    )


def _measure_single_batch_ms(
    service: EstimationService,
    scenarios: Sequence[Scenario],
    max_batch_size: int,
    rounds: int = 5,
) -> float:
    """Direct service time of one full micro-batch (max over ``rounds``).

    Taking the max (not min) makes the derived ``p99_budget_ms`` an honest
    upper bound for what a coalesced batch costs, including scheduler noise.
    """
    pool = [plan for scenario in scenarios for plan in scenario.plans]
    batch = [pool[i % len(pool)] for i in range(max_batch_size)]
    worst = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        service.estimate_workload(batch)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        worst = max(worst, elapsed_ms)
    return worst
