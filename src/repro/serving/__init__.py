"""Concurrent serving: micro-batch coalescing + closed/open-loop load harness.

This package turns the single-caller :class:`~repro.api.EstimationService`
facade into a real serving layer and proves it under load:

* :mod:`repro.serving.coalescer` —
  :class:`~repro.serving.coalescer.ConcurrentEstimationService` coalesces
  concurrent ``estimate_workload``/``estimate_query`` calls into
  micro-batches on the vectorised estimation path and demultiplexes the
  batched results back through per-request futures, bit-identical to
  direct calls;
* :mod:`repro.serving.scenarios` — weighted request scenarios over the
  TPC-H/TPC-DS template sweeps;
* :mod:`repro.serving.loadgen` — seeded closed/open-loop load generation
  with warmup/measure phases and a structured
  :class:`~repro.serving.loadgen.LoadReport`;
* :mod:`repro.serving.bench` — the ``repro serve-bench`` harness comparing
  coalesced throughput against the single-caller sequential baseline under
  a p99 latency budget.
"""

from repro.serving.bench import ServeBenchConfig, ServeBenchResult, run_serve_bench
from repro.serving.coalescer import CoalescingStats, ConcurrentEstimationService
from repro.serving.loadgen import (
    LatencySummary,
    LoadConfig,
    LoadReport,
    RequestSpec,
    build_trace,
    run_load,
)
from repro.serving.scenarios import (
    SCENARIO_MIXES,
    Scenario,
    standard_scenarios,
    tpcds_plan_pool,
    tpch_plan_pool,
)

__all__ = [
    "CoalescingStats",
    "ConcurrentEstimationService",
    "LatencySummary",
    "LoadConfig",
    "LoadReport",
    "RequestSpec",
    "build_trace",
    "run_load",
    "Scenario",
    "SCENARIO_MIXES",
    "standard_scenarios",
    "tpch_plan_pool",
    "tpcds_plan_pool",
    "ServeBenchConfig",
    "ServeBenchResult",
    "run_serve_bench",
]
