"""Concurrent serving: micro-batch coalescing + closed/open-loop load harness.

This package turns the single-caller :class:`~repro.api.EstimationService`
facade into a real serving layer and proves it under load:

* :mod:`repro.serving.coalescer` —
  :class:`~repro.serving.coalescer.ConcurrentEstimationService` coalesces
  concurrent ``estimate_workload``/``estimate_query`` calls into
  micro-batches on the vectorised estimation path and demultiplexes the
  batched results back through per-request futures, bit-identical to
  direct calls;
* :mod:`repro.serving.scenarios` — weighted request scenarios over the
  TPC-H/TPC-DS template sweeps;
* :mod:`repro.serving.loadgen` — seeded closed/open-loop load generation
  with warmup/measure phases and a structured
  :class:`~repro.serving.loadgen.LoadReport`;
* :mod:`repro.serving.bench` — the ``repro serve-bench`` harness comparing
  coalesced throughput against the single-caller sequential baseline under
  a p99 latency budget.

Exports resolve lazily (PEP 562, like :mod:`repro.robustness` and
:mod:`repro.adaptive`): the bench/scenario submodules drag in catalogs and
planners that a caller importing only the coalescer should not pay for.
The serving-stats types every load report leans on —
:class:`~repro.api.service.ServiceStats` and the
:class:`~repro.api.service.StatsSnapshot` its ``snapshot()`` returns — are
re-exported here from :mod:`repro.api.service` so serving callers get the
full vocabulary from one import.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import ServiceStats, StatsSnapshot
    from repro.serving.bench import ServeBenchConfig, ServeBenchResult, run_serve_bench
    from repro.serving.coalescer import CoalescingStats, ConcurrentEstimationService
    from repro.serving.loadgen import (
        LatencySummary,
        LoadConfig,
        LoadReport,
        RequestSpec,
        build_trace,
        run_load,
    )
    from repro.serving.scenarios import (
        SCENARIO_MIXES,
        Scenario,
        standard_scenarios,
        tpcds_plan_pool,
        tpch_plan_pool,
    )

#: Export name -> providing module (relative submodule name, or an absolute
#: ``repro.``-prefixed module for cross-package re-exports).
_EXPORTS: dict[str, str] = {
    "CoalescingStats": "coalescer",
    "ConcurrentEstimationService": "coalescer",
    "LatencySummary": "loadgen",
    "LoadConfig": "loadgen",
    "LoadReport": "loadgen",
    "RequestSpec": "loadgen",
    "build_trace": "loadgen",
    "run_load": "loadgen",
    "Scenario": "scenarios",
    "SCENARIO_MIXES": "scenarios",
    "standard_scenarios": "scenarios",
    "tpch_plan_pool": "scenarios",
    "tpcds_plan_pool": "scenarios",
    "ServeBenchConfig": "bench",
    "ServeBenchResult": "bench",
    "run_serve_bench": "bench",
    "ServiceStats": "repro.api.service",
    "StatsSnapshot": "repro.api.service",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    if not module_name.startswith("repro."):
        module_name = f"{__name__}.{module_name}"
    module = import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
