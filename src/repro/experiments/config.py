"""Experiment configuration, profiles and the shared workload cache.

Two profiles are provided:

* ``fast`` (default) — workload sizes and model capacities scaled down so
  the full table/figure suite finishes in minutes on a laptop;
* ``paper`` — sizes close to the paper's setup (>2500 TPC-H queries over six
  scale factors, >100 TPC-DS queries, 222 / 887 real-workload queries, MART
  with 1000 boosting iterations).  Select it with ``REPRO_PROFILE=paper``.

Workloads are expensive to build relative to everything except model
training, and several experiments share them, so built workloads are cached
per (profile, workload) in this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ml.mart import MARTConfig
from repro.workloads.real import build_real1_workload, build_real2_workload
from repro.workloads.runner import ObservedWorkload
from repro.workloads.tpch import build_tpch_workload
from repro.workloads.tpcds import build_tpcds_workload

__all__ = ["ExperimentConfig", "get_config", "clear_workload_cache"]

#: Environment variable selecting the experiment profile.
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the experiment suite."""

    profile: str
    #: (scale factor, #queries) pairs making up the TPC-H training workload.
    tpch_scales: tuple[tuple[float, int], ...]
    #: Scale factors considered "small" / "large" for the data-size
    #: generalisation experiments (Tables 5, 8, 11 and Figures 3/6).
    small_scale_limit: float
    tpch_skew: float
    tpcds_queries: int
    real1_queries: int
    real2_queries: int
    mart: MARTConfig
    train_fraction: float = 0.8
    seed: int = 42
    #: Training-set sizes (number of examples) for the Table 13 timing sweep.
    training_time_sizes: tuple[int, ...] = (5_000, 10_000, 20_000, 40_000)
    #: Boosting iterations used in the Table 13 timing sweep.
    training_time_iterations: int = 100
    #: Number of freshly planned queries used by the batched workload
    #: estimation experiment (``batch_overhead``).
    batch_overhead_queries: int = 150

    @property
    def is_paper_profile(self) -> bool:
        return self.profile == "paper"


_FAST = ExperimentConfig(
    profile="fast",
    tpch_scales=((0.05, 36), (0.1, 36), (0.2, 36), (0.4, 36)),
    small_scale_limit=0.1,
    tpch_skew=1.5,
    tpcds_queries=72,
    real1_queries=96,
    real2_queries=96,
    mart=MARTConfig(n_iterations=150, max_leaves=10, learning_rate=0.12, subsample=0.8),
    training_time_sizes=(5_000, 10_000, 20_000, 40_000),
    training_time_iterations=100,
    batch_overhead_queries=150,
)

_PAPER = ExperimentConfig(
    profile="paper",
    tpch_scales=(
        (1.0, 430),
        (2.0, 430),
        (4.0, 430),
        (6.0, 430),
        (8.0, 430),
        (10.0, 430),
    ),
    small_scale_limit=4.0,
    tpch_skew=2.0,
    tpcds_queries=100,
    real1_queries=222,
    real2_queries=887,
    mart=MARTConfig(n_iterations=1000, max_leaves=10, learning_rate=0.1, subsample=0.7),
    training_time_sizes=(5_000, 10_000, 20_000, 40_000, 80_000, 160_000),
    training_time_iterations=1000,
    batch_overhead_queries=1000,
)


def get_config(profile: str | None = None) -> ExperimentConfig:
    """The experiment configuration for ``profile`` (or the env default)."""
    if profile is None:
        profile = os.environ.get(PROFILE_ENV_VAR, "fast").lower()
    if profile == "fast":
        return _FAST
    if profile == "paper":
        return _PAPER
    raise ValueError(f"unknown experiment profile {profile!r} (use 'fast' or 'paper')")


# ---------------------------------------------------------------------------
# Workload cache
# ---------------------------------------------------------------------------

@dataclass
class _WorkloadCache:
    entries: dict[tuple[str, str], ObservedWorkload] = field(default_factory=dict)


_CACHE = _WorkloadCache()


def clear_workload_cache() -> None:
    """Drop every cached workload (mainly for tests)."""
    _CACHE.entries.clear()


def _cached(config: ExperimentConfig, key: str, builder) -> ObservedWorkload:
    cache_key = (config.profile, key)
    if cache_key not in _CACHE.entries:
        _CACHE.entries[cache_key] = builder()
    return _CACHE.entries[cache_key]


def tpch_workload(config: ExperimentConfig) -> ObservedWorkload:
    """The multi-scale TPC-H workload (training set of every experiment)."""

    def build() -> ObservedWorkload:
        merged: ObservedWorkload | None = None
        for i, (scale_factor, n_queries) in enumerate(config.tpch_scales):
            workload = build_tpch_workload(
                scale_factor=scale_factor,
                skew_z=config.tpch_skew,
                n_queries=n_queries,
                seed=config.seed + i,
            )
            if merged is None:
                merged = ObservedWorkload(name="tpch", catalog=workload.catalog)
            merged.extend(workload)
        assert merged is not None
        return merged

    return _cached(config, "tpch", build)


def tpch_small_large(config: ExperimentConfig) -> tuple[list, list]:
    """(small-scale queries, large-scale queries) partition of the TPC-H workload.

    The merged multi-scale workload loses per-query catalog identity, so the
    partition keys off the largest base-table cardinality referenced by each
    plan (which is proportional to the scale factor the query ran against).
    """
    workload = tpch_workload(config)
    small, large = [], []
    threshold_rows = 6_000_000 * config.small_scale_limit
    for query in workload.queries:
        max_table_rows = max(
            (float(op.props.get("table_rows", 0.0)) for op in query.plan.operators()),
            default=0.0,
        )
        if max_table_rows <= threshold_rows * 1.01:
            small.append(query)
        else:
            large.append(query)
    return small, large


def tpcds_workload(config: ExperimentConfig) -> ObservedWorkload:
    scale = 10.0 if config.is_paper_profile else 0.5
    return _cached(
        config,
        "tpcds",
        lambda: build_tpcds_workload(
            scale_factor=scale, n_queries=config.tpcds_queries, seed=config.seed + 100
        ),
    )


def real1_workload(config: ExperimentConfig) -> ObservedWorkload:
    return _cached(
        config,
        "real1",
        lambda: build_real1_workload(n_queries=config.real1_queries, seed=config.seed + 200),
    )


def real2_workload(config: ExperimentConfig) -> ObservedWorkload:
    return _cached(
        config,
        "real2",
        lambda: build_real2_workload(n_queries=config.real2_queries, seed=config.seed + 300),
    )
