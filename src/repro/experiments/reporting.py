"""Result containers and plain-text rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResultTable", "ResultSeries"]


@dataclass
class ResultTable:
    """A rows-and-columns result (the paper's tables).

    ``rows`` is a list of dictionaries sharing the same keys; ``reference``
    optionally holds the values the paper reports for the same cells, keyed
    the same way, so EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""
    reference: list[dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def render(self) -> str:
        """Fixed-width text rendering of the table."""
        widths = {col: len(col) for col in self.columns}
        for row in self.rows:
            for col in self.columns:
                widths[col] = max(widths[col], len(_fmt(row.get(col, ""))))
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        divider = "  ".join("-" * widths[col] for col in self.columns)
        lines = [f"{self.experiment_id}: {self.title}", header, divider]
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in self.columns))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


@dataclass
class ResultSeries:
    """A scatter/series result (the paper's figures).

    ``series`` maps a series label to a list of (x, y) points; summary
    statistics relevant to the figure's claim are stored in ``summary``.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, series_name: str, x: float, y: float) -> None:
        self.series.setdefault(series_name, []).append((float(x), float(y)))

    def render(self, max_points: int = 8) -> str:
        lines = [f"{self.experiment_id}: {self.title}", f"x={self.x_label}  y={self.y_label}"]
        for name, points in self.series.items():
            lines.append(f"  series {name!r}: {len(points)} points")
            shown = points[:max_points]
            lines.extend(f"    ({x:.4g}, {y:.4g})" for x, y in shown)
            if len(points) > max_points:
                lines.append(f"    ... ({len(points) - max_points} more)")
        if self.summary:
            lines.append("summary:")
            lines.extend(f"  {key} = {value:.4g}" for key, value in self.summary.items())
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
