"""Shared evaluation harness: fit techniques once, evaluate on test sets.

The paper evaluates each technique on query-level totals with two error
metrics (L1 relative error and ratio-error buckets).  The harness fits each
technique on a named training set and caches the fitted technique, because
several tables share the same training configuration (e.g. Table 4 and
Table 6 both train on the TPC-H workload with exact features).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BaselineEstimator
from repro.features.definitions import FeatureMode
from repro.ml.metrics import ErrorSummary
from repro.workloads.runner import ObservedQuery

__all__ = ["ExperimentResult", "TechniqueCache", "evaluate_techniques", "clear_technique_cache"]


@dataclass
class ExperimentResult:
    """Evaluation of one technique on one test set."""

    technique: str
    test_set: str
    resource: str
    mode: FeatureMode
    summary: ErrorSummary
    estimates: np.ndarray
    actuals: np.ndarray

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {"Technique": self.technique, "Test Set": self.test_set}
        row.update(self.summary.as_row())
        return row


@dataclass
class TechniqueCache:
    """Cache of fitted techniques keyed by (technique, train set, resource, mode)."""

    entries: dict[tuple[str, str, str, str], BaselineEstimator] = field(default_factory=dict)

    def get_or_fit(
        self,
        technique: BaselineEstimator,
        train_name: str,
        train_queries: list[ObservedQuery],
        resource: str,
        mode: FeatureMode,
    ) -> BaselineEstimator:
        key = (technique.name, train_name, resource, mode.value)
        if key not in self.entries:
            self.entries[key] = technique.fit(train_queries, resource, mode)
        return self.entries[key]


_GLOBAL_CACHE = TechniqueCache()


def clear_technique_cache() -> None:
    """Drop every fitted technique (mainly for tests)."""
    _GLOBAL_CACHE.entries.clear()


def evaluate_techniques(
    techniques: list[BaselineEstimator],
    train_queries: list[ObservedQuery],
    test_sets: dict[str, list[ObservedQuery]],
    resource: str,
    mode: FeatureMode,
    train_name: str,
    cache: TechniqueCache | None = None,
) -> list[ExperimentResult]:
    """Fit every technique on the training queries and evaluate on each test set."""
    cache = cache or _GLOBAL_CACHE
    results: list[ExperimentResult] = []
    for technique in techniques:
        fitted = cache.get_or_fit(technique, train_name, train_queries, resource, mode)
        for test_name, test_queries in test_sets.items():
            estimates = fitted.predict_queries(test_queries)
            actuals = np.array([q.actual(resource) for q in test_queries], dtype=np.float64)
            results.append(
                ExperimentResult(
                    technique=fitted.name,
                    test_set=test_name,
                    resource=resource,
                    mode=mode,
                    summary=ErrorSummary.from_predictions(estimates, actuals),
                    estimates=estimates,
                    actuals=actuals,
                )
            )
    return results
