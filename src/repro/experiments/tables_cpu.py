"""CPU-time estimation experiments (paper Tables 4-9).

Three experiment designs, each run once with exact input features
(Tables 4-6) and once with optimizer-estimated features (Tables 7-9, which
additionally include the OPT baseline):

* train and test on disjoint TPC-H queries (Tables 4 / 7);
* train on TPC-H queries over small databases and test on large ones, and
  vice versa (Tables 5 / 8);
* train on TPC-H and test on completely different workloads — TPC-DS,
  Real-1, Real-2 (Tables 6 / 9).
"""

from __future__ import annotations

from repro.baselines import standard_techniques
from repro.baselines.base import BaselineEstimator
from repro.experiments import config as cfg
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.harness import evaluate_techniques
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.workloads.datasets import split_workload

__all__ = ["table_4", "table_5", "table_6", "table_7", "table_8", "table_9"]

_CPU_COLUMNS = ["Technique", "Test Set", "L1", "R<=1.5", "R in [1.5,2]", "R>2"]


def _techniques(config: ExperimentConfig, include_opt: bool) -> list[BaselineEstimator]:
    techniques = standard_techniques(
        fast=not config.is_paper_profile, mart_config=config.mart
    )
    if not include_opt:
        techniques = [t for t in techniques if t.name != "OPT"]
    return techniques


def _tpch_split(config: ExperimentConfig):
    workload = cfg.tpch_workload(config)
    return split_workload(workload, config.train_fraction, seed=config.seed)


def _same_workload_table(
    experiment_id: str,
    title: str,
    mode: FeatureMode,
    include_opt: bool,
    config: ExperimentConfig | None,
) -> ResultTable:
    config = config or get_config()
    train, test = _tpch_split(config)
    results = evaluate_techniques(
        _techniques(config, include_opt),
        train,
        {"TPC-H": test},
        resource="cpu",
        mode=mode,
        train_name=f"tpch80-{mode.value}",
    )
    table = ResultTable(experiment_id=experiment_id, title=title, columns=_CPU_COLUMNS)
    for result in results:
        table.add_row(**result.as_row())
    return table


def _data_size_table(
    experiment_id: str,
    title: str,
    mode: FeatureMode,
    include_opt: bool,
    config: ExperimentConfig | None,
) -> ResultTable:
    config = config or get_config()
    small, large = cfg.tpch_small_large(config)
    techniques = _techniques(config, include_opt)
    table = ResultTable(experiment_id=experiment_id, title=title, columns=_CPU_COLUMNS)
    # Train small -> test large.
    for result in evaluate_techniques(
        techniques, small, {"Large": large}, "cpu", mode, train_name=f"tpch-small-{mode.value}"
    ):
        table.add_row(**result.as_row())
    # Train large -> test small.
    for result in evaluate_techniques(
        techniques, large, {"Small": small}, "cpu", mode, train_name=f"tpch-large-{mode.value}"
    ):
        table.add_row(**result.as_row())
    return table


def _cross_workload_table(
    experiment_id: str,
    title: str,
    mode: FeatureMode,
    include_opt: bool,
    config: ExperimentConfig | None,
) -> ResultTable:
    config = config or get_config()
    train, _ = _tpch_split(config)
    test_sets = {
        "TPC-DS": cfg.tpcds_workload(config).queries,
        "Real-1": cfg.real1_workload(config).queries,
        "Real-2": cfg.real2_workload(config).queries,
    }
    results = evaluate_techniques(
        _techniques(config, include_opt),
        train,
        test_sets,
        resource="cpu",
        mode=mode,
        train_name=f"tpch80-{mode.value}",
    )
    table = ResultTable(experiment_id=experiment_id, title=title, columns=_CPU_COLUMNS)
    # Group rows by test set first (matching the paper's layout).
    for test_name in test_sets:
        for result in results:
            if result.test_set == test_name:
                table.add_row(**result.as_row())
    return table


# -- public runners ---------------------------------------------------------------------------

def table_4(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 4: training and testing on TPC-H (exact features, CPU time)."""
    return _same_workload_table(
        "Table 4", "Training and testing on TPC-H (exact features)", FeatureMode.EXACT, False, config
    )


def table_5(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 5: different data sizes between training and test (exact features)."""
    return _data_size_table(
        "Table 5",
        "Training on TPC-H, testing with different data distributions (exact features)",
        FeatureMode.EXACT,
        False,
        config,
    )


def table_6(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 6: training on TPC-H, testing on different workloads (exact features)."""
    return _cross_workload_table(
        "Table 6",
        "Training on TPC-H, testing on different workloads/data (exact features)",
        FeatureMode.EXACT,
        False,
        config,
    )


def table_7(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 7: training and testing on TPC-H (optimizer-estimated features)."""
    return _same_workload_table(
        "Table 7",
        "Training and testing on TPC-H (optimizer-estimated features)",
        FeatureMode.ESTIMATED,
        True,
        config,
    )


def table_8(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 8: different data sizes (optimizer-estimated features)."""
    return _data_size_table(
        "Table 8",
        "Training on TPC-H, testing with different data distributions (estimated features)",
        FeatureMode.ESTIMATED,
        True,
        config,
    )


def table_9(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 9: cross-workload generalisation (optimizer-estimated features)."""
    return _cross_workload_table(
        "Table 9",
        "Training on TPC-H, testing on different workloads/data (estimated features)",
        FeatureMode.ESTIMATED,
        True,
        config,
    )
