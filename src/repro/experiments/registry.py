"""Registry mapping paper experiment identifiers to runner callables."""

from __future__ import annotations

from typing import Callable

from repro.experiments import figures, overhead, tables_cpu, tables_io

__all__ = ["EXPERIMENTS", "run_experiment"]

#: experiment id -> callable(config) -> ResultTable | ResultSeries
EXPERIMENTS: dict[str, Callable] = {
    "figure_1": figures.figure_1,
    "figure_2": figures.figure_2,
    "figure_3": figures.figure_3,
    "figure_6": figures.figure_6,
    "figure_7": figures.figure_7,
    "figure_8": figures.figure_8,
    "table_4": tables_cpu.table_4,
    "table_5": tables_cpu.table_5,
    "table_6": tables_cpu.table_6,
    "table_7": tables_cpu.table_7,
    "table_8": tables_cpu.table_8,
    "table_9": tables_cpu.table_9,
    "table_10": tables_io.table_10,
    "table_11": tables_io.table_11,
    "table_12": tables_io.table_12,
    "table_13": overhead.table_13,
    "prediction_cost": overhead.prediction_cost,
    "batch_overhead": overhead.batch_overhead,
    "model_memory": overhead.model_memory,
}


def run_experiment(experiment_id: str, config=None):
    """Run a registered experiment by identifier and return its result object."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner(config)
