"""Logical-I/O estimation experiments (paper Tables 10-12).

The paper evaluates I/O prediction with optimizer-estimated feature values
only, and reports the four best-performing models: the operator-level model
of [8], LINEAR, SVM with the RBF kernel, and SCALING.
"""

from __future__ import annotations

from repro.api.registry import make_technique
from repro.baselines.base import BaselineEstimator
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.harness import evaluate_techniques
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.workloads.datasets import split_workload

__all__ = ["table_10", "table_11", "table_12"]

_IO_COLUMNS = ["Technique", "Test Set", "L1", "R<=1.5", "R in [1.5,2]", "R>2"]


def _io_techniques(config: ExperimentConfig) -> list[BaselineEstimator]:
    """The four techniques the paper reports for I/O estimation."""
    return [
        make_technique("akdere"),
        make_technique("linear"),
        make_technique("svm", kernel="rbf", gamma=0.05),
        make_technique("scaling", trainer_config=TrainerConfig(mart=config.mart)),
    ]


def table_10(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 10: training and testing on TPC-H (logical I/O)."""
    config = config or get_config()
    workload = cfg.tpch_workload(config)
    train, test = split_workload(workload, config.train_fraction, seed=config.seed)
    results = evaluate_techniques(
        _io_techniques(config),
        train,
        {"TPC-H": test},
        resource="io",
        mode=FeatureMode.ESTIMATED,
        train_name="tpch80-io",
    )
    table = ResultTable(
        experiment_id="Table 10",
        title="Training and testing on TPC-H (I/O operations)",
        columns=_IO_COLUMNS,
    )
    for result in results:
        table.add_row(**result.as_row())
    return table


def table_11(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 11: different data sizes between training and test (logical I/O)."""
    config = config or get_config()
    small, large = cfg.tpch_small_large(config)
    techniques = _io_techniques(config)
    table = ResultTable(
        experiment_id="Table 11",
        title="Training on TPC-H, testing with different data distributions (I/O operations)",
        columns=_IO_COLUMNS,
    )
    for result in evaluate_techniques(
        techniques, small, {"Large": large}, "io", FeatureMode.ESTIMATED, "tpch-small-io"
    ):
        table.add_row(**result.as_row())
    for result in evaluate_techniques(
        techniques, large, {"Small": small}, "io", FeatureMode.ESTIMATED, "tpch-large-io"
    ):
        table.add_row(**result.as_row())
    return table


def table_12(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 12: cross-workload generalisation (logical I/O)."""
    config = config or get_config()
    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    test_sets = {
        "TPC-DS": cfg.tpcds_workload(config).queries,
        "Real-1": cfg.real1_workload(config).queries,
        "Real-2": cfg.real2_workload(config).queries,
    }
    results = evaluate_techniques(
        _io_techniques(config),
        train,
        test_sets,
        resource="io",
        mode=FeatureMode.ESTIMATED,
        train_name="tpch80-io",
    )
    table = ResultTable(
        experiment_id="Table 12",
        title="Training on TPC-H, testing on different workloads/data (I/O operations)",
        columns=_IO_COLUMNS,
    )
    for test_name in test_sets:
        for result in results:
            if result.test_set == test_name:
                table.add_row(**result.as_row())
    return table
