"""Figure experiments (paper Figures 1, 2, 3, 6, 7 and 8)."""

from __future__ import annotations

import numpy as np

from repro.api.registry import make_technique
from repro.core.scaling import (
    SCALING_FUNCTIONS,
    TWO_INPUT_SCALING_FUNCTIONS,
    ScalingFunctionSelector,
)
from repro.core.trainer import TrainerConfig
from repro.engine.resource_model import ResourceModel
from repro.experiments import config as cfg
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.reporting import ResultSeries
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.ml.metrics import l1_relative_error, ratio_error
from repro.plan.operators import OperatorType, PlanOperator
from repro.workloads.datasets import split_workload
from repro.workloads.runner import ObservedQuery

__all__ = ["figure_1", "figure_2", "figure_3", "figure_6", "figure_7", "figure_8"]


# ---------------------------------------------------------------------------
# Figures 1 and 2: query-level scatter plots
# ---------------------------------------------------------------------------

def _near_exact_cardinalities(query: ObservedQuery, tolerance: float = 0.1) -> bool:
    """Whether every operator's cardinality estimate is within ±tolerance.

    Figure 1 of the paper only keeps queries whose per-node cardinality
    estimates fall within 90%-110% of the truth, to isolate cost-model error
    from cardinality error.
    """
    for op in query.plan.operators():
        true_rows = max(op.true_rows, 1.0)
        est_rows = max(op.est_rows, 1.0)
        ratio = est_rows / true_rows
        if ratio < 1.0 - tolerance or ratio > 1.0 + tolerance:
            return False
    return True


def figure_1(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 1: optimizer cost estimates vs actual CPU time (large errors)."""
    config = config or get_config()
    workload = cfg.tpch_workload(config)
    train, test = split_workload(workload, config.train_fraction, seed=config.seed)
    queries = [q for q in test if _near_exact_cardinalities(q, tolerance=0.25)] or list(test)

    opt = make_technique("opt").fit(train, "cpu", FeatureMode.ESTIMATED)
    estimates = opt.predict_queries(queries)
    actuals = np.array([q.total_cpu_us for q in queries])
    result = ResultSeries(
        experiment_id="Figure 1",
        title="Optimizer estimates can incur significant errors",
        x_label="adjusted optimizer cost estimate (us)",
        y_label="actual CPU time (us)",
    )
    for est, act in zip(estimates, actuals):
        result.add_point("OPT", est, act)
    ratios = ratio_error(estimates, actuals)
    result.summary = {
        "l1_error": l1_relative_error(estimates, actuals),
        "fraction_ratio_gt_2": float(np.mean(ratios > 2.0)),
        "max_ratio_error": float(np.max(ratios)) if len(ratios) else 0.0,
        "n_queries": float(len(queries)),
    }
    result.notes = (
        "Queries restricted to near-exact cardinality estimates, so the error "
        "is attributable to the cost model rather than cardinality estimation."
    )
    return result


def figure_2(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 2: SCALING estimates vs actual CPU time hug the diagonal."""
    config = config or get_config()
    workload = cfg.tpch_workload(config)
    train, test = split_workload(workload, config.train_fraction, seed=config.seed)
    technique = make_technique("scaling", trainer_config=TrainerConfig(mart=config.mart))
    technique.fit(train, "cpu", FeatureMode.EXACT)
    estimates = technique.predict_queries(test)
    actuals = np.array([q.total_cpu_us for q in test])
    result = ResultSeries(
        experiment_id="Figure 2",
        title="Statistical techniques can improve estimates significantly",
        x_label="estimated CPU time (us)",
        y_label="actual CPU time (us)",
    )
    for est, act in zip(estimates, actuals):
        result.add_point("SCALING", est, act)
    ratios = ratio_error(estimates, actuals)
    result.summary = {
        "l1_error": l1_relative_error(estimates, actuals),
        "fraction_ratio_gt_2": float(np.mean(ratios > 2.0)),
        "max_ratio_error": float(np.max(ratios)) if len(ratios) else 0.0,
        "n_queries": float(len(test)),
    }
    return result


# ---------------------------------------------------------------------------
# Figures 3 and 6: extrapolation on Scan operators
# ---------------------------------------------------------------------------

def _scan_operators(queries: list[ObservedQuery]):
    """All Scan-family operator observations of the given queries."""
    return [
        op
        for query in queries
        for op in query.operators
        if op.family is OperatorFamily.SCAN
    ]


def _scan_extrapolation(
    config: ExperimentConfig, use_scaling: bool, experiment_id: str, title: str
) -> ResultSeries:
    small, large = cfg.tpch_small_large(config)
    result = ResultSeries(
        experiment_id=experiment_id,
        title=title,
        x_label="actual scan CPU time (us)",
        y_label="estimated scan CPU time (us)",
    )
    if use_scaling:
        technique = make_technique("scaling", trainer_config=TrainerConfig(mart=config.mart))
    else:
        technique = make_technique("mart", mart_config=config.mart)
    # Train on *scan operators from small databases only*: wrap them into
    # pseudo-queries is unnecessary — both techniques accept query lists, so
    # build single-operator views by filtering at prediction time instead.
    technique.fit(small, "cpu", FeatureMode.EXACT)

    scan_ops = _scan_operators(large)
    if use_scaling:
        est_arr = technique.estimator.estimate_feature_rows(
            OperatorFamily.SCAN, [op.exact_features for op in scan_ops], "cpu"
        )
    else:
        est_arr = technique.predict_operators(scan_ops)
    act_arr = np.array([op.actual_cpu_us for op in scan_ops])
    for actual, est in zip(act_arr, est_arr):
        result.add_point("estimates", float(actual), float(est))
    # The paper's figures show systematic underestimation for plain MART;
    # summarise it as the mean estimate/actual ratio over the largest scans.
    order = np.argsort(act_arr)
    top = order[-max(len(order) // 4, 1):]
    result.summary = {
        "l1_error": l1_relative_error(est_arr, act_arr),
        "mean_ratio_on_largest_quartile": float(np.mean(est_arr[top] / np.maximum(act_arr[top], 1e-9))),
        "n_operators": float(len(scan_ops)),
    }
    return result


def figure_3(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 3: plain MART underestimates scans on larger data sets."""
    config = config or get_config()
    return _scan_extrapolation(
        config,
        use_scaling=False,
        experiment_id="Figure 3",
        title="Boosted regression trees do not generalize beyond the training data",
    )


def figure_6(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 6: MART + linear scaling generalises to larger data sets."""
    config = config or get_config()
    return _scan_extrapolation(
        config,
        use_scaling=True,
        experiment_id="Figure 6",
        title="Combining MART and scaling improves accuracy on unseen feature values",
    )


# ---------------------------------------------------------------------------
# Figures 7 and 8: scaling-function selection
# ---------------------------------------------------------------------------

def figure_7(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 7: n·log n scaling fits Sort CPU consumption best.

    Reproduces the calibration experiment: queries sorting a growing number
    of input tuples (constant row width) are "executed" and the candidate
    scaling functions are fitted to the resulting CPU curve.
    """
    config = config or get_config()
    model = ResourceModel()
    row_width = 80.0
    input_sizes = np.linspace(5_000, 400_000, 25)
    cpu_values = []
    for rows in input_sizes:
        child = PlanOperator(
            op_type=OperatorType.TABLE_SCAN, est_rows=rows, true_rows=rows, row_width=row_width,
            props={"table_rows": rows, "pages": rows * row_width / 8192.0},
        )
        sort = PlanOperator(
            op_type=OperatorType.SORT,
            children=[child],
            est_rows=rows,
            true_rows=rows,
            row_width=row_width,
            props={"n_sort_columns": 1},
        )
        cpu_values.append(model.operator_resources(sort).cpu_us)
    cpu = np.array(cpu_values)

    selector = ScalingFunctionSelector(
        [SCALING_FUNCTIONS["linear"], SCALING_FUNCTIONS["nlogn"], SCALING_FUNCTIONS["quadratic"],
         SCALING_FUNCTIONS["log"]]
    )
    fits = selector.fit_all(input_sizes, cpu)
    result = ResultSeries(
        experiment_id="Figure 7",
        title="Scaling-function selection for Sort CPU consumption",
        x_label="number of input tuples (CIN)",
        y_label="CPU time (us)",
    )
    for rows, value in zip(input_sizes, cpu):
        result.add_point("observed", rows, value)
    for fit in fits:
        predictions = fit.predict(input_sizes)
        for rows, value in zip(input_sizes, np.atleast_1d(predictions)):
            result.add_point(f"fit:{fit.function.name}", rows, float(value))
        result.summary[f"l2_error:{fit.function.name}"] = fit.l2_error
    result.summary["best_function_is_nlogn"] = float(fits[0].function.name == "nlogn")
    return result


def figure_8(config: ExperimentConfig | None = None) -> ResultSeries:
    """Figure 8: C_outer x log2(C_inner) fits Index Nested Loop Join CPU best."""
    config = config or get_config()
    model = ResourceModel()
    rng = np.random.default_rng(7)
    observations = []
    cpu_values = []
    for _ in range(60):
        outer_rows = float(rng.uniform(1_000, 60_000))
        inner_table_rows = float(rng.uniform(100_000, 20_000_000))
        matches = outer_rows * 1.5
        join = PlanOperator(
            op_type=OperatorType.NESTED_LOOP_JOIN,
            children=[
                PlanOperator(op_type=OperatorType.TABLE_SCAN, est_rows=outer_rows,
                             true_rows=outer_rows, row_width=40.0,
                             props={"table_rows": outer_rows, "pages": outer_rows * 40 / 8192}),
                PlanOperator(op_type=OperatorType.INDEX_SEEK, est_rows=matches,
                             true_rows=matches, row_width=40.0,
                             props={"table_rows": inner_table_rows, "index_depth": 3}),
            ],
            est_rows=matches,
            true_rows=matches,
            row_width=80.0,
            props={
                "outer_rows_true": outer_rows,
                "inner_table_rows": inner_table_rows,
                "index_depth": max(np.log(inner_table_rows) / np.log(100.0), 1.0),
            },
        )
        observations.append((outer_rows, inner_table_rows))
        cpu_values.append(model.operator_resources(join).cpu_us)
    pairs = np.array(observations)
    cpu = np.array(cpu_values)

    selector = ScalingFunctionSelector(list(TWO_INPUT_SCALING_FUNCTIONS.values()))
    fits = selector.fit_all(pairs, cpu)
    result = ResultSeries(
        experiment_id="Figure 8",
        title="Scaling-function selection for Index Nested Loop Join CPU consumption",
        x_label="C_outer x log2(C_inner)",
        y_label="CPU time (us)",
    )
    outer_log_inner = pairs[:, 0] * np.log2(pairs[:, 1] + 1.0)
    for x, value in zip(outer_log_inner, cpu):
        result.add_point("observed", x, value)
    for fit in fits:
        result.summary[f"l2_error:{fit.function.name}"] = fit.l2_error
    result.summary["best_function_is_outer_log_inner"] = float(
        fits[0].function.name == "outer_log_inner"
    )
    return result
