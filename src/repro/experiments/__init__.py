"""Experiment harness: one runner per table and figure of the paper.

Every runner returns a structured result object with a ``render()`` method,
so the same code path serves the benchmark suite (``benchmarks/``), the
EXPERIMENTS.md generation and ad-hoc exploration.  The experiment registry
(:mod:`repro.experiments.registry`) maps paper table/figure identifiers to
runner callables.
"""

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.harness import ExperimentResult, evaluate_techniques
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentConfig",
    "get_config",
    "ExperimentResult",
    "evaluate_techniques",
    "EXPERIMENTS",
    "run_experiment",
]
