"""Training-time, prediction-overhead and memory experiments (Section 7.3).

* **Table 13** — MART training time as the number of training examples
  grows (the paper reports seconds for 5K-160K examples at 1K boosting
  iterations).
* **Prediction cost** — the per-call overhead of evaluating a trained MART
  model, compared with the time spent optimising a query (the paper reports
  ~0.5 µs per model call vs >50 ms per optimization).
* **Batch overhead** — throughput of the batched
  :meth:`~repro.core.estimator.ResourceEstimator.estimate_workload` path
  against the per-operator scalar loop, on freshly planned queries.
* **Memory** — the size of the compactly encoded model collection (the
  paper derives ≤130 bytes per tree and ≤127 KB per 1K-tree model).
"""

from __future__ import annotations

import time

import numpy as np

from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.core.estimator import ResourceEstimator
from repro.core.serialization import (
    ModelSizeReport,
    estimator_to_bytes,
    mart_size_bytes,
    serialize_tree,
)
from repro.core.trainer import TrainerConfig
from repro.api.registry import make_technique
from repro.experiments import config as cfg
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload

__all__ = ["table_13", "prediction_cost", "batch_overhead", "measure_batch_speedup", "model_memory"]


def _synthetic_training_set(n_rows: int, n_features: int = 12, seed: int = 5):
    """A synthetic resource-like regression problem of a given size."""
    rng = np.random.default_rng(seed)
    features = np.column_stack(
        [rng.uniform(1.0, 1e6, size=n_rows) for _ in range(n_features // 2)]
        + [rng.uniform(1.0, 500.0, size=n_rows) for _ in range(n_features - n_features // 2)]
    )
    targets = (
        0.05 * features[:, 0]
        + 0.002 * features[:, 0] * np.log2(features[:, 0] + 1.0)
        + 3.0 * features[:, -1]
        + rng.normal(0.0, 100.0, size=n_rows)
    )
    return features, np.maximum(targets, 0.0)


def table_13(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 13: MART training time when varying the number of training examples."""
    config = config or get_config()
    table = ResultTable(
        experiment_id="Table 13",
        title="Training times in seconds when varying the number of training examples",
        columns=["Training Examples", "Training Time (s)", "Boosting Iterations"],
    )
    for n_rows in config.training_time_sizes:
        features, targets = _synthetic_training_set(n_rows)
        model = MARTRegressor(
            MARTConfig(
                n_iterations=config.training_time_iterations,
                max_leaves=10,
                learning_rate=0.1,
                subsample=0.7,
            )
        )
        started = time.perf_counter()
        model.fit(features, targets)
        elapsed = time.perf_counter() - started
        table.add_row(
            **{
                "Training Examples": n_rows,
                "Training Time (s)": round(elapsed, 2),
                "Boosting Iterations": config.training_time_iterations,
            }
        )
    table.notes = (
        "The paper reports 2.6s-36.8s for 5K-160K examples at 1K iterations on 2012 "
        "hardware; shapes (roughly linear growth in the number of examples) should match."
    )
    return table


def prediction_cost(config: ExperimentConfig | None = None) -> ResultTable:
    """Section 7.3: per-call model evaluation cost vs query optimization cost."""
    config = config or get_config()
    features, targets = _synthetic_training_set(4_000)
    model = MARTRegressor(config.mart)
    model.fit(features, targets)

    # Per-call prediction overhead (single feature vector, as in deployment).
    single = features[0]
    n_calls = 2_000
    started = time.perf_counter()
    for _ in range(n_calls):
        model.predict(single)
    per_call_us = (time.perf_counter() - started) / n_calls * 1e6

    # Batched invocation: one call over the full matrix, per-row cost.
    started = time.perf_counter()
    model.predict(features)
    per_row_batched_us = (time.perf_counter() - started) / features.shape[0] * 1e6

    # Query optimization time of the simulated planner, for perspective.
    catalog = build_tpch_catalog(scale_factor=1.0, skew_z=1.0)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    queries = tpch_template_set().generate(catalog, 18, seed=1)
    started = time.perf_counter()
    for query in queries:
        planner.plan(query)
    per_optimization_ms = (time.perf_counter() - started) / len(queries) * 1e3

    table = ResultTable(
        experiment_id="Prediction overhead",
        title="Model invocation cost vs query optimization cost",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="MART model invocation (us/call)", Value=round(per_call_us, 2))
    table.add_row(
        Quantity="MART model invocation, batched (us/row)", Value=round(per_row_batched_us, 3)
    )
    table.add_row(Quantity="Query optimization (ms/query)", Value=round(per_optimization_ms, 3))
    table.add_row(
        Quantity="Model calls affordable per optimization",
        Value=int(per_optimization_ms * 1e3 / max(per_call_us, 1e-9)),
    )
    table.notes = (
        "The paper measures ~0.5us per call against >50ms per optimization on SQL Server; "
        "the claim being reproduced is that thousands of costing calls fit in one optimization."
    )
    return table


def measure_batch_speedup(
    config: ExperimentConfig | None = None,
    n_queries: int | None = None,
    trainer_config: TrainerConfig | None = None,
    resources: tuple[str, ...] = ("cpu", "io"),
    seed: int = 17,
) -> dict[str, float]:
    """Time ``estimate_workload`` against the per-plan scalar loop.

    Trains a SCALING estimator on the shared TPC-H workload, plans
    ``n_queries`` fresh queries, and estimates all of them both ways.  The
    returned dictionary also carries the largest relative deviation between
    the two paths, which must be ~0 since the scalar path is a one-row
    wrapper over the batch one.
    """
    config = config or get_config()
    n_queries = n_queries if n_queries is not None else config.batch_overhead_queries
    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    training_data = build_training_data(train, FeatureMode.EXACT)
    estimator = ResourceEstimator.train(
        training_data,
        FeatureMode.EXACT,
        resources=resources,
        config=trainer_config or TrainerConfig(mart=config.mart),
    )

    planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
    queries = tpch_template_set().generate(workload.catalog, n_queries, seed=seed)
    plans = [planner.plan(query) for query in queries]
    n_operators = sum(plan.operator_count() for plan in plans)

    started = time.perf_counter()
    batch = estimator.estimate_workload(plans, resources)
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scalar_totals = {
        resource: np.array([estimator.estimate_plan(plan, resource) for plan in plans])
        for resource in resources
    }
    scalar_seconds = time.perf_counter() - started

    max_rel_deviation = max(
        float(
            np.max(
                np.abs(batch.query_totals(resource) - scalar_totals[resource])
                / np.maximum(np.abs(scalar_totals[resource]), 1e-9)
            )
        )
        for resource in resources
    )
    return {
        "n_queries": float(len(plans)),
        "n_operators": float(n_operators),
        "n_resources": float(len(resources)),
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": scalar_seconds / max(batch_seconds, 1e-12),
        "batch_queries_per_second": len(plans) / max(batch_seconds, 1e-12),
        "scalar_queries_per_second": len(plans) / max(scalar_seconds, 1e-12),
        "max_rel_deviation": max_rel_deviation,
    }


def batch_overhead(config: ExperimentConfig | None = None) -> ResultTable:
    """Batched vs scalar workload-estimation throughput (production serving path)."""
    config = config or get_config()
    measured = measure_batch_speedup(config)
    table = ResultTable(
        experiment_id="Batch overhead",
        title="Batched estimate_workload vs per-operator scalar estimation",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Workload size (queries)", Value=int(measured["n_queries"]))
    table.add_row(Quantity="Operators estimated", Value=int(measured["n_operators"]))
    table.add_row(Quantity="Resources", Value=int(measured["n_resources"]))
    table.add_row(Quantity="Scalar loop (s)", Value=round(measured["scalar_seconds"], 3))
    table.add_row(Quantity="estimate_workload (s)", Value=round(measured["batch_seconds"], 3))
    table.add_row(Quantity="Speedup (x)", Value=round(measured["speedup"], 1))
    table.add_row(
        Quantity="Batched throughput (queries/s)",
        Value=round(measured["batch_queries_per_second"], 1),
    )
    table.add_row(
        Quantity="Max batch/scalar deviation", Value=float(measured["max_rel_deviation"])
    )
    table.notes = (
        "The scalar loop pays one model selection and one Python-side MART walk per "
        "operator; the batched path runs one vectorised evaluation per (family, resource) "
        "group, which is what lets prediction overhead stay negligible at workload scale."
    )
    return table


def model_memory(config: ExperimentConfig | None = None) -> ResultTable:
    """Section 7.3: memory footprint of the deployed model collection."""
    config = config or get_config()
    # Per-tree and per-model sizes, at the paper's 10-leaf / 1K-iteration setting.
    features, targets = _synthetic_training_set(3_000)
    single_tree_model = MARTRegressor(MARTConfig(n_iterations=1, max_leaves=10))
    single_tree_model.fit(features, targets)
    tree_bytes = len(serialize_tree(single_tree_model.trees_[0]))

    reference_model = MARTRegressor(
        MARTConfig(n_iterations=config.mart.n_iterations, max_leaves=10)
    )
    reference_model.fit(features, targets)
    per_model_bytes = mart_size_bytes(reference_model)
    per_1k_tree_estimate = tree_bytes * 1000 + 8

    # Size of the full trained SCALING model collection.
    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    technique = make_technique("scaling", trainer_config=TrainerConfig(mart=config.mart))
    technique.fit(train, "cpu", FeatureMode.EXACT)
    report = ModelSizeReport.for_estimator(technique.estimator)
    artifact_bytes = len(estimator_to_bytes(technique.estimator))

    table = ResultTable(
        experiment_id="Model memory",
        title="Memory requirements of the deployed models",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Single 10-leaf tree (bytes)", Value=tree_bytes)
    table.add_row(Quantity="Trained MART model (bytes)", Value=per_model_bytes)
    table.add_row(Quantity="Projected 1000-tree model (bytes)", Value=per_1k_tree_estimate)
    table.add_row(Quantity="SCALING model sets (count)", Value=report.n_model_sets)
    table.add_row(Quantity="SCALING models (count)", Value=report.n_models)
    table.add_row(Quantity="SCALING total size (KB)", Value=round(report.total_bytes / 1024.0, 1))
    table.add_row(
        Quantity="Full-precision artifact (KB)", Value=round(artifact_bytes / 1024.0, 1)
    )
    table.notes = (
        "The paper derives <=130 bytes per tree, <=127KB per 1000-tree model and a few MB "
        "for the full collection; sizes are independent of the training-set and data size."
    )
    return table
