"""Training-time, prediction-overhead and memory experiments (Section 7.3).

* **Table 13** — MART training time as the number of training examples
  grows (the paper reports seconds for 5K-160K examples at 1K boosting
  iterations).
* **Prediction cost** — the per-call overhead of evaluating a trained MART
  model, compared with the time spent optimising a query (the paper reports
  ~0.5 µs per model call vs >50 ms per optimization).
* **Memory** — the size of the compactly encoded model collection (the
  paper derives ≤130 bytes per tree and ≤127 KB per 1K-tree model).
"""

from __future__ import annotations

import time

import numpy as np

from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.core.serialization import ModelSizeReport, mart_size_bytes, serialize_tree
from repro.core.trainer import TrainerConfig
from repro.baselines import ScalingTechnique
from repro.experiments import config as cfg
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import split_workload

__all__ = ["table_13", "prediction_cost", "model_memory"]


def _synthetic_training_set(n_rows: int, n_features: int = 12, seed: int = 5):
    """A synthetic resource-like regression problem of a given size."""
    rng = np.random.default_rng(seed)
    features = np.column_stack(
        [rng.uniform(1.0, 1e6, size=n_rows) for _ in range(n_features // 2)]
        + [rng.uniform(1.0, 500.0, size=n_rows) for _ in range(n_features - n_features // 2)]
    )
    targets = (
        0.05 * features[:, 0]
        + 0.002 * features[:, 0] * np.log2(features[:, 0] + 1.0)
        + 3.0 * features[:, -1]
        + rng.normal(0.0, 100.0, size=n_rows)
    )
    return features, np.maximum(targets, 0.0)


def table_13(config: ExperimentConfig | None = None) -> ResultTable:
    """Table 13: MART training time when varying the number of training examples."""
    config = config or get_config()
    table = ResultTable(
        experiment_id="Table 13",
        title="Training times in seconds when varying the number of training examples",
        columns=["Training Examples", "Training Time (s)", "Boosting Iterations"],
    )
    for n_rows in config.training_time_sizes:
        features, targets = _synthetic_training_set(n_rows)
        model = MARTRegressor(
            MARTConfig(
                n_iterations=config.training_time_iterations,
                max_leaves=10,
                learning_rate=0.1,
                subsample=0.7,
            )
        )
        started = time.perf_counter()
        model.fit(features, targets)
        elapsed = time.perf_counter() - started
        table.add_row(
            **{
                "Training Examples": n_rows,
                "Training Time (s)": round(elapsed, 2),
                "Boosting Iterations": config.training_time_iterations,
            }
        )
    table.notes = (
        "The paper reports 2.6s-36.8s for 5K-160K examples at 1K iterations on 2012 "
        "hardware; shapes (roughly linear growth in the number of examples) should match."
    )
    return table


def prediction_cost(config: ExperimentConfig | None = None) -> ResultTable:
    """Section 7.3: per-call model evaluation cost vs query optimization cost."""
    config = config or get_config()
    features, targets = _synthetic_training_set(4_000)
    model = MARTRegressor(config.mart)
    model.fit(features, targets)

    # Per-call prediction overhead (single feature vector, as in deployment).
    single = features[0]
    n_calls = 2_000
    started = time.perf_counter()
    for _ in range(n_calls):
        model.predict(single)
    per_call_us = (time.perf_counter() - started) / n_calls * 1e6

    # Query optimization time of the simulated planner, for perspective.
    catalog = build_tpch_catalog(scale_factor=1.0, skew_z=1.0)
    planner = Planner(catalog, StatisticsCatalog(catalog))
    queries = tpch_template_set().generate(catalog, 18, seed=1)
    started = time.perf_counter()
    for query in queries:
        planner.plan(query)
    per_optimization_ms = (time.perf_counter() - started) / len(queries) * 1e3

    table = ResultTable(
        experiment_id="Prediction overhead",
        title="Model invocation cost vs query optimization cost",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="MART model invocation (us/call)", Value=round(per_call_us, 2))
    table.add_row(Quantity="Query optimization (ms/query)", Value=round(per_optimization_ms, 3))
    table.add_row(
        Quantity="Model calls affordable per optimization",
        Value=int(per_optimization_ms * 1e3 / max(per_call_us, 1e-9)),
    )
    table.notes = (
        "The paper measures ~0.5us per call against >50ms per optimization on SQL Server; "
        "the claim being reproduced is that thousands of costing calls fit in one optimization."
    )
    return table


def model_memory(config: ExperimentConfig | None = None) -> ResultTable:
    """Section 7.3: memory footprint of the deployed model collection."""
    config = config or get_config()
    # Per-tree and per-model sizes, at the paper's 10-leaf / 1K-iteration setting.
    features, targets = _synthetic_training_set(3_000)
    single_tree_model = MARTRegressor(MARTConfig(n_iterations=1, max_leaves=10))
    single_tree_model.fit(features, targets)
    tree_bytes = len(serialize_tree(single_tree_model.trees_[0]))

    reference_model = MARTRegressor(
        MARTConfig(n_iterations=config.mart.n_iterations, max_leaves=10)
    )
    reference_model.fit(features, targets)
    per_model_bytes = mart_size_bytes(reference_model)
    per_1k_tree_estimate = tree_bytes * 1000 + 8

    # Size of the full trained SCALING model collection.
    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    technique = ScalingTechnique(trainer_config=TrainerConfig(mart=config.mart))
    technique.fit(train, "cpu", FeatureMode.EXACT)
    report = ModelSizeReport.for_estimator(technique.estimator)

    table = ResultTable(
        experiment_id="Model memory",
        title="Memory requirements of the deployed models",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Single 10-leaf tree (bytes)", Value=tree_bytes)
    table.add_row(Quantity="Trained MART model (bytes)", Value=per_model_bytes)
    table.add_row(Quantity="Projected 1000-tree model (bytes)", Value=per_1k_tree_estimate)
    table.add_row(Quantity="SCALING model sets (count)", Value=report.n_model_sets)
    table.add_row(Quantity="SCALING models (count)", Value=report.n_models)
    table.add_row(Quantity="SCALING total size (KB)", Value=round(report.total_bytes / 1024.0, 1))
    table.notes = (
        "The paper derives <=130 bytes per tree, <=127KB per 1000-tree model and a few MB "
        "for the full collection; sizes are independent of the training-set and data size."
    )
    return table
