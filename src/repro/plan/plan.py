"""Query plans and pipeline decomposition.

A :class:`QueryPlan` wraps the root :class:`~repro.plan.operators.PlanOperator`
of a physical operator tree together with the query it implements.  It also
provides the **pipeline decomposition** the paper motivates in Section 5.2:
a pipeline is a maximal set of concurrently executing operators, delimited by
blocking operators (sorts, hash-aggregate builds, hash-join builds).  The
estimator exposes per-pipeline estimates because pipelines that do not run
concurrently never compete for resources — the property that matters for the
scheduling use-case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plan.operators import OperatorType, PlanOperator
from repro.query.spec import QuerySpec

__all__ = ["Pipeline", "QueryPlan"]


@dataclass
class Pipeline:
    """A maximal set of concurrently executing operators."""

    index: int
    operators: list[PlanOperator] = field(default_factory=list)

    @property
    def operator_ids(self) -> set[int]:
        return {op.node_id for op in self.operators}

    def __len__(self) -> int:
        return len(self.operators)


@dataclass
class QueryPlan:
    """A physical execution plan for one query."""

    query: QuerySpec
    root: PlanOperator

    # -- traversal -------------------------------------------------------------
    def operators(self) -> list[PlanOperator]:
        """All operators of the plan, pre-order from the root."""
        return list(self.root.iter_subtree())

    def operators_postorder(self) -> list[PlanOperator]:
        return list(self.root.iter_postorder())

    def operator_count(self) -> int:
        return len(self.operators())

    def count_by_type(self) -> dict[OperatorType, int]:
        counts: dict[OperatorType, int] = {}
        for op in self.operators():
            counts[op.op_type] = counts.get(op.op_type, 0) + 1
        return counts

    @property
    def total_estimated_cost(self) -> float:
        """Total optimizer cost units of the plan (CPU + I/O components)."""
        return float(sum(op.est_cpu_cost + op.est_io_cost for op in self.operators()))

    # -- pipelines --------------------------------------------------------------
    def pipelines(self) -> list[Pipeline]:
        """Decompose the plan into pipelines.

        The decomposition walks the tree assigning each operator to a
        pipeline.  A new pipeline starts below every blocking edge:

        * all children of a Sort / Hash Aggregate start a new pipeline
          (their output is fully materialised before the parent produces
          rows), and
        * the *build* (second) child of a Hash Join starts a new pipeline,
          while the probe (first) child stays in the parent's pipeline.
        """
        pipelines: list[Pipeline] = []

        def new_pipeline() -> Pipeline:
            pipeline = Pipeline(index=len(pipelines))
            pipelines.append(pipeline)
            return pipeline

        def assign(op: PlanOperator, pipeline: Pipeline) -> None:
            pipeline.operators.append(op)
            if op.op_type == OperatorType.HASH_JOIN and len(op.children) == 2:
                # Probe side streams into the join; build side is blocking.
                assign(op.children[0], pipeline)
                assign(op.children[1], new_pipeline())
                return
            if op.op_type in (OperatorType.SORT, OperatorType.HASH_AGGREGATE):
                for child in op.children:
                    assign(child, new_pipeline())
                return
            for child in op.children:
                assign(child, pipeline)

        assign(self.root, new_pipeline())
        return pipelines

    def pipeline_of(self, op: PlanOperator) -> int:
        """Index of the pipeline containing ``op``."""
        for pipeline in self.pipelines():
            if op.node_id in pipeline.operator_ids:
                return pipeline.index
        raise KeyError(f"operator {op.node_id} is not part of this plan")

    def describe(self) -> str:
        """EXPLAIN-style rendering of the plan."""
        return f"Plan for {self.query.name}\n{self.root.describe()}"
