"""Physical plan substrate: operator trees, plans and pipelines."""

from repro.plan.operators import OperatorType, PlanOperator
from repro.plan.plan import Pipeline, QueryPlan

__all__ = ["OperatorType", "PlanOperator", "Pipeline", "QueryPlan"]
