"""Physical operators.

Each node of a query plan is a :class:`PlanOperator` carrying

* its :class:`OperatorType`,
* its children (0 for leaves, 1 for unary operators, 2 for joins),
* the *estimated* and *true* output cardinalities (the planner annotates
  both so the execution simulator and the "exact features" experiments can
  use the truth while the optimizer-estimate experiments use the estimate),
* the average output row width in bytes, and
* a free-form ``props`` dictionary holding operator-specific metadata
  (table/index names, predicate complexity, join/sort/grouping columns,
  memory fractions, ...), documented per operator in
  :mod:`repro.optimizer.planner`.

The operator taxonomy follows the one the paper models (Table 2): scans,
seeks, filters, sorts, hash/merge/nested-loop joins, hash/stream aggregates,
plus Top and Compute Scalar which appear in realistic plans.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["OperatorType", "PlanOperator"]


class OperatorType(enum.Enum):
    """Physical operator types supported by the simulated engine."""

    TABLE_SCAN = "Table Scan"
    INDEX_SCAN = "Index Scan"
    INDEX_SEEK = "Index Seek"
    FILTER = "Filter"
    COMPUTE_SCALAR = "Compute Scalar"
    SORT = "Sort"
    TOP = "Top"
    HASH_JOIN = "Hash Join"
    MERGE_JOIN = "Merge Join"
    NESTED_LOOP_JOIN = "Nested Loop Join"
    HASH_AGGREGATE = "Hash Aggregate"
    STREAM_AGGREGATE = "Stream Aggregate"

    @property
    def is_leaf(self) -> bool:
        """Whether the operator reads a base table (has no plan children)."""
        return self in (OperatorType.TABLE_SCAN, OperatorType.INDEX_SCAN, OperatorType.INDEX_SEEK)

    @property
    def is_join(self) -> bool:
        return self in (
            OperatorType.HASH_JOIN,
            OperatorType.MERGE_JOIN,
            OperatorType.NESTED_LOOP_JOIN,
        )

    @property
    def is_aggregate(self) -> bool:
        return self in (OperatorType.HASH_AGGREGATE, OperatorType.STREAM_AGGREGATE)

    @property
    def is_blocking(self) -> bool:
        """Operators that consume their (build) input before producing output.

        Blocking operators delimit pipelines: Sort and Hash Aggregate fully
        block; a Hash Join blocks its *build* (first) child only, which the
        pipeline decomposition in :mod:`repro.plan.plan` accounts for.
        """
        return self in (
            OperatorType.SORT,
            OperatorType.HASH_AGGREGATE,
            OperatorType.HASH_JOIN,
        )


_operator_ids = itertools.count()


@dataclass
class PlanOperator:
    """A node in a physical plan tree."""

    op_type: OperatorType
    children: list["PlanOperator"] = field(default_factory=list)
    #: Optimizer-estimated number of output rows.
    est_rows: float = 0.0
    #: True number of output rows (known to the simulator, not the optimizer).
    true_rows: float = 0.0
    #: Average output row width in bytes.
    row_width: float = 0.0
    #: Optimizer cost-model components (arbitrary cost units, not ms).
    est_cpu_cost: float = 0.0
    est_io_cost: float = 0.0
    #: Operator-specific metadata (table name, index depth, sort columns...).
    props: dict[str, Any] = field(default_factory=dict)
    #: Unique id within the process; stable identity for metric dictionaries.
    node_id: int = field(default_factory=lambda: next(_operator_ids))

    # -- tree helpers -------------------------------------------------------------
    def iter_subtree(self) -> Iterator["PlanOperator"]:
        """Yield this operator and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def iter_postorder(self) -> Iterator["PlanOperator"]:
        """Yield descendants bottom-up (children before parents)."""
        for child in self.children:
            yield from child.iter_postorder()
        yield self

    @property
    def n_children(self) -> int:
        return len(self.children)

    @property
    def outer_child(self) -> "PlanOperator":
        """First input (probe side of hash joins, outer side of NLJ/merge)."""
        if not self.children:
            raise ValueError(f"{self.op_type.value} has no children")
        return self.children[0]

    @property
    def inner_child(self) -> "PlanOperator":
        """Second input (build side of hash joins, inner side of NLJ/merge)."""
        if len(self.children) < 2:
            raise ValueError(f"{self.op_type.value} has fewer than two children")
        return self.children[1]

    # -- derived quantities ---------------------------------------------------------
    def output_rows(self, estimated: bool) -> float:
        """Output cardinality, estimated or true."""
        return self.est_rows if estimated else self.true_rows

    def output_bytes(self, estimated: bool) -> float:
        """Total bytes produced (cardinality × average row width)."""
        return self.output_rows(estimated) * self.row_width

    def input_rows(self, estimated: bool) -> list[float]:
        """Per-child input cardinalities, in child order."""
        return [child.output_rows(estimated) for child in self.children]

    def total_input_rows(self, estimated: bool) -> float:
        return float(sum(self.input_rows(estimated)))

    def describe(self, indent: int = 0) -> str:
        """Render the subtree as an indented EXPLAIN-style string."""
        pad = "  " * indent
        detail = ""
        if "table" in self.props:
            detail = f" [{self.props['table']}]"
        elif "index" in self.props:
            detail = f" [{self.props['index']}]"
        line = (
            f"{pad}{self.op_type.value}{detail} "
            f"(est_rows={self.est_rows:.0f}, true_rows={self.true_rows:.0f}, "
            f"width={self.row_width:.0f}B)"
        )
        lines = [line]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)
