"""Feature dependencies used for normalisation when scaling (paper Table 3).

When a combined model scales by an outlier feature ``F``, every feature ``D``
that *depends* on ``F`` (meaning a change in ``F`` implies a change in ``D``)
must be normalised by dividing its value by ``F`` — both when training the
scaled model and when predicting with the combined model.  Otherwise the
dependent feature stays an outlier and a single root cause (e.g. an excessive
number of input tuples) would be scaled for twice.

The mapping below reconstructs the dependency matrix of Table 3 from the
semantics of the features (the classic example from the paper:
``SINTOT = CIN × SINAVG``, so ``SINTOT`` depends on ``CIN`` but ``SINAVG``
does not).  Dependencies are directional: ``DEPENDENCIES[F]`` is the set of
features to divide by ``F`` when ``F`` is the scaling feature.
"""

from __future__ import annotations

__all__ = ["FEATURE_DEPENDENCIES", "dependent_features"]

#: outlier feature -> features whose values must be divided by it.
FEATURE_DEPENDENCIES: dict[str, frozenset[str]] = {
    # Output cardinality drives total output bytes.
    "COUT": frozenset({"SOUTTOT"}),
    # Output width drives total output bytes.
    "SOUTAVG": frozenset({"SOUTTOT"}),
    # Total output bytes is itself a product; scaling by it normalises the
    # cardinalities that generated it.
    "SOUTTOT": frozenset({"COUT"}),
    # Input cardinality of child 1 drives that child's byte total, the output
    # cardinality/bytes, and the cardinality-derived operator features.
    "CIN1": frozenset({"SINTOT1", "COUT", "SOUTTOT", "HASHOPTOT", "MINCOMP", "SINSUM"}),
    "CIN2": frozenset({"SINTOT2", "COUT", "SOUTTOT", "HASHOPTOT", "SINSUM"}),
    # Input widths drive the byte totals of their child.
    "SINAVG1": frozenset({"SINTOT1", "SINSUM"}),
    "SINAVG2": frozenset({"SINTOT2", "SINSUM"}),
    "SINTOT1": frozenset({"SINSUM"}),
    "SINTOT2": frozenset({"SINSUM"}),
    # Base-table size drives pages, estimated I/O cost and everything the
    # rows flowing out of a leaf drive.
    "TSIZE": frozenset(
        {"PAGES", "ESTIOCOST", "CIN1", "SINTOT1", "COUT", "SOUTTOT", "MINCOMP", "HASHOPTOT"}
    ),
    "PAGES": frozenset({"ESTIOCOST", "TSIZE", "CIN1", "SINTOT1", "COUT", "SOUTTOT"}),
    "ESTIOCOST": frozenset({"PAGES"}),
    # Inner-table size of a nested loop join drives the index depth feature
    # only logarithmically; the paper treats them as dependent.
    "SSEEKTABLE": frozenset({"ESTIOCOST"}),
    # Sort / hash work totals are products of a cardinality and a column count.
    "MINCOMP": frozenset({"CIN1", "SINTOT1"}),
    "HASHOPTOT": frozenset({"CIN1", "CIN2", "SINTOT1", "SINTOT2"}),
    "SINSUM": frozenset({"SINTOT1", "SINTOT2"}),
}


def dependent_features(outlier_feature: str) -> frozenset[str]:
    """Features to normalise (divide) by ``outlier_feature`` when scaling."""
    return FEATURE_DEPENDENCIES.get(outlier_feature, frozenset())
