"""Feature and operator-family definitions (paper Tables 1 and 2).

Feature names follow the paper.  Features that exist "once per child" in the
paper (CIN, SINAVG, SINTOT) are suffixed with the child index (``CIN1``,
``CIN2``, ...), since joins have two inputs and all other operators have at
most one.

Operators are grouped into *families*; one set of models is trained per
(family, resource) pair, exactly as the paper trains one model per physical
operator type.  Table Scan and Index Scan share a family (both are full
scans of a base structure); every other operator type has its own family.
"""

from __future__ import annotations

import enum

from repro.plan.operators import OperatorType

__all__ = [
    "FeatureMode",
    "OperatorFamily",
    "GLOBAL_FEATURES",
    "OPERATOR_SPECIFIC_FEATURES",
    "OPERATOR_FAMILIES",
    "operator_family",
    "features_for_family",
    "scalable_features",
    "NON_SCALING_FEATURES",
]


class FeatureMode(enum.Enum):
    """Whether cardinality-derived features use exact values or estimates."""

    EXACT = "exact"
    ESTIMATED = "estimated"


class OperatorFamily(enum.Enum):
    """Model families: one collection of models is trained per family."""

    SCAN = "Scan"
    SEEK = "Seek"
    FILTER = "Filter"
    COMPUTE_SCALAR = "Compute Scalar"
    SORT = "Sort"
    TOP = "Top"
    HASH_JOIN = "Hash Join"
    MERGE_JOIN = "Merge Join"
    NESTED_LOOP_JOIN = "Nested Loop Join"
    HASH_AGGREGATE = "Hash Aggregate"
    STREAM_AGGREGATE = "Stream Aggregate"


#: Global features (paper Table 1), shared by every operator family.
GLOBAL_FEATURES: tuple[str, ...] = (
    "COUT",        # number of output tuples
    "SOUTAVG",     # average width of output tuples (bytes)
    "SOUTTOT",     # total number of bytes output
    "CIN1",        # number of input tuples, first child
    "SINAVG1",     # average width of input tuples, first child
    "SINTOT1",     # total bytes input, first child
    "CIN2",        # number of input tuples, second child (0 for unary ops)
    "SINAVG2",     # average width of input tuples, second child
    "SINTOT2",     # total bytes input, second child
    "OUTPUTUSAGE",  # categorical: operator type of the parent
)

#: Operator-specific features (paper Table 2), per family.
OPERATOR_SPECIFIC_FEATURES: dict[OperatorFamily, tuple[str, ...]] = {
    OperatorFamily.SCAN: ("TSIZE", "PAGES", "TCOLUMNS", "ESTIOCOST"),
    OperatorFamily.SEEK: ("TSIZE", "PAGES", "TCOLUMNS", "ESTIOCOST", "INDEXDEPTH"),
    OperatorFamily.FILTER: ("CPREDICATES",),
    OperatorFamily.COMPUTE_SCALAR: ("CEXPRESSIONS",),
    OperatorFamily.SORT: ("MINCOMP", "CSORTCOL"),
    OperatorFamily.TOP: (),
    OperatorFamily.HASH_JOIN: ("HASHOPAVG", "HASHOPTOT", "CINNERCOL", "COUTERCOL"),
    OperatorFamily.MERGE_JOIN: ("CINNERCOL", "COUTERCOL", "SINSUM"),
    OperatorFamily.NESTED_LOOP_JOIN: ("CINNERCOL", "COUTERCOL", "SSEEKTABLE", "INDEXDEPTH"),
    OperatorFamily.HASH_AGGREGATE: ("HASHOPAVG", "HASHOPTOT", "CHASHCOL", "CAGGREGATES"),
    OperatorFamily.STREAM_AGGREGATE: ("CAGGREGATES",),
}

#: Physical operator type -> model family.
OPERATOR_FAMILIES: dict[OperatorType, OperatorFamily] = {
    OperatorType.TABLE_SCAN: OperatorFamily.SCAN,
    OperatorType.INDEX_SCAN: OperatorFamily.SCAN,
    OperatorType.INDEX_SEEK: OperatorFamily.SEEK,
    OperatorType.FILTER: OperatorFamily.FILTER,
    OperatorType.COMPUTE_SCALAR: OperatorFamily.COMPUTE_SCALAR,
    OperatorType.SORT: OperatorFamily.SORT,
    OperatorType.TOP: OperatorFamily.TOP,
    OperatorType.HASH_JOIN: OperatorFamily.HASH_JOIN,
    OperatorType.MERGE_JOIN: OperatorFamily.MERGE_JOIN,
    OperatorType.NESTED_LOOP_JOIN: OperatorFamily.NESTED_LOOP_JOIN,
    OperatorType.HASH_AGGREGATE: OperatorFamily.HASH_AGGREGATE,
    OperatorType.STREAM_AGGREGATE: OperatorFamily.STREAM_AGGREGATE,
}

#: Features that are never considered as scaling ("outlier") features: column
#: counts, per-tuple ratios and the categorical parent-usage feature only
#: modulate per-unit cost and do not grow with data size (paper Section 6.2,
#: "Non-scaling Features").
NON_SCALING_FEATURES: frozenset[str] = frozenset(
    {
        "OUTPUTUSAGE",
        "HASHOPAVG",
        "CHASHCOL",
        "CINNERCOL",
        "COUTERCOL",
        "CSORTCOL",
        "TCOLUMNS",
        "CPREDICATES",
        "CEXPRESSIONS",
        "CAGGREGATES",
        "INDEXDEPTH",
    }
)


def operator_family(op_type: OperatorType) -> OperatorFamily:
    """Model family of a physical operator type."""
    return OPERATOR_FAMILIES[op_type]


def features_for_family(family: OperatorFamily) -> tuple[str, ...]:
    """Ordered feature list (global + operator-specific) for a family."""
    return GLOBAL_FEATURES + OPERATOR_SPECIFIC_FEATURES[family]


def scalable_features(family: OperatorFamily, resource: str = "cpu") -> tuple[str, ...]:
    """Features eligible as scaling ("outlier") features for a family.

    For I/O estimation the paper additionally excludes HASHOPTOT and MINCOMP
    (they only model second-order CPU effects).
    """
    excluded = set(NON_SCALING_FEATURES)
    if resource == "io":
        excluded |= {"HASHOPTOT", "MINCOMP"}
    return tuple(f for f in features_for_family(family) if f not in excluded)
