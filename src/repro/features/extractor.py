"""Extraction of feature vectors from plan operators (paper Figure 4).

Feature values are derived purely from the execution plan and catalog
metadata, so they are available before a query runs — the only uncertain
inputs are cardinality-derived values (tuple and byte counts), for which the
extractor can use either the true values or the optimizer estimates
(:class:`~repro.features.definitions.FeatureMode`).  The only exception,
as in the paper, are operators that scan an entire table: their input counts
are known exactly a priori in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.features.definitions import (
    FeatureMode,
    OperatorFamily,
    features_for_family,
    operator_family,
)
from repro.plan.operators import OperatorType, PlanOperator
from repro.plan.plan import QueryPlan

__all__ = ["OperatorFeatures", "FamilyRows", "FeatureExtractor"]

#: Stable integer encoding of the categorical OUTPUTUSAGE feature.
_OPERATOR_TYPE_CODES: dict[OperatorType, int] = {
    op_type: code for code, op_type in enumerate(OperatorType, start=1)
}


@dataclass(frozen=True)
class OperatorFeatures:
    """A feature vector for one operator instance."""

    family: OperatorFamily
    values: dict[str, float]

    def vector(self, feature_names: tuple[str, ...] | None = None) -> np.ndarray:
        """Dense vector in the canonical feature order of the family."""
        names = feature_names or features_for_family(self.family)
        return np.array([self.values.get(name, 0.0) for name in names], dtype=np.float64)

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)


@dataclass(frozen=True)
class FamilyRows:
    """All operator rows of one family across a batch of plans.

    ``matrix`` holds one row per operator instance in the family's canonical
    feature order; ``plan_indices`` / ``node_ids`` map row ``i`` back to
    operator ``node_ids[i]`` of ``plans[plan_indices[i]]``.
    """

    family: OperatorFamily
    plan_indices: np.ndarray
    node_ids: np.ndarray
    matrix: np.ndarray


class FeatureExtractor:
    """Computes per-operator feature vectors from an annotated plan."""

    def __init__(self, mode: FeatureMode = FeatureMode.EXACT) -> None:
        self.mode = mode

    # -- public API ------------------------------------------------------------------------
    def extract_plan(self, plan: QueryPlan) -> dict[int, OperatorFeatures]:
        """Feature vectors for every operator of ``plan``, keyed by node id."""
        parents: dict[int, PlanOperator | None] = {plan.root.node_id: None}
        for op in plan.operators():
            for child in op.children:
                parents[child.node_id] = op
        return {
            op.node_id: self.extract_operator(op, parents.get(op.node_id))
            for op in plan.operators()
        }

    def extract_plans(self, plans: Sequence[QueryPlan]) -> dict[OperatorFamily, FamilyRows]:
        """Batched extraction: one (rows x features) matrix per family.

        Feature values are computed once per operator and written straight
        into a preallocated matrix — no per-plan feature dict is retained.
        Rows appear in plan order, then operator (pre-order) within the
        plan, matching the grouping of
        :meth:`~repro.core.estimator.ResourceEstimator.estimate_extracted_workload`
        exactly, so the two paths produce identical estimates.
        """
        buckets: dict[OperatorFamily, list[tuple[int, int, dict[str, float]]]] = {}
        for plan_index, plan in enumerate(plans):
            parents: dict[int, PlanOperator | None] = {plan.root.node_id: None}
            for op in plan.operators():
                for child in op.children:
                    parents[child.node_id] = op
            for op in plan.operators():
                features = self.extract_operator(op, parents.get(op.node_id))
                buckets.setdefault(features.family, []).append(
                    (plan_index, op.node_id, features.values)
                )
        out: dict[OperatorFamily, FamilyRows] = {}
        for family, rows in buckets.items():
            names = features_for_family(family)
            matrix = np.empty((len(rows), len(names)), dtype=np.float64)
            for i, (_, _, values) in enumerate(rows):
                matrix[i] = [values.get(name, 0.0) for name in names]
            out[family] = FamilyRows(
                family=family,
                plan_indices=np.asarray([row[0] for row in rows], dtype=np.int64),
                node_ids=np.asarray([row[1] for row in rows], dtype=np.int64),
                matrix=matrix,
            )
        return out

    def extract_operator(
        self, op: PlanOperator, parent: PlanOperator | None = None
    ) -> OperatorFeatures:
        """Feature vector for a single operator instance."""
        family = operator_family(op.op_type)
        values = self._global_features(op, parent)
        values.update(self._operator_specific_features(op, family))
        return OperatorFeatures(family=family, values=values)

    # -- global features ----------------------------------------------------------------------
    def _rows(self, op: PlanOperator) -> float:
        """Output cardinality in the configured mode.

        Full scans of a base table report exact counts in both modes (the
        table cardinality is catalog metadata).
        """
        if op.op_type in (OperatorType.TABLE_SCAN, OperatorType.INDEX_SCAN):
            return float(op.true_rows)
        if self.mode is FeatureMode.EXACT:
            return float(op.true_rows)
        return float(op.est_rows)

    def _global_features(
        self, op: PlanOperator, parent: PlanOperator | None
    ) -> dict[str, float]:
        out_rows = self._rows(op)
        out_width = float(op.row_width)
        values: dict[str, float] = {
            "COUT": out_rows,
            "SOUTAVG": out_width,
            "SOUTTOT": out_rows * out_width,
            "OUTPUTUSAGE": float(_OPERATOR_TYPE_CODES[parent.op_type]) if parent else 0.0,
        }
        children = op.children
        if op.op_type.is_leaf:
            # Leaf operators read the base table: their "input" is the table.
            table_rows = float(op.props.get("table_rows", out_rows))
            full_width = float(op.props.get("row_width_full", out_width))
            inputs: list[tuple[float, float]] = [(table_rows, full_width)]
        else:
            inputs = [(self._rows(child), float(child.row_width)) for child in children]
        for index in (1, 2):
            if index <= len(inputs):
                rows, width = inputs[index - 1]
            else:
                rows, width = 0.0, 0.0
            values[f"CIN{index}"] = rows
            values[f"SINAVG{index}"] = width
            values[f"SINTOT{index}"] = rows * width
        return values

    # -- operator-specific features ---------------------------------------------------------------
    def _operator_specific_features(
        self, op: PlanOperator, family: OperatorFamily
    ) -> dict[str, float]:
        props = op.props
        values: dict[str, float] = {}
        if family in (OperatorFamily.SCAN, OperatorFamily.SEEK):
            values["TSIZE"] = float(props.get("table_rows", 0.0))
            values["PAGES"] = float(props.get("pages", 0.0))
            values["TCOLUMNS"] = float(props.get("table_columns", 0.0))
            values["ESTIOCOST"] = float(op.est_io_cost)
        if family is OperatorFamily.SEEK:
            values["INDEXDEPTH"] = float(props.get("index_depth", 0.0))
        if family is OperatorFamily.FILTER:
            values["CPREDICATES"] = float(props.get("predicate_complexity", 1.0))
        if family is OperatorFamily.COMPUTE_SCALAR:
            values["CEXPRESSIONS"] = float(props.get("n_expressions", 1.0))
        if family is OperatorFamily.SORT:
            sort_columns = float(props.get("n_sort_columns", 1.0))
            rows_in = self._rows(op.children[0]) if op.children else 0.0
            values["CSORTCOL"] = sort_columns
            values["MINCOMP"] = rows_in * sort_columns
        if family in (OperatorFamily.HASH_JOIN, OperatorFamily.HASH_AGGREGATE):
            hash_columns = float(props.get("hash_columns", 1.0))
            rows_in = sum(self._rows(child) for child in op.children)
            values["HASHOPAVG"] = hash_columns
            values["HASHOPTOT"] = hash_columns * rows_in
        if family is OperatorFamily.HASH_AGGREGATE:
            values["CHASHCOL"] = float(props.get("n_group_columns", 1.0))
            values["CAGGREGATES"] = float(props.get("n_aggregates", 1.0))
        if family is OperatorFamily.STREAM_AGGREGATE:
            values["CAGGREGATES"] = float(props.get("n_aggregates", 1.0))
        if family in (
            OperatorFamily.HASH_JOIN,
            OperatorFamily.MERGE_JOIN,
            OperatorFamily.NESTED_LOOP_JOIN,
        ):
            values["CINNERCOL"] = float(props.get("inner_columns", 1.0))
            values["COUTERCOL"] = float(props.get("outer_columns", 1.0))
        if family is OperatorFamily.MERGE_JOIN:
            total_bytes = sum(
                self._rows(child) * float(child.row_width) for child in op.children
            )
            values["SINSUM"] = total_bytes
        if family is OperatorFamily.NESTED_LOOP_JOIN:
            values["SSEEKTABLE"] = float(props.get("inner_table_rows", 0.0))
            values["INDEXDEPTH"] = float(props.get("index_depth", 0.0))
        return values
