"""Feature modelling of SQL operators (paper Section 5).

Queries are modelled at the level of individual physical operators.  Each
operator instance is described by the *global* features of Table 1 (input /
output cardinalities, widths, byte counts, parent-operator usage) and the
*operator-specific* features of Table 2 (table size, pages, index depth,
hash / join / sort column counts, ...).  Feature values can be computed from
either exact cardinalities or the optimizer's estimates, which is the axis
the paper's two experiment families (Tables 4–6 vs 7–9) vary.
"""

from repro.features.definitions import (
    FeatureMode,
    GLOBAL_FEATURES,
    OPERATOR_FAMILIES,
    OperatorFamily,
    features_for_family,
    operator_family,
    scalable_features,
)
from repro.features.dependencies import FEATURE_DEPENDENCIES, dependent_features
from repro.features.extractor import FeatureExtractor, OperatorFeatures

__all__ = [
    "FeatureMode",
    "GLOBAL_FEATURES",
    "OPERATOR_FAMILIES",
    "OperatorFamily",
    "features_for_family",
    "operator_family",
    "scalable_features",
    "FEATURE_DEPENDENCIES",
    "dependent_features",
    "FeatureExtractor",
    "OperatorFeatures",
]
