"""Statistical-learning substrate (implemented from scratch on numpy).

The paper's models and baselines are all regression learners:

* :class:`~repro.ml.regression_tree.RegressionTree` — least-squares CART
  with a leaf-count budget, the building block of MART.
* :class:`~repro.ml.mart.MARTRegressor` — Multiple Additive Regression
  Trees (stochastic gradient boosting), the paper's base learner.
* :class:`~repro.ml.linear.LinearRegressor` /
  :func:`~repro.ml.linear.greedy_feature_selection` — the LINEAR baseline
  and the operator-level model of Akdere et al.
* :class:`~repro.ml.svr.KernelSVR` — kernel support-vector-style regression
  (Poly / NormalizedPoly / RBF kernels), the SVM baseline.
* :class:`~repro.ml.transform_regression.TransformRegressor` — boosted
  piecewise-linear trees, the REGTREE baseline.
* :mod:`~repro.ml.metrics` — the paper's L1 relative error and ratio-error
  buckets.
"""

from repro.ml.kernels import Kernel, NormalizedPolyKernel, PolyKernel, RBFKernel, make_kernel
from repro.ml.linear import LinearRegressor, greedy_feature_selection
from repro.ml.mart import MARTRegressor
from repro.ml.metrics import ErrorSummary, l1_relative_error, ratio_error, ratio_error_buckets
from repro.ml.regression_tree import RegressionTree
from repro.ml.svr import KernelSVR
from repro.ml.transform_regression import TransformRegressor

__all__ = [
    "Kernel",
    "PolyKernel",
    "NormalizedPolyKernel",
    "RBFKernel",
    "make_kernel",
    "LinearRegressor",
    "greedy_feature_selection",
    "MARTRegressor",
    "ErrorSummary",
    "l1_relative_error",
    "ratio_error",
    "ratio_error_buckets",
    "RegressionTree",
    "KernelSVR",
    "TransformRegressor",
]
