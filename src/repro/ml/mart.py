"""MART: Multiple Additive Regression Trees.

MART is least-squares stochastic gradient boosting (Friedman's gradient
boosting machine) over small regression trees.  Each boosting iteration fits
a tree to the residual errors of the ensemble built so far, optionally on a
random subsample of the training rows, and adds the shrunken tree to the
ensemble.  The properties the paper relies on hold for this implementation:

* arbitrary non-linear (and discontinuous) dependencies can be fitted
  because each tree partitions the feature space freely;
* no feature normalisation is required (splits are order-based);
* the model cannot *extrapolate*: predictions for feature values outside the
  training range are constants determined by the outermost leaves — which is
  precisely the weakness the paper's scaling framework corrects.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.flat_ensemble import FlatForest, compile_mart
from repro.ml.regression_tree import RegressionTree

__all__ = ["MARTRegressor", "MARTConfig"]


@dataclass(frozen=True)
class MARTConfig:
    """Hyper-parameters of a MART ensemble.

    The paper trains with 1000 boosting iterations and at most 10 leaves per
    tree; the library defaults are smaller so that the full experiment suite
    runs quickly, and the benchmark harness can raise them to paper scale.
    """

    n_iterations: int = 150
    max_leaves: int = 10
    learning_rate: float = 0.1
    subsample: float = 0.7
    min_samples_leaf: int = 2
    random_seed: int = 7


class MARTRegressor:
    """Stochastic gradient-boosted regression trees (least-squares loss)."""

    def __init__(self, config: MARTConfig | None = None, **overrides: object) -> None:
        base = config or MARTConfig()
        if overrides:
            base = MARTConfig(**{**base.__dict__, **overrides})  # type: ignore[arg-type]
        if base.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if not 0.0 < base.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < base.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.config = base
        self.initial_prediction_: float = 0.0
        self._trees: list[RegressionTree] | None = []
        self._compiled: FlatForest | None = None
        self.n_features_: int | None = None
        self.feature_range_: tuple[np.ndarray, np.ndarray] | None = None

    # -- compiled representation --------------------------------------------------------------
    @property
    def trees_(self) -> list[RegressionTree]:
        """The fitted trees, materialised on demand.

        A model restored from a v3 artifact holds only the compiled
        :class:`FlatForest`; accessing ``trees_`` decompiles it back into
        ``TreeNode`` trees (introspection, legacy-format encoding).
        """
        if self._trees is None:
            assert self._compiled is not None
            trees: list[RegressionTree] = []
            for root in self._compiled.tree_root_nodes():
                tree = RegressionTree(
                    max_leaves=max(self.config.max_leaves, 2),
                    min_samples_leaf=self.config.min_samples_leaf,
                )
                tree.root = root
                tree.n_features_ = self._compiled.n_features
                trees.append(tree)
            self._trees = trees
        return self._trees

    @trees_.setter
    def trees_(self, trees: list[RegressionTree]) -> None:
        self._trees = trees
        self._compiled = None

    def flat_forest(self) -> FlatForest:
        """The ensemble compiled to flat arrays (cached; see flat_ensemble)."""
        if self._compiled is None:
            self._compiled = compile_mart(self)
        return self._compiled

    def _set_compiled(self, forest: FlatForest) -> None:
        """Adopt a decoded flat forest without materialising ``TreeNode``s."""
        self._trees = None
        self._compiled = forest

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state["_trees"] is None:
            state["_trees"] = self.trees_  # pickle the portable representation
        state["_compiled"] = None
        return state

    # -- fitting ----------------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MARTRegressor":
        """Fit the ensemble on ``features`` (n, d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit MART on an empty dataset")
        cfg = self.config
        rng = np.random.default_rng(cfg.random_seed)
        n_rows = features.shape[0]
        self.n_features_ = features.shape[1]
        self.feature_range_ = (features.min(axis=0), features.max(axis=0))

        self.initial_prediction_ = float(targets.mean())
        predictions = np.full(n_rows, self.initial_prediction_, dtype=np.float64)
        self.trees_ = []

        sample_size = max(int(round(cfg.subsample * n_rows)), min(n_rows, 2))
        for _ in range(cfg.n_iterations):
            residuals = targets - predictions
            if np.max(np.abs(residuals)) < 1e-12:
                break
            if sample_size < n_rows:
                rows = rng.choice(n_rows, size=sample_size, replace=False)
            else:
                rows = np.arange(n_rows, dtype=np.int64)
            tree = RegressionTree(
                max_leaves=cfg.max_leaves, min_samples_leaf=cfg.min_samples_leaf
            )
            tree.fit(features[rows], residuals[rows])
            update = tree.predict(features)
            predictions += cfg.learning_rate * update
            self.trees_.append(tree)
        return self

    # -- prediction ---------------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) or a single row (d,)."""
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        if features.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {features.shape[1]}"
            )
        # ``initial_prediction_`` / ``learning_rate`` are passed at call time:
        # they may have been mutated (e.g. by fault injection) after compile.
        out = self.flat_forest().predict(
            features, init=self.initial_prediction_, rate=self.config.learning_rate
        )
        return out[0:1] if single else out

    def predict_per_tree(self, features: np.ndarray) -> np.ndarray:
        """Reference node-walking path: the sequential per-tree fold.

        Kept for parity testing and benchmarking against the compiled
        flat-array kernel; :meth:`predict` must be bit-identical to this.
        """
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        if features.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {features.shape[1]}"
            )
        out = np.full(features.shape[0], self.initial_prediction_, dtype=np.float64)
        rate = self.config.learning_rate
        for tree in self.trees_:
            out += rate * tree.predict(features)
        return out[0:1] if single else out

    # -- introspection -----------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        if self._trees is None:
            assert self._compiled is not None
            return self._compiled.n_trees
        return len(self._trees)

    def training_range(self, feature_index: int) -> tuple[float, float]:
        """(low, high) of a feature over the training data (for out_ratio)."""
        if self.feature_range_ is None:
            raise RuntimeError("model has not been fitted")
        low, high = self.feature_range_
        return float(low[feature_index]), float(high[feature_index])

    def staged_predict(self, features: np.ndarray, every: int = 10) -> list[np.ndarray]:
        """Predictions after every ``every`` boosting iterations (for diagnostics)."""
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.full(features.shape[0], self.initial_prediction_, dtype=np.float64)
        rate = self.config.learning_rate
        stages: list[np.ndarray] = []
        for i, tree in enumerate(self.trees_, start=1):
            out += rate * tree.predict(features)
            if i % every == 0 or i == len(self.trees_):
                stages.append(out.copy())
        return stages
