"""Flat structure-of-arrays compilation of boosted tree ensembles.

The paper's serving argument is that MART inference is cheap enough for the
optimizer's hot loop, but a fitted :class:`~repro.ml.mart.MARTRegressor`
normally predicts by walking Python ``TreeNode`` objects tree-by-tree.  This
module compiles a fitted ensemble into one contiguous structure-of-arrays
layout — per-node ``feature_id`` / ``threshold`` / ``left`` / ``right`` /
``leaf_value`` plus per-tree root offsets — and evaluates *all rows x all
trees* with vectorised index-chasing: no Python recursion, no per-tree loop.

Execution strategy
------------------
The canonical SoA arrays double as the persisted v3 artifact section (see
:mod:`repro.core.serialization`): trees stored in pre-order with
``left == index + 1`` so a saved artifact can be ``frombuffer``/mmap'd
straight into a :class:`FlatForest` without re-walking nodes.  For prediction
the forest lazily derives an *execution plan*: trees are bucketed by depth
and embedded into perfect binary heaps (per-level feature/threshold tables,
one bottom row of leaf values), so a depth-``D`` bucket routes every
(row, tree) cursor with ``D`` branchless table gathers.  Descent uses the
swapped-children convention — ``go = (x <= threshold)`` selects slot
``2*pos + go`` with the LEFT child at the odd slot — which routes NaN
features to the RIGHT child exactly like the node-walking comparison, with
no extra negation pass.  Trees deeper than :data:`_MAX_HEAP_DEPTH` internal
levels (possible only for hand-built or adversarial trees; the paper's
10-leaf trees are far shallower) fall back to a generic ``np.where`` descent
over active row cursors on the SoA arrays.

Numerical identity
------------------
The kernel is bit-identical to the sequential per-tree fold
``out = init; out += rate * tree.predict(X)``: per-tree leaf values are
gathered exactly, the learning-rate multiply is the same elementwise IEEE
operation, and the fold is reproduced with ``np.cumsum`` along axis 1, which
numpy evaluates sequentially (pairwise summation would break identity).
Per-leaf linear refinements of
:class:`~repro.ml.transform_regression.TransformRegressor` compile into
bottom-row slope/intercept tables; ``slope * x + intercept`` matches the
``(m, 1) @ (1,)`` matmul of the node-walking path bitwise.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.ml.regression_tree import TreeNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ml.mart import MARTRegressor
    from repro.ml.transform_regression import TransformRegressor

__all__ = [
    "FlatForest",
    "FlatLayoutStats",
    "compile_mart",
    "compile_transform",
]

#: Trees with more internal levels than this skip the perfect-heap embedding
#: (whose tables grow as ``2**depth``) and route through the generic
#: ``np.where`` descent instead.
_MAX_HEAP_DEPTH = 12

#: Upper bound on ``rows x trees`` cursor cells processed per block, keeping
#: the descent working set cache-resident for very large row batches.
_CELL_BUDGET = 1 << 21

#: ``(leaf feature id, slope, intercept)`` of one leaf's linear refinement.
LeafModel = tuple[int, float, float]


@dataclass(frozen=True)
class FlatLayoutStats:
    """Sizing summary of one compiled ensemble (for ``models inspect``)."""

    n_trees: int
    n_nodes: int
    n_leaves: int
    max_depth: int
    array_bytes: int
    dtype_summary: str


class _HeapBucket:
    """Perfect-heap tables for every tree with the same internal depth."""

    __slots__ = ("depth", "tree_index", "level_feats", "level_thrs", "values", "models")

    def __init__(
        self,
        depth: int,
        tree_index: np.ndarray,
        level_feats: list[np.ndarray],
        level_thrs: list[np.ndarray],
        values: np.ndarray,
        models: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None,
    ) -> None:
        self.depth = depth
        self.tree_index = tree_index
        self.level_feats = level_feats
        self.level_thrs = level_thrs
        self.values = values
        self.models = models


class _ExecutionPlan:
    """Depth-bucketed heaps plus the (rare) deep-tree fallback group."""

    __slots__ = ("buckets", "deep_trees")

    def __init__(self, buckets: list[_HeapBucket], deep_trees: np.ndarray) -> None:
        self.buckets = buckets
        self.deep_trees = deep_trees


class FlatForest:
    """A boosted ensemble compiled to contiguous arrays.

    ``feature_id[i] == -1`` marks node ``i`` as a leaf.  Trees are stored in
    pre-order, so for every internal node ``left[i] == i + 1`` and
    ``right[i] > i + 1`` within the same tree — descent strictly increases
    the node index, which both guarantees termination and lets a decoded
    artifact be validated with a handful of vectorised comparisons.
    ``init_`` / ``learning_rate`` are the values at compile time; callers
    whose ensemble parameters may have been mutated afterwards (the fault
    injector rewrites ``initial_prediction_`` in place) pass the current
    values to :meth:`predict` instead.
    """

    def __init__(
        self,
        feature_id: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_value: np.ndarray,
        tree_roots: np.ndarray,
        learning_rate: float,
        init_: float,
        n_features: int,
        clip_negative: bool = False,
        leaf_has_model: np.ndarray | None = None,
        leaf_model_feature: np.ndarray | None = None,
        leaf_model_slope: np.ndarray | None = None,
        leaf_model_intercept: np.ndarray | None = None,
        validate: bool = False,
    ) -> None:
        self.feature_id = np.ascontiguousarray(feature_id, dtype=np.int32)
        self.threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self.left = np.ascontiguousarray(left, dtype=np.int32)
        self.right = np.ascontiguousarray(right, dtype=np.int32)
        self.leaf_value = np.ascontiguousarray(leaf_value, dtype=np.float64)
        self.tree_roots = np.ascontiguousarray(tree_roots, dtype=np.int64)
        self.learning_rate = float(learning_rate)
        self.init_ = float(init_)
        self.n_features = int(n_features)
        self.clip_negative = bool(clip_negative)
        self.leaf_has_model = (
            None if leaf_has_model is None else np.ascontiguousarray(leaf_has_model, dtype=np.bool_)
        )
        self.leaf_model_feature = (
            None
            if leaf_model_feature is None
            else np.ascontiguousarray(leaf_model_feature, dtype=np.int32)
        )
        self.leaf_model_slope = (
            None
            if leaf_model_slope is None
            else np.ascontiguousarray(leaf_model_slope, dtype=np.float64)
        )
        self.leaf_model_intercept = (
            None
            if leaf_model_intercept is None
            else np.ascontiguousarray(leaf_model_intercept, dtype=np.float64)
        )
        self._plan: _ExecutionPlan | None = None
        self._depths: np.ndarray | None = None
        if validate:
            self._validate()

    # -- construction ----------------------------------------------------------------------------

    @classmethod
    def from_trees(
        cls,
        roots: Sequence[TreeNode],
        learning_rate: float,
        init_: float,
        n_features: int,
        clip_negative: bool = False,
        leaf_models: Sequence[dict[int, LeafModel]] | None = None,
    ) -> "FlatForest":
        """Compile ``TreeNode`` trees (pre-order walk) into flat arrays.

        ``leaf_models`` optionally maps, per tree, the stable pre-order leaf
        rank to that leaf's linear refinement (the keying used by
        :class:`~repro.ml.transform_regression.TransformRegressor`).
        """
        feature_ids: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        tree_roots: list[int] = []
        lm_has: list[bool] = []
        lm_feat: list[int] = []
        lm_slope: list[float] = []
        lm_intercept: list[float] = []
        with_models = leaf_models is not None
        for tree_index, root in enumerate(roots):
            tree_roots.append(len(feature_ids))
            models = leaf_models[tree_index] if with_models else None
            leaf_rank = 0
            # Iterative pre-order with child-offset backpatching: a stack
            # entry is the parent index whose ``right`` field needs the next
            # emitted node's position.
            stack: list[tuple[TreeNode, int]] = [(root, -1)]
            while stack:
                node, patch_right_of = stack.pop()
                index = len(feature_ids)
                if patch_right_of >= 0:
                    rights[patch_right_of] = index
                if node.is_leaf:
                    feature_ids.append(-1)
                    thresholds.append(0.0)
                    lefts.append(index)
                    rights.append(index)
                    values.append(float(node.value))
                    model = models.get(leaf_rank) if models is not None else None
                    if model is not None:
                        lm_has.append(True)
                        lm_feat.append(int(model[0]))
                        lm_slope.append(float(model[1]))
                        lm_intercept.append(float(model[2]))
                    else:
                        lm_has.append(False)
                        lm_feat.append(0)
                        lm_slope.append(0.0)
                        lm_intercept.append(0.0)
                    leaf_rank += 1
                else:
                    feature_ids.append(int(node.feature))
                    thresholds.append(float(node.threshold))
                    lefts.append(index + 1)
                    rights.append(-1)  # backpatched when the right child is emitted
                    values.append(0.0)
                    lm_has.append(False)
                    lm_feat.append(0)
                    lm_slope.append(0.0)
                    lm_intercept.append(0.0)
                    stack.append((node.right, index))
                    stack.append((node.left, -1))
        return cls(
            feature_id=np.asarray(feature_ids, dtype=np.int32),
            threshold=np.asarray(thresholds, dtype=np.float64),
            left=np.asarray(lefts, dtype=np.int32),
            right=np.asarray(rights, dtype=np.int32),
            leaf_value=np.asarray(values, dtype=np.float64),
            tree_roots=np.asarray(tree_roots, dtype=np.int64),
            learning_rate=learning_rate,
            init_=init_,
            n_features=n_features,
            clip_negative=clip_negative,
            leaf_has_model=np.asarray(lm_has, dtype=np.bool_) if with_models else None,
            leaf_model_feature=np.asarray(lm_feat, dtype=np.int32) if with_models else None,
            leaf_model_slope=np.asarray(lm_slope, dtype=np.float64) if with_models else None,
            leaf_model_intercept=(
                np.asarray(lm_intercept, dtype=np.float64) if with_models else None
            ),
        )

    # -- validation (decoded artifacts) ----------------------------------------------------------

    def _validate(self) -> None:
        """Structurally validate arrays that came from an untrusted artifact.

        All checks are vectorised; together with the pre-order invariant
        (children strictly after their parent) they guarantee every descent
        terminates at a leaf of the correct tree.
        """
        n_nodes = int(self.feature_id.shape[0])
        n_trees = int(self.tree_roots.shape[0])
        for name, arr in (
            ("threshold", self.threshold),
            ("left", self.left),
            ("right", self.right),
            ("leaf_value", self.leaf_value),
        ):
            if arr.shape[0] != n_nodes:
                raise ValueError(f"flat ensemble: {name} has {arr.shape[0]} entries, expected {n_nodes}")
        if n_trees and n_nodes == 0:
            raise ValueError("flat ensemble: trees declared but no nodes stored")
        if n_trees:
            if int(self.tree_roots[0]) != 0:
                raise ValueError("flat ensemble: first tree root must be node 0")
            if np.any(self.tree_roots[1:] <= self.tree_roots[:-1]):
                raise ValueError("flat ensemble: tree roots must be strictly increasing")
            if int(self.tree_roots[-1]) >= n_nodes:
                raise ValueError("flat ensemble: tree root offset out of range")
        internal = np.flatnonzero(self.feature_id >= 0)
        if internal.size:
            if int(self.feature_id[internal].max()) >= self.n_features:
                raise ValueError("flat ensemble: feature id out of range")
            if np.any(self.left[internal] != internal + 1):
                raise ValueError("flat ensemble: left child must directly follow its parent")
            rights = self.right[internal]
            if np.any(rights <= internal + 1):
                raise ValueError("flat ensemble: right child must come after the left subtree")
            # Children may not cross into the next tree's node range.
            counts = np.diff(np.concatenate([self.tree_roots, np.asarray([n_nodes], dtype=np.int64)]))
            tree_end = np.repeat(self.tree_roots + counts, counts)
            if np.any(rights >= tree_end[internal]):
                raise ValueError("flat ensemble: right child crosses a tree boundary")

    # -- basic shape -----------------------------------------------------------------------------

    @property
    def n_trees(self) -> int:
        return int(self.tree_roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature_id.shape[0])

    @property
    def has_leaf_models(self) -> bool:
        return self.leaf_has_model is not None

    def _tree_depths(self) -> np.ndarray:
        """Internal depth of every tree (0 == root is a leaf), vectorised."""
        if self._depths is not None:
            return self._depths
        n_trees = self.n_trees
        depths = np.zeros(n_trees, dtype=np.int64)
        frontier_nodes = self.tree_roots.astype(np.intp)
        frontier_tree = np.arange(n_trees, dtype=np.intp)
        level = 0
        while frontier_nodes.size:
            is_internal = self.feature_id[frontier_nodes] >= 0
            # Levels only grow, so plain assignment accumulates the max.
            depths[frontier_tree[~is_internal]] = level
            inner = frontier_nodes[is_internal]
            inner_tree = frontier_tree[is_internal]
            frontier_nodes = np.concatenate(
                [self.left[inner], self.right[inner]], dtype=np.intp, casting="unsafe"
            )
            frontier_tree = np.concatenate([inner_tree, inner_tree])
            level += 1
            if level > self.n_nodes + 1:  # pragma: no cover - guarded by _validate
                raise ValueError("flat ensemble: malformed tree exceeds node count in depth")
        self._depths = depths
        return depths

    # -- execution plan --------------------------------------------------------------------------

    def _execution_plan(self) -> _ExecutionPlan:
        """Derive (once) the depth-bucketed heap tables from the SoA arrays.

        The whole derivation is vectorised level-descent over frontier
        arrays — no per-node Python loop — so compiling a freshly decoded v3
        artifact costs a few array passes, not a tree walk.
        """
        if self._plan is not None:
            return self._plan
        depths = self._tree_depths()
        deep_mask = depths > _MAX_HEAP_DEPTH
        buckets: list[_HeapBucket] = []
        for depth in np.unique(depths[~deep_mask]) if depths.size else []:
            depth = int(depth)
            bucket_trees = np.flatnonzero((depths == depth) & ~deep_mask).astype(np.intp)
            buckets.append(self._build_bucket(depth, bucket_trees))
        plan = _ExecutionPlan(buckets, np.flatnonzero(deep_mask).astype(np.intp))
        self._plan = plan
        return plan

    def _build_bucket(self, depth: int, bucket_trees: np.ndarray) -> _HeapBucket:
        n_bucket = int(bucket_trees.shape[0])
        level_feats = [np.zeros(n_bucket << lvl, dtype=np.intp) for lvl in range(depth)]
        level_thrs = [np.full(n_bucket << lvl, np.inf, dtype=np.float64) for lvl in range(depth)]
        leaf_nodes: list[np.ndarray] = []
        leaf_starts: list[np.ndarray] = []
        leaf_widths: list[np.ndarray] = []
        frontier_nodes = self.tree_roots[bucket_trees].astype(np.intp)
        frontier_tree = np.arange(n_bucket, dtype=np.intp)
        frontier_slot = np.zeros(n_bucket, dtype=np.intp)
        for level in range(depth):
            is_leaf = self.feature_id[frontier_nodes] < 0
            leaf_nodes.append(frontier_nodes[is_leaf])
            leaf_starts.append(
                (frontier_tree[is_leaf] << depth) + (frontier_slot[is_leaf] << (depth - level))
            )
            leaf_widths.append(
                np.full(int(is_leaf.sum()), 1 << (depth - level), dtype=np.intp)
            )
            inner = frontier_nodes[~is_leaf]
            inner_tree = frontier_tree[~is_leaf]
            inner_slot = frontier_slot[~is_leaf]
            table_index = (inner_tree << level) + inner_slot
            level_feats[level][table_index] = self.feature_id[inner]
            level_thrs[level][table_index] = self.threshold[inner]
            # Swapped-children layout: LEFT at the odd slot so that
            # ``2*pos + (x <= thr)`` lands on it, RIGHT at the even slot.
            frontier_nodes = np.concatenate(
                [self.left[inner], self.right[inner]], dtype=np.intp, casting="unsafe"
            )
            frontier_tree = np.concatenate([inner_tree, inner_tree])
            frontier_slot = np.concatenate([(inner_slot << 1) + 1, inner_slot << 1])
        leaf_nodes.append(frontier_nodes)
        leaf_starts.append((frontier_tree << depth) + frontier_slot)
        leaf_widths.append(np.ones(int(frontier_nodes.shape[0]), dtype=np.intp))
        nodes = np.concatenate(leaf_nodes)
        starts = np.concatenate(leaf_starts)
        widths = np.concatenate(leaf_widths)
        # Sorted by bottom-row start offset the leaf ranges tile
        # [0, n_bucket << depth) exactly, so np.repeat fills the bottom row —
        # including every padded slot under an early leaf — in one shot.
        order = np.argsort(starts, kind="stable")
        nodes = nodes[order]
        widths = widths[order]
        values = np.repeat(self.leaf_value[nodes], widths)
        models: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        if (
            self.leaf_has_model is not None
            and self.leaf_model_feature is not None
            and self.leaf_model_slope is not None
            and self.leaf_model_intercept is not None
        ):
            models = (
                np.repeat(self.leaf_has_model[nodes], widths),
                np.repeat(self.leaf_model_feature[nodes].astype(np.intp), widths),
                np.repeat(self.leaf_model_slope[nodes], widths),
                np.repeat(self.leaf_model_intercept[nodes], widths),
            )
        return _HeapBucket(depth, bucket_trees, level_feats, level_thrs, values, models)

    # -- prediction ------------------------------------------------------------------------------

    def predict(
        self,
        features: np.ndarray,
        init: float | None = None,
        rate: float | None = None,
    ) -> np.ndarray:
        """Evaluate the full ensemble for every row of ``features``.

        ``init`` / ``rate`` override the compiled ``init_`` /
        ``learning_rate`` so callers can pass the ensemble's *current*
        parameters (which fault injection may have mutated after compile).
        Bit-identical to the sequential per-tree fold.
        """
        matrix = np.ascontiguousarray(features, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"flat ensemble: expected a 2-D matrix, got shape {matrix.shape}")
        n_rows = matrix.shape[0]
        base = self.init_ if init is None else float(init)
        lr = self.learning_rate if rate is None else float(rate)
        n_trees = self.n_trees
        contrib = np.empty((n_rows, n_trees + 1), dtype=np.float64)
        contrib[:, 0] = base
        if n_rows and n_trees:
            self._fill_tree_outputs(matrix, contrib[:, 1:])
        contrib[:, 1:] *= lr
        np.cumsum(contrib, axis=1, out=contrib)
        out = np.ascontiguousarray(contrib[:, n_trees])
        if self.clip_negative:
            np.maximum(out, 0.0, out=out)
        return out

    def _fill_tree_outputs(self, matrix: np.ndarray, out_cols: np.ndarray) -> None:
        """Write each tree's per-row output into ``out_cols[:, tree]``."""
        plan = self._execution_plan()
        n_rows = matrix.shape[0]
        # Column-major flattening: feature f of row r lives at f * n_rows + r,
        # so one fused gather index replaces 2-D fancy indexing.
        transposed = np.ascontiguousarray(matrix.T).ravel()
        # Per-call column bases: feature id -> offset into ``transposed``.
        colbases = [[feats * n_rows for feats in bucket.level_feats] for bucket in plan.buckets]
        model_colbases = [
            bucket.models[1] * n_rows if bucket.models is not None else None
            for bucket in plan.buckets
        ]
        block = max(int(_CELL_BUDGET // max(self.n_trees, 1)), 16)
        for start in range(0, n_rows, block):
            stop = min(start + block, n_rows)
            row_index = np.arange(start, stop, dtype=np.intp).reshape(-1, 1)
            for bucket, bases, model_base in zip(plan.buckets, colbases, model_colbases):
                out_cols[start:stop, bucket.tree_index] = self._route_bucket(
                    bucket, bases, model_base, transposed, row_index
                )
            if plan.deep_trees.size:
                out_cols[start:stop, plan.deep_trees] = self._route_deep(
                    plan.deep_trees, matrix[start:stop]
                )

    def _route_bucket(
        self,
        bucket: _HeapBucket,
        colbases: list[np.ndarray],
        model_colbase: np.ndarray | None,
        transposed: np.ndarray,
        row_index: np.ndarray,
    ) -> np.ndarray:
        n_block = row_index.shape[0]
        n_bucket = int(bucket.tree_index.shape[0])
        cells = (n_block, n_bucket)
        # ``pos`` folds the tree offset into the slot: at level L the global
        # table index is simply ``tree << L | slot``, so seeding with the
        # bucket-local tree number makes every later gather base-free.
        pos = np.empty(cells, dtype=np.intp)
        pos[:] = np.arange(n_bucket, dtype=np.intp)
        gather_index = np.empty(cells, dtype=np.intp)
        feature_value = np.empty(cells, dtype=np.float64)
        threshold = np.empty(cells, dtype=np.float64)
        go_left = np.empty(cells, dtype=np.bool_)
        for level in range(bucket.depth):
            np.take(colbases[level], pos, out=gather_index, mode="clip")
            gather_index += row_index
            np.take(transposed, gather_index, out=feature_value, mode="clip")
            np.take(bucket.level_thrs[level], pos, out=threshold, mode="clip")
            np.less_equal(feature_value, threshold, out=go_left)
            np.left_shift(pos, 1, out=pos)
            np.add(pos, go_left, out=pos, casting="unsafe")
        leaf = np.empty(cells, dtype=np.float64)
        np.take(bucket.values, pos, out=leaf, mode="clip")
        if bucket.models is not None and model_colbase is not None:
            has_model, _, slope, intercept = bucket.models
            np.take(model_colbase, pos, out=gather_index, mode="clip")
            gather_index += row_index
            np.take(transposed, gather_index, out=feature_value, mode="clip")
            np.take(slope, pos, out=threshold, mode="clip")
            feature_value *= threshold
            np.take(intercept, pos, out=threshold, mode="clip")
            feature_value += threshold
            np.take(has_model, pos, out=go_left, mode="clip")
            leaf = np.where(go_left, feature_value, leaf)
        return leaf

    def _route_deep(self, deep_trees: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Generic ``np.where`` descent over active row cursors (deep trees)."""
        n_block = matrix.shape[0]
        n_deep = int(deep_trees.shape[0])
        pos = np.empty((n_block, n_deep), dtype=np.intp)
        pos[:] = self.tree_roots[deep_trees].astype(np.intp)
        rows = np.broadcast_to(
            np.arange(n_block, dtype=np.intp).reshape(-1, 1), (n_block, n_deep)
        )
        active = self.feature_id[pos] >= 0
        while active.any():
            cells = np.nonzero(active)
            cursor = pos[cells]
            feature = self.feature_id[cursor]
            value = matrix[cells[0], feature]
            go_left = value <= self.threshold[cursor]
            advanced = np.where(go_left, self.left[cursor], self.right[cursor])
            pos[cells] = advanced
            active[cells] = self.feature_id[advanced] >= 0
        leaf = self.leaf_value[pos]
        if (
            self.leaf_has_model is not None
            and self.leaf_model_feature is not None
            and self.leaf_model_slope is not None
            and self.leaf_model_intercept is not None
        ):
            refined = (
                self.leaf_model_slope[pos] * matrix[rows, self.leaf_model_feature[pos]]
                + self.leaf_model_intercept[pos]
            )
            leaf = np.where(self.leaf_has_model[pos], refined, leaf)
        return leaf

    # -- decompile / stats -----------------------------------------------------------------------

    def tree_root_nodes(self) -> list[TreeNode]:
        """Rebuild ``TreeNode`` trees (inverse of :meth:`from_trees`)."""
        roots: list[TreeNode] = []
        n_nodes = self.n_nodes
        for tree in range(self.n_trees):
            start = int(self.tree_roots[tree])
            nodes: dict[int, TreeNode] = {}
            end = int(self.tree_roots[tree + 1]) if tree + 1 < self.n_trees else n_nodes
            # Children always follow their parent in pre-order, so one
            # reverse sweep has both children ready when the parent is built.
            for index in range(end - 1, start - 1, -1):
                if int(self.feature_id[index]) < 0:
                    nodes[index] = TreeNode(value=float(self.leaf_value[index]))
                else:
                    nodes[index] = TreeNode(
                        value=0.0,
                        feature=int(self.feature_id[index]),
                        threshold=float(self.threshold[index]),
                        left=nodes[int(self.left[index])],
                        right=nodes[int(self.right[index])],
                    )
            roots.append(nodes[start])
        return roots

    def leaf_models_by_rank(self) -> list[dict[int, LeafModel]]:
        """Per-tree ``{pre-order leaf rank: (feature, slope, intercept)}``."""
        if (
            self.leaf_has_model is None
            or self.leaf_model_feature is None
            or self.leaf_model_slope is None
            or self.leaf_model_intercept is None
        ):
            return [{} for _ in range(self.n_trees)]
        out: list[dict[int, LeafModel]] = []
        bounds = np.concatenate(
            [self.tree_roots, np.asarray([self.n_nodes], dtype=np.int64)]
        )
        for tree in range(self.n_trees):
            start, end = int(bounds[tree]), int(bounds[tree + 1])
            models: dict[int, LeafModel] = {}
            rank = 0
            for index in range(start, end):
                if int(self.feature_id[index]) >= 0:
                    continue
                if bool(self.leaf_has_model[index]):
                    models[rank] = (
                        int(self.leaf_model_feature[index]),
                        float(self.leaf_model_slope[index]),
                        float(self.leaf_model_intercept[index]),
                    )
                rank += 1
            out.append(models)
        return out

    def stats(self) -> FlatLayoutStats:
        arrays: list[np.ndarray] = [
            self.feature_id,
            self.threshold,
            self.left,
            self.right,
            self.leaf_value,
            self.tree_roots,
        ]
        for extra in (
            self.leaf_has_model,
            self.leaf_model_feature,
            self.leaf_model_slope,
            self.leaf_model_intercept,
        ):
            if extra is not None:
                arrays.append(extra)
        depths = self._tree_depths()
        return FlatLayoutStats(
            n_trees=self.n_trees,
            n_nodes=self.n_nodes,
            n_leaves=int(np.count_nonzero(self.feature_id < 0)),
            max_depth=int(depths.max()) if depths.size else 0,
            array_bytes=int(sum(arr.nbytes for arr in arrays)),
            dtype_summary="feature/children int32, thresholds/values float64, roots int64",
        )


def compile_mart(model: "MARTRegressor") -> FlatForest:
    """Compile a fitted :class:`MARTRegressor` into a :class:`FlatForest`."""
    if model.n_features_ is None:
        raise RuntimeError("model has not been fitted")
    return FlatForest.from_trees(
        [tree.root for tree in model.trees_ if tree.root is not None],
        learning_rate=model.config.learning_rate,
        init_=float(model.initial_prediction_),
        n_features=int(model.n_features_),
    )


def compile_transform(model: "TransformRegressor") -> FlatForest:
    """Compile a fitted :class:`TransformRegressor` (trees + leaf linears)."""
    if model.n_features_ is None:
        raise RuntimeError("model has not been fitted")
    roots: list[TreeNode] = []
    leaf_models: list[dict[int, LeafModel]] = []
    for stage in model.stages_:
        if stage.tree.root is None:  # pragma: no cover - fitted stages always have roots
            raise RuntimeError("transform stage has no fitted tree")
        roots.append(stage.tree.root)
        stage_models: dict[int, LeafModel] = {}
        for rank, (feature_index, regressor) in stage.leaf_models.items():
            if regressor.coefficients_ is None:  # pragma: no cover - fitted by construction
                continue
            stage_models[rank] = (
                int(feature_index),
                float(regressor.coefficients_[0]),
                float(regressor.intercept_),
            )
        leaf_models.append(stage_models)
    return FlatForest.from_trees(
        roots,
        learning_rate=model.config.learning_rate,
        init_=float(model.initial_prediction_),
        n_features=int(model.n_features_),
        clip_negative=bool(model.clip_negative),
        leaf_models=leaf_models,
    )
