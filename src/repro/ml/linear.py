"""Linear / ridge regression and greedy feature selection.

Used for two of the paper's baselines:

* **LINEAR** — a per-operator linear regression over the paper's numeric
  features, with greedy forward feature selection;
* the operator-level model of **Akdere et al. [8]**, which also uses linear
  regression per operator (with its own feature set and a bottom-up
  propagation of estimates through the plan).
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearRegressor", "greedy_feature_selection"]


@dataclass
class LinearRegressor:
    """Ordinary least squares with an intercept and optional L2 ridge term.

    Parameters
    ----------
    ridge:
        L2 regularisation strength (0 = plain OLS, solved via lstsq).
    clip_negative:
        Clamp predictions at zero — resource usage cannot be negative, and a
        linear model extrapolated to small inputs frequently dips below it.
    """

    ridge: float = 1e-6
    clip_negative: bool = True

    def __post_init__(self) -> None:
        self.coefficients_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_features_: int | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n, d = features.shape
        self.n_features_ = d
        design = np.hstack([np.ones((n, 1), dtype=np.float64), features])
        if self.ridge > 0:
            gram = design.T @ design
            # Scale the ridge term relative to the feature magnitudes so that
            # regularisation stays meaningful for features spanning many
            # orders of magnitude (page counts vs column counts).
            scale = max(float(np.trace(gram)) / (d + 1), 1.0)
            penalty = self.ridge * scale * np.eye(d + 1)
            penalty[0, 0] = 0.0  # do not penalise the intercept
            try:
                solution = np.linalg.solve(gram + penalty, design.T @ targets)
            except np.linalg.LinAlgError:
                solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        else:
            solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self.intercept_ = float(solution[0])
        self.coefficients_ = solution[1:]
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coefficients_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out = features @ self.coefficients_ + self.intercept_
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out[0:1] if single else out


def greedy_feature_selection(
    features: np.ndarray,
    targets: np.ndarray,
    max_features: int | None = None,
    n_folds: int = 3,
    ridge: float = 1e-6,
    seed: int = 13,
) -> list[int]:
    """Greedy forward feature selection for a linear model.

    Starting from the empty set, repeatedly add the feature whose inclusion
    minimises cross-validated squared error; stop when no candidate improves
    the score or ``max_features`` is reached.  Returns the selected feature
    indices in the order they were added (never empty — at least the single
    best feature is returned).
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    n, d = features.shape
    if n == 0 or d == 0:
        return list(range(d))
    if max_features is None:
        max_features = d
    max_features = min(max_features, d)

    rng = np.random.default_rng(seed)
    fold_ids = rng.integers(0, n_folds, size=n)

    def cv_error(selected: list[int]) -> float:
        errors = []
        cols = features[:, selected]
        for fold in range(n_folds):
            train_mask = fold_ids != fold
            test_mask = ~train_mask
            if train_mask.sum() < len(selected) + 2 or test_mask.sum() == 0:
                continue
            model = LinearRegressor(ridge=ridge)
            model.fit(cols[train_mask], targets[train_mask])
            pred = model.predict(cols[test_mask])
            errors.append(float(np.mean((pred - targets[test_mask]) ** 2)))
        if not errors:
            model = LinearRegressor(ridge=ridge)
            model.fit(cols, targets)
            return float(np.mean((model.predict(cols) - targets) ** 2))
        return float(np.mean(errors))

    selected: list[int] = []
    best_score = np.inf
    while len(selected) < max_features:
        best_candidate = None
        best_candidate_score = best_score
        for feature in range(d):
            if feature in selected:
                continue
            score = cv_error(selected + [feature])
            if score < best_candidate_score - 1e-12:
                best_candidate_score = score
                best_candidate = feature
        if best_candidate is None:
            break
        selected.append(best_candidate)
        best_score = best_candidate_score
    if not selected:
        selected = [0]
    return selected
