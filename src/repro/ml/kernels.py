"""Kernel functions for the SVM-regression baseline.

The paper evaluates WEKA's SVM regression with every kernel suitable for
numeric data: PolyKernel, NormalizedPolyKernel, Puk and RBFKernel, and
reports the best-performing one per experiment (PolyKernel for the CPU
experiments, RBFKernel for I/O).  We implement the same kernel family.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "PolyKernel", "NormalizedPolyKernel", "RBFKernel", "PukKernel", "make_kernel"]


class Kernel:
    """Base class: a positive-semidefinite kernel over real vectors."""

    name = "kernel"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix between rows of ``a`` (n, d) and rows of ``b`` (m, d)."""
        raise NotImplementedError


class PolyKernel(Kernel):
    """Polynomial kernel ``(x·y + 1)^degree`` (WEKA's PolyKernel)."""

    name = "poly"

    def __init__(self, degree: int = 2) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a @ b.T + 1.0) ** self.degree


class NormalizedPolyKernel(Kernel):
    """Normalised polynomial kernel ``K(x,y)/sqrt(K(x,x)K(y,y))``."""

    name = "normalized_poly"

    def __init__(self, degree: int = 2) -> None:
        self._poly = PolyKernel(degree)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cross = self._poly(a, b)
        diag_a = np.diagonal(self._poly(a, a)).reshape(-1, 1)
        diag_b = np.diagonal(self._poly(b, b)).reshape(1, -1)
        return cross / np.sqrt(np.maximum(diag_a * diag_b, 1e-12))


class RBFKernel(Kernel):
    """Gaussian radial basis function kernel ``exp(-gamma ||x - y||^2)``."""

    name = "rbf"

    def __init__(self, gamma: float = 0.01) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_sq = np.sum(a**2, axis=1).reshape(-1, 1)
        b_sq = np.sum(b**2, axis=1).reshape(1, -1)
        dist_sq = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
        return np.exp(-self.gamma * dist_sq)


class PukKernel(Kernel):
    """Pearson VII universal kernel (WEKA's Puk) with omega=sigma=1."""

    name = "puk"

    def __init__(self, omega: float = 1.0, sigma: float = 1.0) -> None:
        if omega <= 0 or sigma <= 0:
            raise ValueError("omega and sigma must be positive")
        self.omega = omega
        self.sigma = sigma

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_sq = np.sum(a**2, axis=1).reshape(-1, 1)
        b_sq = np.sum(b**2, axis=1).reshape(1, -1)
        dist = np.sqrt(np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0))
        scale = 2.0 * np.sqrt(2.0 ** (1.0 / self.omega) - 1.0) / self.sigma
        return 1.0 / (1.0 + (dist * scale) ** 2) ** self.omega


def make_kernel(name: str, **params: float) -> Kernel:
    """Kernel factory used by the SVM baseline configuration."""
    name = name.lower()
    if name in ("poly", "polykernel"):
        return PolyKernel(int(params.get("degree", 2)))
    if name in ("normalized_poly", "normalizedpolykernel", "npoly"):
        return NormalizedPolyKernel(int(params.get("degree", 2)))
    if name in ("rbf", "rbfkernel"):
        return RBFKernel(float(params.get("gamma", 0.01)))
    if name in ("puk", "pukkernel"):
        return PukKernel(float(params.get("omega", 1.0)), float(params.get("sigma", 1.0)))
    raise ValueError(f"unknown kernel {name!r}")
