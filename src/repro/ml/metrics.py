"""Error metrics used throughout the paper's evaluation (Section 7.1).

Two metrics are reported for every experiment:

* the **L1 relative error** averaged over test queries,
  ``|estimate - actual| / estimate`` (note the denominator: the paper
  normalises by the *estimate*, which penalises under-estimation harder), and
* the distribution of the **ratio error**
  ``max(estimate/actual, actual/estimate)`` over three buckets:
  ``<= 1.5``, ``(1.5, 2]`` and ``> 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["l1_relative_error", "ratio_error", "ratio_error_buckets", "ErrorSummary"]

#: Floor applied to estimates/actuals to keep the metrics finite.
_EPSILON = 1e-9


def l1_relative_error(estimates: np.ndarray, actuals: np.ndarray) -> float:
    """Mean of ``|estimate - actual| / estimate`` over all queries."""
    estimates = np.asarray(estimates, dtype=np.float64)
    actuals = np.asarray(actuals, dtype=np.float64)
    if estimates.shape != actuals.shape:
        raise ValueError("estimates and actuals must have the same shape")
    if estimates.size == 0:
        return 0.0
    denom = np.maximum(np.abs(estimates), _EPSILON)
    return float(np.mean(np.abs(estimates - actuals) / denom))


def ratio_error(estimates: np.ndarray, actuals: np.ndarray) -> np.ndarray:
    """Per-query ratio error ``max(est/actual, actual/est)`` (always >= 1)."""
    estimates = np.maximum(np.asarray(estimates, dtype=np.float64), _EPSILON)
    actuals = np.maximum(np.asarray(actuals, dtype=np.float64), _EPSILON)
    if estimates.shape != actuals.shape:
        raise ValueError("estimates and actuals must have the same shape")
    return np.maximum(estimates / actuals, actuals / estimates)


def ratio_error_buckets(estimates: np.ndarray, actuals: np.ndarray) -> tuple[float, float, float]:
    """Fractions of queries with ratio error <= 1.5, in (1.5, 2], and > 2."""
    ratios = ratio_error(estimates, actuals)
    if ratios.size == 0:
        return 1.0, 0.0, 0.0
    small = float(np.mean(ratios <= 1.5))
    medium = float(np.mean((ratios > 1.5) & (ratios <= 2.0)))
    large = float(np.mean(ratios > 2.0))
    return small, medium, large


@dataclass(frozen=True)
class ErrorSummary:
    """The paper's standard error report for one technique on one test set."""

    l1_error: float
    ratio_le_15: float
    ratio_15_to_2: float
    ratio_gt_2: float
    n_queries: int

    @classmethod
    def from_predictions(cls, estimates: np.ndarray, actuals: np.ndarray) -> "ErrorSummary":
        estimates = np.asarray(estimates, dtype=np.float64)
        actuals = np.asarray(actuals, dtype=np.float64)
        small, medium, large = ratio_error_buckets(estimates, actuals)
        return cls(
            l1_error=l1_relative_error(estimates, actuals),
            ratio_le_15=small,
            ratio_15_to_2=medium,
            ratio_gt_2=large,
            n_queries=int(estimates.size),
        )

    def as_row(self) -> dict[str, float]:
        """Row representation used by the experiment reporting code."""
        return {
            "L1": round(self.l1_error, 3),
            "R<=1.5": round(100.0 * self.ratio_le_15, 2),
            "R in [1.5,2]": round(100.0 * self.ratio_15_to_2, 2),
            "R>2": round(100.0 * self.ratio_gt_2, 2),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"L1={self.l1_error:.2f}  R<=1.5: {100 * self.ratio_le_15:.1f}%  "
            f"R in (1.5,2]: {100 * self.ratio_15_to_2:.1f}%  R>2: {100 * self.ratio_gt_2:.1f}%"
        )
