"""REGTREE: boosted piecewise-linear trees (the transform-regression stand-in).

The paper wanted to compare against transform regression (Pednault, SDM'06),
had no implementation available, and instead used "a modification of MART
which uses linear regression (in one feature) at each tree node" in a
boosting loop over residuals.  This module implements that stand-in:

* each boosting stage is a shallow regression tree;
* every leaf of the stage fits a **one-feature linear model** (the single
  feature with the highest absolute correlation to the residual within the
  leaf) instead of a constant;
* stages are added with shrinkage, each fitting the residual of the
  ensemble so far.

Compared to plain MART this model can extrapolate linearly within a leaf,
which is why the paper observes it performing well in-distribution but less
robustly than explicit scaling when the test data moves far from training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.linear import LinearRegressor
from repro.ml.regression_tree import RegressionTree, TreeNode

__all__ = ["TransformRegressor", "TransformConfig"]


@dataclass(frozen=True)
class TransformConfig:
    """Hyper-parameters of the boosted piecewise-linear model."""

    n_iterations: int = 60
    max_leaves: int = 6
    learning_rate: float = 0.15
    min_samples_leaf: int = 5
    random_seed: int = 29


class _LinearLeafStage:
    """One boosting stage: a tree whose leaves hold one-feature linear models.

    Leaf models are keyed by the leaf's *pre-order position* among the tree's
    leaves (not by ``id(node)``), so a stage survives serialization — object
    identities change across a pickle round-trip, stable positions don't.
    """

    def __init__(self, tree: RegressionTree, leaf_models: dict[int, tuple[int, LinearRegressor]]):
        self.tree = tree
        self.leaf_models = leaf_models

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_leaf_positions", None)  # id-keyed cache; rebuilt on demand
        return state

    def _positions(self) -> dict[int, int]:
        cached = getattr(self, "_leaf_positions", None)
        if cached is None:
            assert self.tree.root is not None
            cached = {id(leaf): i for i, leaf in enumerate(self.tree.root.leaves())}
            self._leaf_positions = cached
        return cached

    def predict(self, features: np.ndarray) -> np.ndarray:
        positions = self._positions()
        out = np.empty(features.shape[0], dtype=np.float64)
        for i in range(features.shape[0]):
            leaf = self._leaf_for(features[i])
            model = self.leaf_models.get(positions[id(leaf)])
            if model is None:
                out[i] = leaf.value
            else:
                feature_index, regressor = model
                prediction = regressor.predict(features[i, feature_index : feature_index + 1])
                out[i] = float(prediction[0])
        return out

    def _leaf_for(self, x: np.ndarray) -> TreeNode:
        node = self.tree.root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node


class TransformRegressor:
    """Boosted trees with one-feature linear models in the leaves."""

    def __init__(self, config: TransformConfig | None = None, **overrides: object) -> None:
        base = config or TransformConfig()
        if overrides:
            base = TransformConfig(**{**base.__dict__, **overrides})  # type: ignore[arg-type]
        self.config = base
        self.initial_prediction_: float = 0.0
        self.stages_: list[_LinearLeafStage] = []
        self.n_features_: int | None = None
        self.clip_negative = True

    # -- fitting ---------------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "TransformRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        cfg = self.config
        self.n_features_ = features.shape[1]
        self.initial_prediction_ = float(targets.mean())
        predictions = np.full(features.shape[0], self.initial_prediction_)
        self.stages_ = []
        for _ in range(cfg.n_iterations):
            residuals = targets - predictions
            if np.max(np.abs(residuals)) < 1e-12:
                break
            stage = self._fit_stage(features, residuals)
            predictions += cfg.learning_rate * stage.predict(features)
            self.stages_.append(stage)
        return self

    def _fit_stage(self, features: np.ndarray, residuals: np.ndarray) -> _LinearLeafStage:
        cfg = self.config
        tree = RegressionTree(max_leaves=cfg.max_leaves, min_samples_leaf=cfg.min_samples_leaf)
        tree.fit(features, residuals)
        # Assign rows to leaves, then fit the best single-feature linear model
        # per leaf (keyed by stable pre-order leaf position).
        assert tree.root is not None
        positions = {id(leaf): i for i, leaf in enumerate(tree.root.leaves())}
        leaf_rows: dict[int, list[int]] = {}
        for i in range(features.shape[0]):
            leaf = self._leaf_for(tree, features[i])
            leaf_rows.setdefault(positions[id(leaf)], []).append(i)
        leaf_models: dict[int, tuple[int, LinearRegressor]] = {}
        for leaf_id, rows in leaf_rows.items():
            rows_arr = np.asarray(rows)
            if len(rows_arr) < 2 * cfg.min_samples_leaf:
                continue
            x = features[rows_arr]
            y = residuals[rows_arr]
            feature_index = self._best_feature(x, y)
            if feature_index is None:
                continue
            model = LinearRegressor(ridge=1e-6, clip_negative=False)
            model.fit(x[:, feature_index : feature_index + 1], y)
            leaf_models[leaf_id] = (feature_index, model)
        return _LinearLeafStage(tree, leaf_models)

    @staticmethod
    def _leaf_for(tree: RegressionTree, x: np.ndarray) -> TreeNode:
        node = tree.root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    @staticmethod
    def _best_feature(x: np.ndarray, y: np.ndarray) -> int | None:
        """The feature most correlated (in absolute value) with the residual."""
        if np.std(y) < 1e-12:
            return None
        best_index = None
        best_corr = 0.0
        for feature in range(x.shape[1]):
            col = x[:, feature]
            std = np.std(col)
            if std < 1e-12:
                continue
            corr = abs(float(np.corrcoef(col, y)[0, 1]))
            if np.isnan(corr):
                continue
            if corr > best_corr:
                best_corr = corr
                best_index = feature
        return best_index

    # -- prediction -------------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out = np.full(features.shape[0], self.initial_prediction_, dtype=np.float64)
        for stage in self.stages_:
            out += self.config.learning_rate * stage.predict(features)
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out[0:1] if single else out
