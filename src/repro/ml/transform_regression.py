"""REGTREE: boosted piecewise-linear trees (the transform-regression stand-in).

The paper wanted to compare against transform regression (Pednault, SDM'06),
had no implementation available, and instead used "a modification of MART
which uses linear regression (in one feature) at each tree node" in a
boosting loop over residuals.  This module implements that stand-in:

* each boosting stage is a shallow regression tree;
* every leaf of the stage fits a **one-feature linear model** (the single
  feature with the highest absolute correlation to the residual within the
  leaf) instead of a constant;
* stages are added with shrinkage, each fitting the residual of the
  ensemble so far.

Compared to plain MART this model can extrapolate linearly within a leaf,
which is why the paper observes it performing well in-distribution but less
robustly than explicit scaling when the test data moves far from training.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.flat_ensemble import FlatForest, compile_transform
from repro.ml.linear import LinearRegressor
from repro.ml.regression_tree import RegressionTree

__all__ = ["TransformRegressor", "TransformConfig"]


@dataclass(frozen=True)
class TransformConfig:
    """Hyper-parameters of the boosted piecewise-linear model."""

    n_iterations: int = 60
    max_leaves: int = 6
    learning_rate: float = 0.15
    min_samples_leaf: int = 5
    random_seed: int = 29


class _LinearLeafStage:
    """One boosting stage: a tree whose leaves hold one-feature linear models.

    Leaf models are keyed by the leaf's *pre-order position* among the tree's
    leaves (not by ``id(node)``), so a stage survives serialization — object
    identities change across a pickle round-trip, stable positions don't.
    """

    def __init__(self, tree: RegressionTree, leaf_models: dict[int, tuple[int, LinearRegressor]]):
        self.tree = tree
        self.leaf_models = leaf_models

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Per-leaf batched prediction: route all rows at once, then apply
        each leaf's linear model to its rows in one regressor call."""
        features = np.asarray(features, dtype=np.float64)
        ranks = self.tree.leaf_positions(features)
        assert self.tree.root is not None
        leaf_values = np.array(
            [leaf.value for leaf in self.tree.root.leaves()], dtype=np.float64
        )
        out = leaf_values[ranks]
        for rank in np.unique(ranks):
            model = self.leaf_models.get(int(rank))
            if model is None:
                continue
            feature_index, regressor = model
            mask = ranks == rank
            out[mask] = regressor.predict(
                features[mask, feature_index : feature_index + 1]
            )
        return out


class TransformRegressor:
    """Boosted trees with one-feature linear models in the leaves."""

    def __init__(self, config: TransformConfig | None = None, **overrides: object) -> None:
        base = config or TransformConfig()
        if overrides:
            base = TransformConfig(**{**base.__dict__, **overrides})  # type: ignore[arg-type]
        self.config = base
        self.initial_prediction_: float = 0.0
        self.stages_: list[_LinearLeafStage] = []
        self.n_features_: int | None = None
        self.clip_negative = True
        self._compiled: FlatForest | None = None

    def flat_forest(self) -> FlatForest:
        """Stages compiled to flat arrays (leaf linears become slope tables)."""
        if self._compiled is None or self._compiled.clip_negative != self.clip_negative:
            self._compiled = compile_transform(self)
        return self._compiled

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_compiled"] = None
        return state

    # -- fitting ---------------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "TransformRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        cfg = self.config
        self.n_features_ = features.shape[1]
        self.initial_prediction_ = float(targets.mean())
        predictions = np.full(features.shape[0], self.initial_prediction_, dtype=np.float64)
        self.stages_ = []
        self._compiled = None
        for _ in range(cfg.n_iterations):
            residuals = targets - predictions
            if np.max(np.abs(residuals)) < 1e-12:
                break
            stage = self._fit_stage(features, residuals)
            predictions += cfg.learning_rate * stage.predict(features)
            self.stages_.append(stage)
        return self

    def _fit_stage(self, features: np.ndarray, residuals: np.ndarray) -> _LinearLeafStage:
        cfg = self.config
        tree = RegressionTree(max_leaves=cfg.max_leaves, min_samples_leaf=cfg.min_samples_leaf)
        tree.fit(features, residuals)
        # Assign rows to leaves in one vectorised routing pass, then fit the
        # best single-feature linear model per leaf (keyed by stable
        # pre-order leaf position).
        ranks = tree.leaf_positions(features)
        leaf_models: dict[int, tuple[int, LinearRegressor]] = {}
        for leaf_id in np.unique(ranks):
            leaf_id = int(leaf_id)
            rows_arr = np.nonzero(ranks == leaf_id)[0]
            if len(rows_arr) < 2 * cfg.min_samples_leaf:
                continue
            x = features[rows_arr]
            y = residuals[rows_arr]
            feature_index = self._best_feature(x, y)
            if feature_index is None:
                continue
            model = LinearRegressor(ridge=1e-6, clip_negative=False)
            model.fit(x[:, feature_index : feature_index + 1], y)
            leaf_models[leaf_id] = (feature_index, model)
        return _LinearLeafStage(tree, leaf_models)

    @staticmethod
    def _best_feature(x: np.ndarray, y: np.ndarray) -> int | None:
        """The feature most correlated (in absolute value) with the residual."""
        if np.std(y) < 1e-12:
            return None
        best_index = None
        best_corr = 0.0
        for feature in range(x.shape[1]):
            col = x[:, feature]
            std = np.std(col)
            if std < 1e-12:
                continue
            corr = abs(float(np.corrcoef(col, y)[0, 1]))
            if np.isnan(corr):
                continue
            if corr > best_corr:
                best_corr = corr
                best_index = feature
        return best_index

    # -- prediction -------------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out = self.flat_forest().predict(
            features, init=self.initial_prediction_, rate=self.config.learning_rate
        )
        return out[0:1] if single else out

    def predict_per_stage(self, features: np.ndarray) -> np.ndarray:
        """Reference node-walking path (per-stage fold), for parity testing."""
        if self.n_features_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out = np.full(features.shape[0], self.initial_prediction_, dtype=np.float64)
        for stage in self.stages_:
            out += self.config.learning_rate * stage.predict(features)
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out[0:1] if single else out
