"""Least-squares regression trees (the building block of MART).

The tree is grown best-first: at every step the leaf whose best split yields
the largest reduction in squared error is expanded, until the ``max_leaves``
budget is exhausted.  Growing best-first (rather than depth-first to a fixed
depth) matches how MART-style implementations bound model complexity by leaf
count — the paper uses trees with at most 10 leaf nodes.

The implementation is fully vectorised: for every candidate feature the
split search sorts the node's rows once and evaluates all thresholds with
prefix sums, so fitting cost is ``O(n log n · d)`` per node.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegressionTree", "TreeNode"]


@dataclass
class TreeNode:
    """A node of a fitted regression tree.

    Leaf nodes have ``feature == -1``; internal nodes route rows with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    def leaves(self) -> list["TreeNode"]:
        if self.is_leaf:
            return [self]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(order=True)
class _SplitCandidate:
    """A candidate leaf expansion kept in the best-first priority queue.

    Every field is required: a candidate only enters the queue once
    ``_best_split`` has produced a complete partition, so it can never be
    applied with missing row subsets.
    """

    neg_gain: float
    tie_breaker: int
    node: TreeNode = field(compare=False)
    rows: np.ndarray = field(compare=False)
    feature: int = field(compare=False)
    threshold: float = field(compare=False)
    left_rows: np.ndarray = field(compare=False)
    right_rows: np.ndarray = field(compare=False)
    left_value: float = field(compare=False)
    right_value: float = field(compare=False)


class RegressionTree:
    """A least-squares CART regressor with a bounded number of leaves.

    Parameters
    ----------
    max_leaves:
        Maximum number of terminal nodes (the paper uses 10).
    min_samples_leaf:
        Minimum number of training rows per leaf.
    """

    def __init__(self, max_leaves: int = 10, min_samples_leaf: int = 2) -> None:
        if max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_leaves = max_leaves
        self.min_samples_leaf = min_samples_leaf
        self._root: TreeNode | None = None
        self._flat_cache: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self.n_features_: int | None = None

    @property
    def root(self) -> TreeNode | None:
        return self._root

    @root.setter
    def root(self, node: TreeNode | None) -> None:
        # Reassigning the root (fit, codec load paths, hand-built trees)
        # invalidates the vectorised-prediction cache.
        self._root = node
        self._flat_cache = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_flat_cache"] = None
        return state

    # -- fitting --------------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``features`` (n, d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = features.shape[1]

        all_rows = np.arange(features.shape[0], dtype=np.int64)
        self.root = TreeNode(value=float(targets.mean()), n_samples=features.shape[0])
        counter = itertools.count()
        heap: list[_SplitCandidate] = []
        self._push_candidate(heap, counter, self.root, all_rows, features, targets)

        n_leaves = 1
        while heap and n_leaves < self.max_leaves:
            candidate = heapq.heappop(heap)
            if candidate.neg_gain >= 0.0:
                break
            node = candidate.node
            node.feature = candidate.feature
            node.threshold = candidate.threshold
            node.left = TreeNode(value=candidate.left_value, n_samples=len(candidate.left_rows))
            node.right = TreeNode(value=candidate.right_value, n_samples=len(candidate.right_rows))
            n_leaves += 1
            self._push_candidate(heap, counter, node.left, candidate.left_rows, features, targets)
            self._push_candidate(heap, counter, node.right, candidate.right_rows, features, targets)
        return self

    def _push_candidate(
        self,
        heap: list[_SplitCandidate],
        counter: "itertools.count",
        node: TreeNode,
        rows: np.ndarray,
        features: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """Evaluate the best split of ``node`` and push it onto the heap."""
        split = self._best_split(features, targets, rows)
        if split is None:
            return
        gain, feature, threshold, left_rows, right_rows, left_value, right_value = split
        heapq.heappush(
            heap,
            _SplitCandidate(
                neg_gain=-gain,
                tie_breaker=next(counter),
                node=node,
                rows=rows,
                feature=feature,
                threshold=threshold,
                left_rows=left_rows,
                right_rows=right_rows,
                left_value=left_value,
                right_value=right_value,
            ),
        )

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray, rows: np.ndarray
    ) -> tuple[float, int, float, np.ndarray, np.ndarray, float, float] | None:
        """Find the SSE-minimising split of the rows, or ``None`` if unsplittable."""
        n = len(rows)
        if n < 2 * self.min_samples_leaf:
            return None
        y = targets[rows]
        total_sum = float(y.sum())
        total_sq = float(((y - y.mean()) ** 2).sum())
        if total_sq <= 1e-12:
            return None

        min_leaf = self.min_samples_leaf
        x = features[rows]  # (n, d)
        order = np.argsort(x, axis=0, kind="stable")  # (n, d)
        x_sorted = np.take_along_axis(x, order, axis=0)
        y_sorted = y[order]  # (n, d): per-feature sorted targets
        # For every feature and split position, the SSE reduction equals
        # left_sum^2/left_count + right_sum^2/right_count - total^2/n, so the
        # best split maximises the first two terms (computed via prefix sums).
        prefix = np.cumsum(y_sorted, axis=0)
        counts = np.arange(1, n + 1, dtype=np.float64).reshape(-1, 1)
        left_sum = prefix[:-1]
        left_count = counts[:-1]
        right_sum = total_sum - left_sum
        right_count = n - left_count
        score = left_sum**2 / left_count + right_sum**2 / right_count  # (n-1, d)
        valid = (
            (x_sorted[1:] > x_sorted[:-1])
            & (left_count >= min_leaf)
            & (right_count >= min_leaf)
        )
        if not np.any(valid):
            return None
        score = np.where(valid, score, -np.inf)
        flat_best = int(np.argmax(score))
        pos, feature = np.unravel_index(flat_best, score.shape)
        best_score = float(score[pos, feature])
        if not np.isfinite(best_score):
            return None
        gain = best_score - total_sum**2 / n
        if gain <= 1e-12:
            return None
        threshold = float((x_sorted[pos, feature] + x_sorted[pos + 1, feature]) / 2.0)
        left_rows = rows[order[: pos + 1, feature]]
        right_rows = rows[order[pos + 1 :, feature]]
        left_value = float(targets[left_rows].mean())
        right_value = float(targets[right_rows].mean())
        return float(gain), int(feature), threshold, left_rows, right_rows, left_value, right_value

    # -- prediction ------------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d)."""
        features = self._prediction_matrix(features)
        values = self._flat()[4]
        return values[self._route(features)]

    def leaf_positions(self, features: np.ndarray) -> np.ndarray:
        """Leaf rank per row, in ``root.leaves()`` (pre-order) order.

        Ranks match the stable pre-order keying used by the serialization
        codec and :mod:`repro.ml.transform_regression`'s leaf models, so
        callers can batch per-leaf work without walking node objects.
        """
        features = self._prediction_matrix(features)
        node_features = self._flat()[0]
        leaf_nodes = np.nonzero(node_features < 0)[0]
        return np.searchsorted(leaf_nodes, self._route(features)).astype(np.int64)

    def _prediction_matrix(self, features: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return features

    def _route(self, features: np.ndarray) -> np.ndarray:
        """Flat node index of the leaf each row lands in (vectorised)."""
        node_features, thresholds, lefts, rights, _ = self._flat()
        # Route all rows through the tree level by level (vectorised).
        positions = np.zeros(features.shape[0], dtype=np.int64)
        active = node_features[positions] >= 0
        while np.any(active):
            rows = np.nonzero(active)[0]
            nodes = positions[rows]
            go_left = features[rows, node_features[nodes]] <= thresholds[nodes]
            positions[rows] = np.where(go_left, lefts[nodes], rights[nodes])
            active[rows] = node_features[positions[rows]] >= 0
        return positions

    def _flat(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array encoding of the tree (cached) for vectorised prediction."""
        if self._flat_cache is not None:
            return self._flat_cache
        nodes: list[TreeNode] = []

        def collect(node: TreeNode) -> int:
            index = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                collect(node.left)
                collect(node.right)
            return index

        assert self.root is not None
        collect(self.root)
        index_of = {id(node): i for i, node in enumerate(nodes)}
        n = len(nodes)
        node_features = np.full(n, -1, dtype=np.int64)
        thresholds = np.zeros(n, dtype=np.float64)
        lefts = np.zeros(n, dtype=np.int64)
        rights = np.zeros(n, dtype=np.int64)
        values = np.zeros(n, dtype=np.float64)
        for i, node in enumerate(nodes):
            values[i] = node.value
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                node_features[i] = node.feature
                thresholds[i] = node.threshold
                lefts[i] = index_of[id(node.left)]
                rights[i] = index_of[id(node.right)]
        flat = (node_features, thresholds, lefts, rights, values)
        self._flat_cache = flat
        return flat

    def _predict_one(self, x: np.ndarray) -> float:
        node = self.root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    # -- introspection -----------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return len(self.root.leaves())

    @property
    def depth(self) -> int:
        if self.root is None:
            return 0
        return self.root.depth()
