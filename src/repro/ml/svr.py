"""Kernel regression with an epsilon-insensitive loss (the SVM baseline).

The paper uses WEKA's SMO-based support-vector regression.  WEKA is not
available here, so this module provides a numerically simple substitute with
the same hypothesis space (a kernel expansion over the training points) and
the same qualitative behaviour the paper observes — strong interpolation,
weak extrapolation for local kernels:

* the default solver is **kernel ridge regression** (closed form, stable,
  fast), which behaves like SVR with a small epsilon;
* an optional **epsilon-insensitive** refinement runs projected sub-gradient
  descent on the dual-like coefficient vector, which sparsifies the solution
  and mimics the flat-tube behaviour of true SVR.

Feature standardisation is applied internally (as WEKA's SMOreg does), since
kernel machines, unlike MART, are sensitive to feature scale.
"""

# repro: hot-path — batched estimation code; lint rules R1/R6 apply.

from __future__ import annotations

import numpy as np

from repro.ml.kernels import Kernel, PolyKernel

__all__ = ["KernelSVR"]


class KernelSVR:
    """Kernel regression with optional epsilon-insensitive refinement.

    Parameters
    ----------
    kernel:
        Kernel object (default: PolyKernel(2), the paper's best CPU kernel).
    ridge:
        Regularisation strength of the closed-form solve.
    epsilon:
        Width of the insensitive tube, as a fraction of the target standard
        deviation.  The default ``0`` disables the refinement phase, leaving
        pure kernel ridge regression (which behaves like SVR with a very
        small tube and is what the experiments use).
    refine_iterations:
        Number of sub-gradient steps of the refinement phase.
    max_train_points:
        Training sets larger than this are subsampled (kernel solves are
        O(n^3)); mirrors WEKA's practical limits on large workloads.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        ridge: float = 1e-3,
        epsilon: float = 0.0,
        refine_iterations: int = 200,
        max_train_points: int = 1500,
        clip_negative: bool = True,
        random_seed: int = 11,
    ) -> None:
        self.kernel = kernel or PolyKernel(2)
        self.ridge = ridge
        self.epsilon = epsilon
        self.refine_iterations = refine_iterations
        self.max_train_points = max_train_points
        self.clip_negative = clip_negative
        self.random_seed = random_seed
        self.support_points_: np.ndarray | None = None
        self.alphas_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None
        self._target_mean: float = 0.0
        self._target_scale: float = 1.0

    # -- fitting --------------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KernelSVR":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("targets must be 1-D and aligned with features")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.random_seed)
        if features.shape[0] > self.max_train_points:
            rows = rng.choice(features.shape[0], size=self.max_train_points, replace=False)
            features = features[rows]
            targets = targets[rows]

        self._feature_mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self._feature_scale = scale
        x = (features - self._feature_mean) / self._feature_scale

        self._target_mean = float(targets.mean())
        self._target_scale = float(targets.std()) or 1.0
        y = (targets - self._target_mean) / self._target_scale

        gram = self.kernel(x, x)
        n = gram.shape[0]
        alphas = np.linalg.solve(gram + self.ridge * np.eye(n), y)

        if self.epsilon > 0 and self.refine_iterations > 0:
            alphas = self._refine(gram, y, alphas)

        self.support_points_ = x
        self.alphas_ = alphas
        self.bias_ = 0.0
        return self

    def _refine(self, gram: np.ndarray, y: np.ndarray, alphas: np.ndarray) -> np.ndarray:
        """Projected sub-gradient descent on the epsilon-insensitive loss."""
        n = gram.shape[0]
        step = 1.0 / (np.trace(gram) / n + self.ridge)
        eps = self.epsilon
        best = alphas.copy()
        best_loss = np.inf
        current = alphas.copy()
        for it in range(self.refine_iterations):
            pred = gram @ current
            err = pred - y
            loss = float(
                np.mean(np.maximum(np.abs(err) - eps, 0.0)) + self.ridge * float(current @ current)
            )
            if loss < best_loss:
                best_loss = loss
                best = current.copy()
            # Sub-gradient of the epsilon-insensitive loss w.r.t. predictions.
            grad_pred = np.where(err > eps, 1.0, np.where(err < -eps, -1.0, 0.0))
            grad = gram @ grad_pred / n + self.ridge * current
            current = current - step * grad / (1.0 + it / 50.0)
        return best

    # -- prediction -------------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.support_points_ is None or self.alphas_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        x = (features - self._feature_mean) / self._feature_scale
        gram = self.kernel(x, self.support_points_)
        out = gram @ self.alphas_ + self.bias_
        out = out * self._target_scale + self._target_mean
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out[0:1] if single else out
