"""TPC-DS (subset) schema builder.

The paper uses ~100 randomly chosen TPC-DS queries over a ~10 GB database as
one of its cross-workload generalisation test sets.  We reproduce the
sub-schema those queries dominantly touch: the three sales fact tables with
their shared dimensions.  Rows are wider and the star-join plan shapes are
different from TPC-H, which is what makes this a useful generalisation test.
"""

from __future__ import annotations

from repro.catalog.schema import Catalog, Column, ColumnType, Index, Table
from repro.data.distributions import make_distribution

__all__ = ["build_tpcds_catalog"]

#: Base (scale-factor 1) row counts of the modelled TPC-DS tables.
_BASE_ROWS = {
    "date_dim": 73_049,
    "item": 18_000,
    "store": 12,
    "customer": 100_000,
    "customer_address": 50_000,
    "customer_demographics": 1_920_800,
    "promotion": 300,
    "store_sales": 2_880_404,
    "catalog_sales": 1_441_548,
    "web_sales": 719_384,
    "store_returns": 287_514,
    "inventory": 11_745_000,
    "warehouse": 5,
}

_FIXED_TABLES = {"date_dim", "store", "warehouse", "promotion", "customer_demographics"}


def _rows(table: str, scale_factor: float) -> int:
    base = _BASE_ROWS[table]
    if table in _FIXED_TABLES:
        return base
    return int(round(base * scale_factor))


def _skewed(ndv: int, z: float):
    return make_distribution("zipf", max(ndv, 1), z)


def build_tpcds_catalog(scale_factor: float = 10.0, skew_z: float = 0.8) -> Catalog:
    """Build a TPC-DS subset catalog (default ~10 GB, matching the paper)."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    cat = Catalog(name=f"tpcds_sf{scale_factor:g}")
    cat.properties.update({"benchmark": "tpcds", "scale_factor": scale_factor, "skew_z": skew_z})

    item_rows = _rows("item", scale_factor)
    customer_rows = _rows("customer", scale_factor)
    address_rows = _rows("customer_address", scale_factor)
    ss_rows = _rows("store_sales", scale_factor)
    cs_rows = _rows("catalog_sales", scale_factor)
    ws_rows = _rows("web_sales", scale_factor)
    sr_rows = _rows("store_returns", scale_factor)
    inv_rows = _rows("inventory", scale_factor)

    cat.add_table(Table("date_dim", [
        Column("d_date_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["date_dim"]),
        Column("d_date", ColumnType.DATE, ndv=_BASE_ROWS["date_dim"]),
        Column("d_year", ColumnType.INTEGER, ndv=200),
        Column("d_moy", ColumnType.INTEGER, ndv=12),
        Column("d_dom", ColumnType.INTEGER, ndv=31),
        Column("d_qoy", ColumnType.INTEGER, ndv=4),
        Column("d_day_name", ColumnType.CHAR, width=9, ndv=7),
        Column("d_month_seq", ColumnType.INTEGER, ndv=2400),
    ], row_count=_rows("date_dim", scale_factor)))

    cat.add_table(Table("item", [
        Column("i_item_sk", ColumnType.INTEGER, ndv=item_rows),
        Column("i_item_id", ColumnType.CHAR, width=16, ndv=item_rows),
        Column("i_item_desc", ColumnType.VARCHAR, width=100, ndv=item_rows),
        Column("i_brand", ColumnType.CHAR, width=50, ndv=700, distribution=_skewed(700, skew_z)),
        Column("i_category", ColumnType.CHAR, width=50, ndv=10, distribution=_skewed(10, skew_z)),
        Column("i_class", ColumnType.CHAR, width=50, ndv=100, distribution=_skewed(100, skew_z)),
        Column("i_manufact_id", ColumnType.INTEGER, ndv=1000, distribution=_skewed(1000, skew_z)),
        Column("i_current_price", ColumnType.DECIMAL, ndv=10_000),
        Column("i_color", ColumnType.CHAR, width=20, ndv=90, distribution=_skewed(90, skew_z)),
    ], row_count=item_rows))

    cat.add_table(Table("store", [
        Column("s_store_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["store"]),
        Column("s_store_id", ColumnType.CHAR, width=16, ndv=_BASE_ROWS["store"]),
        Column("s_store_name", ColumnType.VARCHAR, width=50, ndv=_BASE_ROWS["store"]),
        Column("s_state", ColumnType.CHAR, width=2, ndv=9),
        Column("s_market_id", ColumnType.INTEGER, ndv=10),
    ], row_count=_rows("store", scale_factor)))

    cat.add_table(Table("warehouse", [
        Column("w_warehouse_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["warehouse"]),
        Column("w_warehouse_name", ColumnType.VARCHAR, width=20, ndv=_BASE_ROWS["warehouse"]),
        Column("w_state", ColumnType.CHAR, width=2, ndv=5),
    ], row_count=_rows("warehouse", scale_factor)))

    cat.add_table(Table("promotion", [
        Column("p_promo_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["promotion"]),
        Column("p_channel_email", ColumnType.CHAR, width=1, ndv=2),
        Column("p_channel_tv", ColumnType.CHAR, width=1, ndv=2),
    ], row_count=_rows("promotion", scale_factor)))

    cat.add_table(Table("customer", [
        Column("c_customer_sk", ColumnType.INTEGER, ndv=customer_rows),
        Column("c_customer_id", ColumnType.CHAR, width=16, ndv=customer_rows),
        Column("c_current_addr_sk", ColumnType.INTEGER, ndv=address_rows,
               distribution=_skewed(address_rows, skew_z)),
        Column("c_current_cdemo_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["customer_demographics"]),
        Column("c_first_name", ColumnType.CHAR, width=20, ndv=5000),
        Column("c_last_name", ColumnType.CHAR, width=30, ndv=6000),
        Column("c_birth_year", ColumnType.INTEGER, ndv=100),
        Column("c_birth_country", ColumnType.VARCHAR, width=20, ndv=200,
               distribution=_skewed(200, skew_z)),
    ], row_count=customer_rows))

    cat.add_table(Table("customer_address", [
        Column("ca_address_sk", ColumnType.INTEGER, ndv=address_rows),
        Column("ca_state", ColumnType.CHAR, width=2, ndv=51, distribution=_skewed(51, skew_z)),
        Column("ca_city", ColumnType.VARCHAR, width=60, ndv=1000, distribution=_skewed(1000, skew_z)),
        Column("ca_country", ColumnType.VARCHAR, width=20, ndv=1),
        Column("ca_gmt_offset", ColumnType.DECIMAL, ndv=6),
    ], row_count=address_rows))

    cat.add_table(Table("customer_demographics", [
        Column("cd_demo_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["customer_demographics"]),
        Column("cd_gender", ColumnType.CHAR, width=1, ndv=2),
        Column("cd_marital_status", ColumnType.CHAR, width=1, ndv=5),
        Column("cd_education_status", ColumnType.CHAR, width=20, ndv=7,
               distribution=_skewed(7, skew_z)),
    ], row_count=_rows("customer_demographics", scale_factor)))

    def _sales_columns(prefix: str, rows: int) -> list[Column]:
        return [
            Column(f"{prefix}_sold_date_sk", ColumnType.INTEGER, ndv=1823,
                   distribution=_skewed(1823, skew_z)),
            Column(f"{prefix}_item_sk", ColumnType.INTEGER, ndv=item_rows,
                   distribution=_skewed(item_rows, skew_z)),
            Column(f"{prefix}_customer_sk", ColumnType.INTEGER, ndv=customer_rows,
                   distribution=_skewed(customer_rows, skew_z)),
            Column(f"{prefix}_cdemo_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["customer_demographics"]),
            Column(f"{prefix}_addr_sk", ColumnType.INTEGER, ndv=address_rows),
            Column(f"{prefix}_promo_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["promotion"]),
            Column(f"{prefix}_quantity", ColumnType.INTEGER, ndv=100,
                   distribution=_skewed(100, skew_z)),
            Column(f"{prefix}_wholesale_cost", ColumnType.DECIMAL, ndv=10_000),
            Column(f"{prefix}_list_price", ColumnType.DECIMAL, ndv=30_000),
            Column(f"{prefix}_sales_price", ColumnType.DECIMAL, ndv=30_000),
            Column(f"{prefix}_ext_discount_amt", ColumnType.DECIMAL, ndv=100_000),
            Column(f"{prefix}_ext_sales_price", ColumnType.DECIMAL, ndv=100_000),
            Column(f"{prefix}_net_profit", ColumnType.DECIMAL, ndv=100_000),
            Column(f"{prefix}_ticket_number", ColumnType.BIGINT, ndv=rows),
        ]

    cat.add_table(Table("store_sales",
                        _sales_columns("ss", ss_rows)
                        + [Column("ss_store_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["store"],
                                  distribution=_skewed(_BASE_ROWS["store"], skew_z))],
                        row_count=ss_rows))
    cat.add_table(Table("catalog_sales",
                        _sales_columns("cs", cs_rows)
                        + [Column("cs_warehouse_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["warehouse"])],
                        row_count=cs_rows))
    cat.add_table(Table("web_sales",
                        _sales_columns("ws", ws_rows)
                        + [Column("ws_web_site_sk", ColumnType.INTEGER, ndv=30)],
                        row_count=ws_rows))

    cat.add_table(Table("store_returns", [
        Column("sr_returned_date_sk", ColumnType.INTEGER, ndv=1823,
               distribution=_skewed(1823, skew_z)),
        Column("sr_item_sk", ColumnType.INTEGER, ndv=item_rows,
               distribution=_skewed(item_rows, skew_z)),
        Column("sr_customer_sk", ColumnType.INTEGER, ndv=customer_rows,
               distribution=_skewed(customer_rows, skew_z)),
        Column("sr_ticket_number", ColumnType.BIGINT, ndv=sr_rows),
        Column("sr_return_quantity", ColumnType.INTEGER, ndv=100),
        Column("sr_return_amt", ColumnType.DECIMAL, ndv=100_000),
        Column("sr_net_loss", ColumnType.DECIMAL, ndv=100_000),
    ], row_count=sr_rows))

    cat.add_table(Table("inventory", [
        Column("inv_date_sk", ColumnType.INTEGER, ndv=261,
               distribution=_skewed(261, skew_z)),
        Column("inv_item_sk", ColumnType.INTEGER, ndv=item_rows,
               distribution=_skewed(item_rows, skew_z)),
        Column("inv_warehouse_sk", ColumnType.INTEGER, ndv=_BASE_ROWS["warehouse"]),
        Column("inv_quantity_on_hand", ColumnType.INTEGER, ndv=1000),
    ], row_count=inv_rows))

    # Clustered PKs on the surrogate keys plus the usual fact-table FK indexes.
    cat.add_index(Index("pk_date_dim", "date_dim", ["d_date_sk"], clustered=True))
    cat.add_index(Index("pk_item", "item", ["i_item_sk"], clustered=True))
    cat.add_index(Index("pk_store", "store", ["s_store_sk"], clustered=True))
    cat.add_index(Index("pk_warehouse", "warehouse", ["w_warehouse_sk"], clustered=True))
    cat.add_index(Index("pk_promotion", "promotion", ["p_promo_sk"], clustered=True))
    cat.add_index(Index("pk_customer", "customer", ["c_customer_sk"], clustered=True))
    cat.add_index(Index("pk_customer_address", "customer_address", ["ca_address_sk"], clustered=True))
    cat.add_index(Index("pk_customer_demographics", "customer_demographics", ["cd_demo_sk"],
                        clustered=True))
    cat.add_index(Index("cx_store_sales", "store_sales", ["ss_sold_date_sk", "ss_ticket_number"],
                        clustered=True))
    cat.add_index(Index("cx_catalog_sales", "catalog_sales", ["cs_sold_date_sk", "cs_ticket_number"],
                        clustered=True))
    cat.add_index(Index("cx_web_sales", "web_sales", ["ws_sold_date_sk", "ws_ticket_number"],
                        clustered=True))
    cat.add_index(Index("cx_store_returns", "store_returns", ["sr_returned_date_sk", "sr_ticket_number"],
                        clustered=True))
    cat.add_index(Index("cx_inventory", "inventory", ["inv_date_sk", "inv_item_sk"], clustered=True))
    cat.add_index(Index("ix_ss_item", "store_sales", ["ss_item_sk"]))
    cat.add_index(Index("ix_ss_customer", "store_sales", ["ss_customer_sk"]))
    cat.add_index(Index("ix_cs_item", "catalog_sales", ["cs_item_sk"]))
    cat.add_index(Index("ix_ws_item", "web_sales", ["ws_item_sk"]))
    cat.add_index(Index("ix_sr_item", "store_returns", ["sr_item_sk"]))
    cat.add_index(Index("ix_inv_item", "inventory", ["inv_item_sk"]))
    return cat
