"""Column statistics: the information the optimizer (and only the optimizer)
sees about the data.

Two views of every column exist:

* the **true** distribution (held by :class:`repro.data.Distribution` on the
  column itself), which the engine simulator uses to compute actual
  cardinalities and resource usage, and
* the **statistics** view defined here — an equi-depth histogram with a
  bounded number of buckets plus distinct-value counts — which the
  cardinality estimator uses.

The statistics view intentionally loses information (bucket averaging,
stale/damped distinct counts), which yields the realistic, systematic
cardinality-estimation errors the paper studies in its
"optimizer-estimated features" experiments (Tables 7–12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.schema import Catalog, Column, Table
from repro.data.distributions import Distribution

__all__ = ["ColumnStatistics", "StatisticsCatalog"]

#: Number of histogram buckets kept per column (SQL Server keeps up to 200
#: steps; we keep fewer so bucket-averaging error is visible at small scale).
DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Optimizer-visible statistics for one column.

    The histogram stores, for ``n_buckets`` equal-width slices of the value
    domain (by rank), the fraction of rows falling into each slice.  Range
    selectivities are answered by summing whole buckets and linearly
    interpolating the partial bucket — the classical source of estimation
    error under intra-bucket skew.
    """

    table_name: str
    column_name: str
    row_count: int
    ndv: int
    bucket_fractions: np.ndarray
    #: Damping factor applied to distinct counts to model stale statistics.
    ndv_error: float = 1.0

    @classmethod
    def from_column(
        cls,
        table: Table,
        column: Column,
        n_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        ndv_error: float = 1.0,
    ) -> "ColumnStatistics":
        """Build statistics by sampling the column's true distribution."""
        dist = column.resolved_distribution(table.row_count)
        ndv = column.resolved_ndv(table.row_count)
        n_buckets = max(1, min(n_buckets, ndv))
        boundaries = np.linspace(0.0, 1.0, n_buckets + 1)
        fractions = np.empty(n_buckets, dtype=np.float64)
        prev = 0.0
        for i in range(n_buckets):
            cum = dist.range_selectivity(boundaries[i + 1], anchor="head")
            fractions[i] = max(cum - prev, 0.0)
            prev = cum
        total = fractions.sum()
        if total > 0:
            fractions = fractions / total
        return cls(
            table_name=table.name,
            column_name=column.name,
            row_count=table.row_count,
            ndv=ndv,
            bucket_fractions=fractions,
            ndv_error=ndv_error,
        )

    # -- estimated selectivities ------------------------------------------------
    @property
    def estimated_ndv(self) -> int:
        """Distinct count as the optimizer believes it (possibly damped)."""
        return max(int(round(self.ndv * self.ndv_error)), 1)

    def estimated_eq_selectivity(self) -> float:
        """Estimated selectivity of an equality predicate (1 / NDV)."""
        return 1.0 / self.estimated_ndv

    def estimated_range_selectivity(self, fraction: float, anchor: str = "head") -> float:
        """Estimated selectivity of a range predicate from the histogram."""
        fraction = float(min(1.0, max(0.0, fraction)))
        n_buckets = len(self.bucket_fractions)
        if n_buckets == 0:
            return fraction
        position = fraction * n_buckets
        whole = int(position)
        partial = position - whole
        if anchor == "head":
            buckets = self.bucket_fractions
        elif anchor == "tail":
            buckets = self.bucket_fractions[::-1]
        else:
            raise ValueError(f"anchor must be 'head' or 'tail', got {anchor!r}")
        selectivity = float(buckets[:whole].sum())
        if whole < n_buckets:
            selectivity += float(buckets[whole]) * partial
        return min(max(selectivity, 0.0), 1.0)


@dataclass
class StatisticsCatalog:
    """Statistics for every (table, column) pair of a catalog.

    Parameters
    ----------
    histogram_buckets:
        Bucket budget per column histogram.
    ndv_error:
        Multiplicative damping of distinct-value counts, modelling stale or
        sampled statistics (1.0 = perfectly fresh).
    """

    catalog: Catalog
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS
    ndv_error: float = 1.0
    _stats: dict[tuple[str, str], ColumnStatistics] = field(default_factory=dict)

    def column_statistics(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Return (building lazily) statistics for one column."""
        key = (table_name, column_name)
        if key not in self._stats:
            table = self.catalog.table(table_name)
            column = table.column(column_name)
            self._stats[key] = ColumnStatistics.from_column(
                table,
                column,
                n_buckets=self.histogram_buckets,
                ndv_error=self.ndv_error,
            )
        return self._stats[key]

    def invalidate(self) -> None:
        """Drop all cached statistics (e.g. after editing the catalog)."""
        self._stats.clear()
