"""Relational schema metadata: columns, tables, indexes, catalogs.

Sizes follow simple, SQL Server-like conventions: fixed 8 KB pages, a small
per-row header, B-tree indexes with a fanout derived from key width.  The
derived quantities exposed here (``row_width``, ``pages``, ``index.depth``)
feed directly into the operator-specific features of the paper (Table 2:
``TSIZE``, ``PAGES``, ``TCOLUMNS``, ``INDEXDEPTH``, ``ESTIOCOST``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.data.distributions import Distribution, make_distribution

__all__ = [
    "PAGE_SIZE_BYTES",
    "ROW_HEADER_BYTES",
    "ColumnType",
    "Column",
    "Table",
    "Index",
    "Catalog",
]

#: Fixed page size used for all I/O accounting (SQL Server uses 8 KB pages).
PAGE_SIZE_BYTES = 8192

#: Fixed per-row storage overhead (row header + null bitmap).
ROW_HEADER_BYTES = 10

#: Per-level overhead used when estimating B-tree fanout.
_INDEX_ENTRY_OVERHEAD = 11


class ColumnType(enum.Enum):
    """Logical column types; only the storage width matters to the simulator."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    FLOAT = "float"
    DATE = "date"
    CHAR = "char"
    VARCHAR = "varchar"

    @property
    def default_width(self) -> int:
        """Default storage width in bytes for the type."""
        return {
            ColumnType.INTEGER: 4,
            ColumnType.BIGINT: 8,
            ColumnType.DECIMAL: 8,
            ColumnType.FLOAT: 8,
            ColumnType.DATE: 4,
            ColumnType.CHAR: 16,
            ColumnType.VARCHAR: 32,
        }[self]


@dataclass
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Logical type; determines the default width.
    width:
        Average storage width in bytes (``None`` uses the type default).
    ndv:
        Number of distinct values.  Defaults to the table row count when the
        column is attached to a table (set by :meth:`Table.add_column`).
    distribution:
        Value-frequency distribution; defaults to uniform.
    """

    name: str
    ctype: ColumnType = ColumnType.INTEGER
    width: int | None = None
    ndv: int | None = None
    distribution: Distribution | None = None

    def __post_init__(self) -> None:
        if self.width is None:
            self.width = self.ctype.default_width
        if self.width <= 0:
            raise ValueError(f"column {self.name!r}: width must be positive")

    def resolved_ndv(self, table_rows: int) -> int:
        """Distinct-value count, defaulting to one value per row."""
        if self.ndv is None:
            return max(int(table_rows), 1)
        return max(int(self.ndv), 1)

    def resolved_distribution(self, table_rows: int) -> Distribution:
        """Distribution object, defaulting to uniform over the resolved NDV."""
        if self.distribution is not None:
            return self.distribution
        return make_distribution("uniform", self.resolved_ndv(table_rows))


@dataclass
class Table:
    """A base table with its columns and row count."""

    name: str
    columns: list[Column] = field(default_factory=list)
    row_count: int = 0

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError(f"table {self.name!r}: row_count must be >= 0")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"table {self.name!r}: duplicate column names")

    # -- column access ---------------------------------------------------------
    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    # -- storage math ----------------------------------------------------------
    @property
    def row_width(self) -> int:
        """Average row width in bytes including the row header."""
        return ROW_HEADER_BYTES + sum(int(c.width or 0) for c in self.columns)

    @property
    def total_bytes(self) -> int:
        return self.row_width * self.row_count

    @property
    def pages(self) -> int:
        """Number of data pages, assuming ~96% page fill."""
        if self.row_count == 0:
            return 1
        rows_per_page = max(int((PAGE_SIZE_BYTES * 0.96) // self.row_width), 1)
        return max(int(math.ceil(self.row_count / rows_per_page)), 1)

    def width_of(self, column_names: list[str] | None = None) -> int:
        """Total byte width of a projection (all columns when ``None``)."""
        if column_names is None:
            return self.row_width
        return ROW_HEADER_BYTES + sum(int(self.column(n).width or 0) for n in column_names)


@dataclass
class Index:
    """A B-tree index over one table.

    The index depth (number of B-tree levels) is computed from the number of
    leaf entries and the key fanout; it is exposed as the ``INDEXDEPTH``
    feature and drives seek I/O in the engine simulator.
    """

    name: str
    table_name: str
    key_columns: list[str]
    clustered: bool = False
    include_columns: list[str] = field(default_factory=list)

    def key_width(self, table: Table) -> int:
        """Total key width in bytes."""
        return sum(int(table.column(c).width or 0) for c in self.key_columns)

    def fanout(self, table: Table) -> int:
        """Approximate entries per internal B-tree page."""
        entry = self.key_width(table) + _INDEX_ENTRY_OVERHEAD
        return max(int(PAGE_SIZE_BYTES * 0.9 // entry), 2)

    def leaf_entry_width(self, table: Table) -> int:
        """Leaf entry width: full row for clustered indexes, key + locator otherwise."""
        if self.clustered:
            return table.row_width
        include_width = sum(int(table.column(c).width or 0) for c in self.include_columns)
        return self.key_width(table) + include_width + _INDEX_ENTRY_OVERHEAD

    def leaf_pages(self, table: Table) -> int:
        """Number of leaf-level pages."""
        if table.row_count == 0:
            return 1
        per_page = max(int(PAGE_SIZE_BYTES * 0.9 // self.leaf_entry_width(table)), 1)
        return max(int(math.ceil(table.row_count / per_page)), 1)

    def depth(self, table: Table) -> int:
        """Number of B-tree levels, including the leaf level (>= 1)."""
        pages = self.leaf_pages(table)
        fanout = self.fanout(table)
        depth = 1
        while pages > 1:
            pages = int(math.ceil(pages / fanout))
            depth += 1
        return depth

    def covers(self, column_names: list[str]) -> bool:
        """Whether the index materialises all the given columns."""
        if self.clustered:
            return True
        available = set(self.key_columns) | set(self.include_columns)
        return all(c in available for c in column_names)


@dataclass
class Catalog:
    """A named database: tables plus indexes.

    The catalog deliberately stays metadata-only — no rows are ever
    materialised; the engine simulator works from statistics.
    """

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    indexes: dict[str, Index] = field(default_factory=dict)
    #: Free-form description of the data distribution used (e.g. skew Z).
    properties: dict[str, object] = field(default_factory=dict)

    # -- mutation ----------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise ValueError(f"catalog {self.name!r}: duplicate table {table.name!r}")
        self.tables[table.name] = table
        return table

    def add_index(self, index: Index) -> Index:
        if index.name in self.indexes:
            raise ValueError(f"catalog {self.name!r}: duplicate index {index.name!r}")
        if index.table_name not in self.tables:
            raise ValueError(
                f"catalog {self.name!r}: index {index.name!r} references unknown "
                f"table {index.table_name!r}"
            )
        table = self.tables[index.table_name]
        for col in list(index.key_columns) + list(index.include_columns):
            if not table.has_column(col):
                raise ValueError(
                    f"index {index.name!r}: table {table.name!r} has no column {col!r}"
                )
        self.indexes[index.name] = index
        return index

    # -- lookup ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"catalog {self.name!r} has no table {name!r}") from None

    def indexes_on(self, table_name: str) -> list[Index]:
        """All indexes defined over ``table_name``."""
        return [ix for ix in self.indexes.values() if ix.table_name == table_name]

    def clustered_index(self, table_name: str) -> Index | None:
        for ix in self.indexes_on(table_name):
            if ix.clustered:
                return ix
        return None

    def find_index_on(self, table_name: str, leading_column: str) -> Index | None:
        """Find an index whose leading key column is ``leading_column``."""
        best: Index | None = None
        for ix in self.indexes_on(table_name):
            if ix.key_columns and ix.key_columns[0] == leading_column:
                if best is None or (not best.clustered and ix.clustered):
                    best = ix
        return best

    # -- summary -----------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(t.total_bytes for t in self.tables.values())

    @property
    def total_gb(self) -> float:
        return self.total_bytes / float(1024**3)

    def summary(self) -> str:
        """Human-readable one-table-per-line summary."""
        lines = [f"catalog {self.name!r}: {len(self.tables)} tables, {self.total_gb:.2f} GB"]
        for table in sorted(self.tables.values(), key=lambda t: -t.row_count):
            lines.append(
                f"  {table.name:<24s} rows={table.row_count:>12,d} "
                f"width={table.row_width:>5d}B pages={table.pages:>9,d}"
            )
        return "\n".join(lines)
