"""Schema/metadata substrate.

The catalog plays the role of the database system tables: tables, columns,
indexes and statistics.  The planner reads access paths from it, the
cardinality estimator reads statistics from it, and the feature extractor
reads table/index metadata (``TSIZE``, ``PAGES``, ``TCOLUMNS``,
``INDEXDEPTH``) from it — exactly the "database metadata" inputs the paper
lists in Figure 4.
"""

from repro.catalog.schema import (
    Catalog,
    Column,
    ColumnType,
    Index,
    Table,
    PAGE_SIZE_BYTES,
)
from repro.catalog.statistics import ColumnStatistics, StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.catalog.tpcds import build_tpcds_catalog
from repro.catalog.real import build_real1_catalog, build_real2_catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "Index",
    "Table",
    "PAGE_SIZE_BYTES",
    "ColumnStatistics",
    "StatisticsCatalog",
    "build_tpch_catalog",
    "build_tpcds_catalog",
    "build_real1_catalog",
    "build_real2_catalog",
]
