"""TPC-H schema builder with configurable scale factor and skew.

The paper generates its main training workload from TPC-H data produced by a
skewed generator (Zipf factor ``Z``, up to 2) at scale factors 1–10.  This
module reproduces the schema and the per-scale-factor row counts of the
benchmark; value skew is attached to the columns that the skewed TPC-H
generator skews (foreign keys, quantities, prices, dates).
"""

from __future__ import annotations

from repro.catalog.schema import Catalog, Column, ColumnType, Index, Table
from repro.data.distributions import make_distribution

__all__ = ["build_tpch_catalog", "TPCH_TABLES"]

#: Base (scale-factor 1) row counts of the TPC-H tables.
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality does not grow with the scale factor.
_FIXED_TABLES = {"region", "nation"}

TPCH_TABLES = tuple(_BASE_ROWS)


def _rows(table: str, scale_factor: float) -> int:
    base = _BASE_ROWS[table]
    if table in _FIXED_TABLES:
        return base
    return int(round(base * scale_factor))


def _skewed(ndv: int, skew_z: float):
    """Zipf distribution over ``ndv`` values (uniform when ``skew_z`` is 0)."""
    return make_distribution("zipf", max(ndv, 1), skew_z)


def build_tpch_catalog(scale_factor: float = 1.0, skew_z: float = 1.0) -> Catalog:
    """Build a TPC-H catalog.

    Parameters
    ----------
    scale_factor:
        TPC-H scale factor; roughly the database size in GB.
    skew_z:
        Zipf exponent applied to the skewed columns (0 = uniform data, the
        paper uses 1 and 2).
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    cat = Catalog(name=f"tpch_sf{scale_factor:g}_z{skew_z:g}")
    cat.properties.update({"benchmark": "tpch", "scale_factor": scale_factor, "skew_z": skew_z})

    lineitem_rows = _rows("lineitem", scale_factor)
    orders_rows = _rows("orders", scale_factor)
    customer_rows = _rows("customer", scale_factor)
    part_rows = _rows("part", scale_factor)
    partsupp_rows = _rows("partsupp", scale_factor)
    supplier_rows = _rows("supplier", scale_factor)

    cat.add_table(Table("region", [
        Column("r_regionkey", ColumnType.INTEGER, ndv=5),
        Column("r_name", ColumnType.CHAR, width=25, ndv=5),
        Column("r_comment", ColumnType.VARCHAR, width=80, ndv=5),
    ], row_count=_rows("region", scale_factor)))

    cat.add_table(Table("nation", [
        Column("n_nationkey", ColumnType.INTEGER, ndv=25),
        Column("n_name", ColumnType.CHAR, width=25, ndv=25),
        Column("n_regionkey", ColumnType.INTEGER, ndv=5),
        Column("n_comment", ColumnType.VARCHAR, width=95, ndv=25),
    ], row_count=_rows("nation", scale_factor)))

    cat.add_table(Table("supplier", [
        Column("s_suppkey", ColumnType.INTEGER, ndv=supplier_rows),
        Column("s_name", ColumnType.CHAR, width=25, ndv=supplier_rows),
        Column("s_address", ColumnType.VARCHAR, width=30, ndv=supplier_rows),
        Column("s_nationkey", ColumnType.INTEGER, ndv=25,
               distribution=_skewed(25, skew_z)),
        Column("s_phone", ColumnType.CHAR, width=15, ndv=supplier_rows),
        Column("s_acctbal", ColumnType.DECIMAL, ndv=supplier_rows),
        Column("s_comment", ColumnType.VARCHAR, width=70, ndv=supplier_rows),
    ], row_count=supplier_rows))

    cat.add_table(Table("customer", [
        Column("c_custkey", ColumnType.INTEGER, ndv=customer_rows),
        Column("c_name", ColumnType.VARCHAR, width=25, ndv=customer_rows),
        Column("c_address", ColumnType.VARCHAR, width=30, ndv=customer_rows),
        Column("c_nationkey", ColumnType.INTEGER, ndv=25,
               distribution=_skewed(25, skew_z)),
        Column("c_phone", ColumnType.CHAR, width=15, ndv=customer_rows),
        Column("c_acctbal", ColumnType.DECIMAL, ndv=customer_rows),
        Column("c_mktsegment", ColumnType.CHAR, width=10, ndv=5,
               distribution=_skewed(5, skew_z)),
        Column("c_comment", ColumnType.VARCHAR, width=80, ndv=customer_rows),
    ], row_count=customer_rows))

    cat.add_table(Table("part", [
        Column("p_partkey", ColumnType.INTEGER, ndv=part_rows),
        Column("p_name", ColumnType.VARCHAR, width=40, ndv=part_rows),
        Column("p_mfgr", ColumnType.CHAR, width=25, ndv=5,
               distribution=_skewed(5, skew_z)),
        Column("p_brand", ColumnType.CHAR, width=10, ndv=25,
               distribution=_skewed(25, skew_z)),
        Column("p_type", ColumnType.VARCHAR, width=25, ndv=150,
               distribution=_skewed(150, skew_z)),
        Column("p_size", ColumnType.INTEGER, ndv=50,
               distribution=_skewed(50, skew_z)),
        Column("p_container", ColumnType.CHAR, width=10, ndv=40,
               distribution=_skewed(40, skew_z)),
        Column("p_retailprice", ColumnType.DECIMAL, ndv=part_rows),
        Column("p_comment", ColumnType.VARCHAR, width=14, ndv=part_rows),
    ], row_count=part_rows))

    cat.add_table(Table("partsupp", [
        Column("ps_partkey", ColumnType.INTEGER, ndv=part_rows,
               distribution=_skewed(part_rows, skew_z)),
        Column("ps_suppkey", ColumnType.INTEGER, ndv=supplier_rows,
               distribution=_skewed(supplier_rows, skew_z)),
        Column("ps_availqty", ColumnType.INTEGER, ndv=10_000),
        Column("ps_supplycost", ColumnType.DECIMAL, ndv=100_000),
        Column("ps_comment", ColumnType.VARCHAR, width=120, ndv=partsupp_rows),
    ], row_count=partsupp_rows))

    cat.add_table(Table("orders", [
        Column("o_orderkey", ColumnType.INTEGER, ndv=orders_rows),
        Column("o_custkey", ColumnType.INTEGER, ndv=customer_rows,
               distribution=_skewed(customer_rows, skew_z)),
        Column("o_orderstatus", ColumnType.CHAR, width=1, ndv=3,
               distribution=_skewed(3, skew_z)),
        Column("o_totalprice", ColumnType.DECIMAL, ndv=orders_rows),
        Column("o_orderdate", ColumnType.DATE, ndv=2406,
               distribution=_skewed(2406, skew_z)),
        Column("o_orderpriority", ColumnType.CHAR, width=15, ndv=5,
               distribution=_skewed(5, skew_z)),
        Column("o_clerk", ColumnType.CHAR, width=15, ndv=1000),
        Column("o_shippriority", ColumnType.INTEGER, ndv=1),
        Column("o_comment", ColumnType.VARCHAR, width=49, ndv=orders_rows),
    ], row_count=orders_rows))

    cat.add_table(Table("lineitem", [
        Column("l_orderkey", ColumnType.INTEGER, ndv=orders_rows,
               distribution=_skewed(orders_rows, skew_z)),
        Column("l_partkey", ColumnType.INTEGER, ndv=part_rows,
               distribution=_skewed(part_rows, skew_z)),
        Column("l_suppkey", ColumnType.INTEGER, ndv=supplier_rows,
               distribution=_skewed(supplier_rows, skew_z)),
        Column("l_linenumber", ColumnType.INTEGER, ndv=7),
        Column("l_quantity", ColumnType.DECIMAL, ndv=50,
               distribution=_skewed(50, skew_z)),
        Column("l_extendedprice", ColumnType.DECIMAL, ndv=1_000_000),
        Column("l_discount", ColumnType.DECIMAL, ndv=11,
               distribution=_skewed(11, skew_z)),
        Column("l_tax", ColumnType.DECIMAL, ndv=9),
        Column("l_returnflag", ColumnType.CHAR, width=1, ndv=3,
               distribution=_skewed(3, skew_z)),
        Column("l_linestatus", ColumnType.CHAR, width=1, ndv=2),
        Column("l_shipdate", ColumnType.DATE, ndv=2526,
               distribution=_skewed(2526, skew_z)),
        Column("l_commitdate", ColumnType.DATE, ndv=2466),
        Column("l_receiptdate", ColumnType.DATE, ndv=2554),
        Column("l_shipinstruct", ColumnType.CHAR, width=25, ndv=4),
        Column("l_shipmode", ColumnType.CHAR, width=10, ndv=7,
               distribution=_skewed(7, skew_z)),
        Column("l_comment", ColumnType.VARCHAR, width=27, ndv=lineitem_rows),
    ], row_count=lineitem_rows))

    # Clustered primary-key indexes plus the nonclustered indexes commonly
    # created for TPC-H runs (foreign keys and date columns).
    cat.add_index(Index("pk_region", "region", ["r_regionkey"], clustered=True))
    cat.add_index(Index("pk_nation", "nation", ["n_nationkey"], clustered=True))
    cat.add_index(Index("pk_supplier", "supplier", ["s_suppkey"], clustered=True))
    cat.add_index(Index("pk_customer", "customer", ["c_custkey"], clustered=True))
    cat.add_index(Index("pk_part", "part", ["p_partkey"], clustered=True))
    cat.add_index(Index("pk_partsupp", "partsupp", ["ps_partkey", "ps_suppkey"], clustered=True))
    cat.add_index(Index("pk_orders", "orders", ["o_orderkey"], clustered=True))
    cat.add_index(Index("pk_lineitem", "lineitem", ["l_orderkey", "l_linenumber"], clustered=True))
    cat.add_index(Index("ix_customer_nation", "customer", ["c_nationkey"]))
    cat.add_index(Index("ix_supplier_nation", "supplier", ["s_nationkey"]))
    cat.add_index(Index("ix_orders_custkey", "orders", ["o_custkey"]))
    cat.add_index(Index("ix_orders_orderdate", "orders", ["o_orderdate"]))
    cat.add_index(Index("ix_lineitem_partkey", "lineitem", ["l_partkey"]))
    cat.add_index(Index("ix_lineitem_suppkey", "lineitem", ["l_suppkey"]))
    cat.add_index(Index("ix_lineitem_shipdate", "lineitem", ["l_shipdate"]))
    cat.add_index(Index("ix_partsupp_suppkey", "partsupp", ["ps_suppkey"]))
    return cat
