"""Synthetic stand-ins for the paper's two proprietary "real-life" workloads.

The paper describes them only in aggregate terms:

* **Real-1** — a ~9 GB sales / reporting database; 222 distinct
  decision-support queries, most joining 5–8 tables, with nested
  sub-queries.
* **Real-2** — a ~12 GB database with even more complex queries
  (typically ~12 joins); 887 queries.

We cannot obtain the original databases, so we build two enterprise-style
schemas whose sizes, join depths and query counts match those aggregate
descriptions (see DESIGN.md, substitution table).  What matters for the
reproduction is that these schemas are *structurally unrelated* to TPC-H
(different tables, widths, index layouts and plan shapes) and that their
queries consume substantially more resources than the TPC-H training
queries — these are the properties that make them a hard generalisation
test for models trained on TPC-H.
"""

from __future__ import annotations

from repro.catalog.schema import Catalog, Column, ColumnType, Index, Table
from repro.data.distributions import make_distribution

__all__ = ["build_real1_catalog", "build_real2_catalog"]


def _zipf(ndv: int, z: float):
    return make_distribution("zipf", max(ndv, 1), z)


def _normal(ndv: int, spread: float = 0.25):
    return make_distribution("normal", max(ndv, 1), spread)


def build_real1_catalog(skew_z: float = 1.2) -> Catalog:
    """Build the "Real-1" sales/reporting schema (~9 GB)."""
    cat = Catalog(name="real1_sales")
    cat.properties.update({"benchmark": "real1", "skew_z": skew_z, "target_gb": 9})

    n_products = 250_000
    n_stores = 1_200
    n_customers = 2_000_000
    n_employees = 40_000
    n_dates = 1_826
    n_sales = 28_000_000
    n_saleslines = 52_000_000
    n_inventory = 9_000_000

    cat.add_table(Table("dim_date", [
        Column("date_key", ColumnType.INTEGER, ndv=n_dates),
        Column("calendar_date", ColumnType.DATE, ndv=n_dates),
        Column("fiscal_year", ColumnType.INTEGER, ndv=6),
        Column("fiscal_quarter", ColumnType.INTEGER, ndv=4),
        Column("fiscal_month", ColumnType.INTEGER, ndv=12),
        Column("is_holiday", ColumnType.CHAR, width=1, ndv=2),
    ], row_count=n_dates))

    cat.add_table(Table("dim_product", [
        Column("product_key", ColumnType.INTEGER, ndv=n_products),
        Column("product_code", ColumnType.VARCHAR, width=18, ndv=n_products),
        Column("product_name", ColumnType.VARCHAR, width=60, ndv=n_products),
        Column("category", ColumnType.VARCHAR, width=30, ndv=45, distribution=_zipf(45, skew_z)),
        Column("subcategory", ColumnType.VARCHAR, width=30, ndv=380, distribution=_zipf(380, skew_z)),
        Column("brand", ColumnType.VARCHAR, width=30, ndv=900, distribution=_zipf(900, skew_z)),
        Column("unit_cost", ColumnType.DECIMAL, ndv=40_000, distribution=_normal(40_000)),
        Column("list_price", ColumnType.DECIMAL, ndv=60_000, distribution=_normal(60_000)),
        Column("status", ColumnType.CHAR, width=8, ndv=4, distribution=_zipf(4, skew_z)),
    ], row_count=n_products))

    cat.add_table(Table("dim_store", [
        Column("store_key", ColumnType.INTEGER, ndv=n_stores),
        Column("store_code", ColumnType.VARCHAR, width=12, ndv=n_stores),
        Column("region", ColumnType.VARCHAR, width=24, ndv=12, distribution=_zipf(12, skew_z)),
        Column("district", ColumnType.VARCHAR, width=24, ndv=85, distribution=_zipf(85, skew_z)),
        Column("format", ColumnType.VARCHAR, width=16, ndv=5, distribution=_zipf(5, skew_z)),
        Column("square_feet", ColumnType.INTEGER, ndv=800, distribution=_normal(800)),
    ], row_count=n_stores))

    cat.add_table(Table("dim_customer", [
        Column("customer_key", ColumnType.INTEGER, ndv=n_customers),
        Column("customer_code", ColumnType.VARCHAR, width=16, ndv=n_customers),
        Column("segment", ColumnType.VARCHAR, width=20, ndv=8, distribution=_zipf(8, skew_z)),
        Column("loyalty_tier", ColumnType.VARCHAR, width=12, ndv=5, distribution=_zipf(5, skew_z)),
        Column("state", ColumnType.CHAR, width=2, ndv=51, distribution=_zipf(51, skew_z)),
        Column("join_date", ColumnType.DATE, ndv=n_dates, distribution=_zipf(n_dates, skew_z)),
        Column("lifetime_value", ColumnType.DECIMAL, ndv=500_000, distribution=_normal(500_000)),
    ], row_count=n_customers))

    cat.add_table(Table("dim_employee", [
        Column("employee_key", ColumnType.INTEGER, ndv=n_employees),
        Column("role", ColumnType.VARCHAR, width=24, ndv=30, distribution=_zipf(30, skew_z)),
        Column("store_key", ColumnType.INTEGER, ndv=n_stores, distribution=_zipf(n_stores, skew_z)),
        Column("hire_date", ColumnType.DATE, ndv=n_dates),
    ], row_count=n_employees))

    cat.add_table(Table("fact_sales", [
        Column("sales_key", ColumnType.BIGINT, ndv=n_sales),
        Column("date_key", ColumnType.INTEGER, ndv=n_dates, distribution=_zipf(n_dates, skew_z)),
        Column("store_key", ColumnType.INTEGER, ndv=n_stores, distribution=_zipf(n_stores, skew_z)),
        Column("customer_key", ColumnType.INTEGER, ndv=n_customers,
               distribution=_zipf(n_customers, skew_z)),
        Column("employee_key", ColumnType.INTEGER, ndv=n_employees,
               distribution=_zipf(n_employees, skew_z)),
        Column("channel", ColumnType.VARCHAR, width=10, ndv=4, distribution=_zipf(4, skew_z)),
        Column("gross_amount", ColumnType.DECIMAL, ndv=2_000_000, distribution=_normal(2_000_000)),
        Column("discount_amount", ColumnType.DECIMAL, ndv=200_000),
        Column("tax_amount", ColumnType.DECIMAL, ndv=400_000),
        Column("payment_type", ColumnType.VARCHAR, width=10, ndv=6, distribution=_zipf(6, skew_z)),
    ], row_count=n_sales))

    cat.add_table(Table("fact_sales_line", [
        Column("sales_key", ColumnType.BIGINT, ndv=n_sales, distribution=_zipf(n_sales, skew_z)),
        Column("line_number", ColumnType.INTEGER, ndv=20),
        Column("product_key", ColumnType.INTEGER, ndv=n_products,
               distribution=_zipf(n_products, skew_z)),
        Column("quantity", ColumnType.INTEGER, ndv=48, distribution=_zipf(48, skew_z)),
        Column("unit_price", ColumnType.DECIMAL, ndv=60_000, distribution=_normal(60_000)),
        Column("extended_amount", ColumnType.DECIMAL, ndv=1_500_000),
        Column("margin_amount", ColumnType.DECIMAL, ndv=800_000),
    ], row_count=n_saleslines))

    cat.add_table(Table("fact_inventory", [
        Column("date_key", ColumnType.INTEGER, ndv=260, distribution=_zipf(260, skew_z)),
        Column("store_key", ColumnType.INTEGER, ndv=n_stores, distribution=_zipf(n_stores, skew_z)),
        Column("product_key", ColumnType.INTEGER, ndv=n_products,
               distribution=_zipf(n_products, skew_z)),
        Column("on_hand_qty", ColumnType.INTEGER, ndv=2_000),
        Column("on_order_qty", ColumnType.INTEGER, ndv=1_000),
    ], row_count=n_inventory))

    cat.add_index(Index("pk_dim_date", "dim_date", ["date_key"], clustered=True))
    cat.add_index(Index("pk_dim_product", "dim_product", ["product_key"], clustered=True))
    cat.add_index(Index("pk_dim_store", "dim_store", ["store_key"], clustered=True))
    cat.add_index(Index("pk_dim_customer", "dim_customer", ["customer_key"], clustered=True))
    cat.add_index(Index("pk_dim_employee", "dim_employee", ["employee_key"], clustered=True))
    cat.add_index(Index("cx_fact_sales", "fact_sales", ["date_key", "sales_key"], clustered=True))
    cat.add_index(Index("cx_fact_sales_line", "fact_sales_line", ["sales_key", "line_number"],
                        clustered=True))
    cat.add_index(Index("cx_fact_inventory", "fact_inventory", ["date_key", "store_key", "product_key"],
                        clustered=True))
    cat.add_index(Index("ix_fact_sales_customer", "fact_sales", ["customer_key"]))
    cat.add_index(Index("ix_fact_sales_store", "fact_sales", ["store_key"]))
    cat.add_index(Index("ix_fact_sales_line_product", "fact_sales_line", ["product_key"]))
    cat.add_index(Index("ix_fact_inventory_product", "fact_inventory", ["product_key"]))
    return cat


def build_real2_catalog(skew_z: float = 1.4) -> Catalog:
    """Build the "Real-2" schema (~12 GB, deeper join graphs)."""
    cat = Catalog(name="real2_erp")
    cat.properties.update({"benchmark": "real2", "skew_z": skew_z, "target_gb": 12})

    n_accounts = 600_000
    n_contacts = 1_500_000
    n_vendors = 80_000
    n_items = 400_000
    n_plants = 300
    n_projects = 50_000
    n_costcenters = 8_000
    n_currencies = 40
    n_dates = 2_557
    n_orders = 28_000_000
    n_orderlines = 80_000_000
    n_shipments = 24_000_000
    n_invoices = 26_000_000
    n_gl = 65_000_000

    def dim(name: str, key: str, rows: int, extra: list[Column]) -> None:
        cols = [Column(key, ColumnType.INTEGER, ndv=rows)] + extra
        cat.add_table(Table(name, cols, row_count=rows))
        cat.add_index(Index(f"pk_{name}", name, [key], clustered=True))

    dim("dim_account", "account_key", n_accounts, [
        Column("account_code", ColumnType.VARCHAR, width=16, ndv=n_accounts),
        Column("industry", ColumnType.VARCHAR, width=30, ndv=120, distribution=_zipf(120, skew_z)),
        Column("country", ColumnType.CHAR, width=2, ndv=90, distribution=_zipf(90, skew_z)),
        Column("credit_limit", ColumnType.DECIMAL, ndv=50_000, distribution=_normal(50_000)),
        Column("account_tier", ColumnType.VARCHAR, width=10, ndv=6, distribution=_zipf(6, skew_z)),
    ])
    dim("dim_contact", "contact_key", n_contacts, [
        Column("account_key", ColumnType.INTEGER, ndv=n_accounts,
               distribution=_zipf(n_accounts, skew_z)),
        Column("role", ColumnType.VARCHAR, width=20, ndv=25, distribution=_zipf(25, skew_z)),
        Column("email_domain", ColumnType.VARCHAR, width=30, ndv=60_000),
    ])
    dim("dim_vendor", "vendor_key", n_vendors, [
        Column("vendor_code", ColumnType.VARCHAR, width=14, ndv=n_vendors),
        Column("vendor_country", ColumnType.CHAR, width=2, ndv=70, distribution=_zipf(70, skew_z)),
        Column("vendor_rating", ColumnType.INTEGER, ndv=10, distribution=_zipf(10, skew_z)),
    ])
    dim("dim_item", "item_key", n_items, [
        Column("item_code", ColumnType.VARCHAR, width=20, ndv=n_items),
        Column("item_group", ColumnType.VARCHAR, width=24, ndv=300, distribution=_zipf(300, skew_z)),
        Column("uom", ColumnType.CHAR, width=4, ndv=12),
        Column("standard_cost", ColumnType.DECIMAL, ndv=80_000, distribution=_normal(80_000)),
        Column("item_status", ColumnType.CHAR, width=6, ndv=5, distribution=_zipf(5, skew_z)),
    ])
    dim("dim_plant", "plant_key", n_plants, [
        Column("plant_code", ColumnType.VARCHAR, width=8, ndv=n_plants),
        Column("plant_region", ColumnType.VARCHAR, width=20, ndv=15, distribution=_zipf(15, skew_z)),
    ])
    dim("dim_project", "project_key", n_projects, [
        Column("project_code", ColumnType.VARCHAR, width=14, ndv=n_projects),
        Column("project_type", ColumnType.VARCHAR, width=16, ndv=20, distribution=_zipf(20, skew_z)),
        Column("project_status", ColumnType.CHAR, width=8, ndv=6, distribution=_zipf(6, skew_z)),
    ])
    dim("dim_costcenter", "costcenter_key", n_costcenters, [
        Column("cc_code", ColumnType.VARCHAR, width=10, ndv=n_costcenters),
        Column("department", ColumnType.VARCHAR, width=24, ndv=150, distribution=_zipf(150, skew_z)),
    ])
    dim("dim_currency", "currency_key", n_currencies, [
        Column("iso_code", ColumnType.CHAR, width=3, ndv=n_currencies),
    ])
    dim("dim_calendar", "date_key", n_dates, [
        Column("calendar_date", ColumnType.DATE, ndv=n_dates),
        Column("fiscal_period", ColumnType.INTEGER, ndv=84),
        Column("fiscal_year", ColumnType.INTEGER, ndv=7),
    ])

    cat.add_table(Table("fact_order", [
        Column("order_key", ColumnType.BIGINT, ndv=n_orders),
        Column("account_key", ColumnType.INTEGER, ndv=n_accounts,
               distribution=_zipf(n_accounts, skew_z)),
        Column("contact_key", ColumnType.INTEGER, ndv=n_contacts,
               distribution=_zipf(n_contacts, skew_z)),
        Column("order_date_key", ColumnType.INTEGER, ndv=n_dates,
               distribution=_zipf(n_dates, skew_z)),
        Column("currency_key", ColumnType.INTEGER, ndv=n_currencies,
               distribution=_zipf(n_currencies, skew_z)),
        Column("project_key", ColumnType.INTEGER, ndv=n_projects,
               distribution=_zipf(n_projects, skew_z)),
        Column("order_status", ColumnType.CHAR, width=8, ndv=7, distribution=_zipf(7, skew_z)),
        Column("order_total", ColumnType.DECIMAL, ndv=3_000_000, distribution=_normal(3_000_000)),
    ], row_count=n_orders))
    cat.add_table(Table("fact_order_line", [
        Column("order_key", ColumnType.BIGINT, ndv=n_orders, distribution=_zipf(n_orders, skew_z)),
        Column("line_number", ColumnType.INTEGER, ndv=30),
        Column("item_key", ColumnType.INTEGER, ndv=n_items, distribution=_zipf(n_items, skew_z)),
        Column("plant_key", ColumnType.INTEGER, ndv=n_plants, distribution=_zipf(n_plants, skew_z)),
        Column("quantity", ColumnType.DECIMAL, ndv=500, distribution=_zipf(500, skew_z)),
        Column("net_amount", ColumnType.DECIMAL, ndv=2_000_000, distribution=_normal(2_000_000)),
        Column("cost_amount", ColumnType.DECIMAL, ndv=1_500_000),
    ], row_count=n_orderlines))
    cat.add_table(Table("fact_shipment", [
        Column("shipment_key", ColumnType.BIGINT, ndv=n_shipments),
        Column("order_key", ColumnType.BIGINT, ndv=n_orders, distribution=_zipf(n_orders, skew_z)),
        Column("plant_key", ColumnType.INTEGER, ndv=n_plants, distribution=_zipf(n_plants, skew_z)),
        Column("vendor_key", ColumnType.INTEGER, ndv=n_vendors, distribution=_zipf(n_vendors, skew_z)),
        Column("ship_date_key", ColumnType.INTEGER, ndv=n_dates, distribution=_zipf(n_dates, skew_z)),
        Column("freight_cost", ColumnType.DECIMAL, ndv=200_000),
        Column("weight_kg", ColumnType.DECIMAL, ndv=100_000, distribution=_normal(100_000)),
    ], row_count=n_shipments))
    cat.add_table(Table("fact_invoice", [
        Column("invoice_key", ColumnType.BIGINT, ndv=n_invoices),
        Column("order_key", ColumnType.BIGINT, ndv=n_orders, distribution=_zipf(n_orders, skew_z)),
        Column("account_key", ColumnType.INTEGER, ndv=n_accounts,
               distribution=_zipf(n_accounts, skew_z)),
        Column("invoice_date_key", ColumnType.INTEGER, ndv=n_dates,
               distribution=_zipf(n_dates, skew_z)),
        Column("currency_key", ColumnType.INTEGER, ndv=n_currencies,
               distribution=_zipf(n_currencies, skew_z)),
        Column("invoice_amount", ColumnType.DECIMAL, ndv=3_000_000, distribution=_normal(3_000_000)),
        Column("paid_flag", ColumnType.CHAR, width=1, ndv=2, distribution=_zipf(2, skew_z)),
    ], row_count=n_invoices))
    cat.add_table(Table("fact_gl_entry", [
        Column("gl_key", ColumnType.BIGINT, ndv=n_gl),
        Column("costcenter_key", ColumnType.INTEGER, ndv=n_costcenters,
               distribution=_zipf(n_costcenters, skew_z)),
        Column("account_key", ColumnType.INTEGER, ndv=n_accounts,
               distribution=_zipf(n_accounts, skew_z)),
        Column("project_key", ColumnType.INTEGER, ndv=n_projects,
               distribution=_zipf(n_projects, skew_z)),
        Column("posting_date_key", ColumnType.INTEGER, ndv=n_dates,
               distribution=_zipf(n_dates, skew_z)),
        Column("debit_amount", ColumnType.DECIMAL, ndv=2_500_000),
        Column("credit_amount", ColumnType.DECIMAL, ndv=2_500_000),
    ], row_count=n_gl))

    cat.add_index(Index("cx_fact_order", "fact_order", ["order_date_key", "order_key"],
                        clustered=True))
    cat.add_index(Index("cx_fact_order_line", "fact_order_line", ["order_key", "line_number"],
                        clustered=True))
    cat.add_index(Index("cx_fact_shipment", "fact_shipment", ["ship_date_key", "shipment_key"],
                        clustered=True))
    cat.add_index(Index("cx_fact_invoice", "fact_invoice", ["invoice_date_key", "invoice_key"],
                        clustered=True))
    cat.add_index(Index("cx_fact_gl_entry", "fact_gl_entry", ["posting_date_key", "gl_key"],
                        clustered=True))
    cat.add_index(Index("ix_order_account", "fact_order", ["account_key"]))
    cat.add_index(Index("ix_order_line_item", "fact_order_line", ["item_key"]))
    cat.add_index(Index("ix_shipment_order", "fact_shipment", ["order_key"]))
    cat.add_index(Index("ix_invoice_order", "fact_invoice", ["order_key"]))
    cat.add_index(Index("ix_invoice_account", "fact_invoice", ["account_key"]))
    cat.add_index(Index("ix_gl_costcenter", "fact_gl_entry", ["costcenter_key"]))
    cat.add_index(Index("ix_gl_account", "fact_gl_entry", ["account_key"]))
    return cat
