"""repro: robust estimation of resource consumption for SQL queries.

A reproduction of Li, König, Narasayya and Chaudhuri, *"Robust Estimation of
Resource Consumption for SQL Queries using Statistical Techniques"*
(PVLDB 5(11), 2012), together with every substrate the paper depends on:
a simulated database engine (catalog, planner, cardinality estimation,
execution with ground-truth resource usage), the statistical learners
(MART, linear/kernel regression, transform regression) implemented from
scratch, the paper's operator-level feature model, the scaling-function
framework, the competing baselines and the full experiment harness.

Quickstart
----------
>>> from repro import build_tpch_workload, split_workload, ScalingTechnique, FeatureMode
>>> workload = build_tpch_workload(scale_factor=0.1, n_queries=60)
>>> train, test = split_workload(workload)
>>> model = ScalingTechnique().fit(train, resource="cpu", mode=FeatureMode.EXACT)
>>> estimate_us = model.predict_query(test[0])
"""

from repro.api import (
    EstimationService,
    Estimator,
    TrainingCorpus,
    available_estimators,
    load_artifact,
    make_estimator,
    make_technique,
)
from repro.baselines import (
    AkdereOperatorBaseline,
    LinearBaseline,
    MARTBaseline,
    OptimizerBaseline,
    RegTreeBaseline,
    ScalingTechnique,
    SVMBaseline,
    standard_techniques,
)
from repro.catalog import (
    Catalog,
    Column,
    ColumnType,
    Index,
    Table,
    build_real1_catalog,
    build_real2_catalog,
    build_tpcds_catalog,
    build_tpch_catalog,
)
from repro.core import ResourceEstimator, ScalingFunctionSelector
from repro.engine import HardwareProfile, QueryExecutor, ResourceModel
from repro.features import FeatureExtractor, FeatureMode, OperatorFamily
from repro.ml import ErrorSummary, MARTRegressor
from repro.optimizer import Planner
from repro.plan import OperatorType, PlanOperator, QueryPlan
from repro.workloads import (
    WorkloadRunner,
    build_real1_workload,
    build_real2_workload,
    build_tpcds_workload,
    build_tpch_multi_scale_workload,
    build_tpch_workload,
    build_training_data,
    split_workload,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # unified estimator API
    "Estimator",
    "TrainingCorpus",
    "EstimationService",
    "available_estimators",
    "make_estimator",
    "make_technique",
    "load_artifact",
    # techniques
    "AkdereOperatorBaseline",
    "LinearBaseline",
    "MARTBaseline",
    "OptimizerBaseline",
    "RegTreeBaseline",
    "ScalingTechnique",
    "SVMBaseline",
    "standard_techniques",
    "ResourceEstimator",
    "ScalingFunctionSelector",
    # catalog / schema
    "Catalog",
    "Column",
    "ColumnType",
    "Index",
    "Table",
    "build_tpch_catalog",
    "build_tpcds_catalog",
    "build_real1_catalog",
    "build_real2_catalog",
    # engine / optimizer / plans
    "HardwareProfile",
    "QueryExecutor",
    "ResourceModel",
    "Planner",
    "OperatorType",
    "PlanOperator",
    "QueryPlan",
    # features / ml
    "FeatureExtractor",
    "FeatureMode",
    "OperatorFamily",
    "ErrorSummary",
    "MARTRegressor",
    # workloads
    "WorkloadRunner",
    "build_tpch_workload",
    "build_tpch_multi_scale_workload",
    "build_tpcds_workload",
    "build_real1_workload",
    "build_real2_workload",
    "build_training_data",
    "split_workload",
]
