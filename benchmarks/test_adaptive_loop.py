"""Acceptance benchmark: the adaptive loop closes under a drifting mix.

Drives the ``repro adapt-bench`` scenario (:mod:`repro.adaptive.bench`):
an incumbent trained on TPC-H serves a coalesced concurrent session; the
traffic shifts to TPC-DS; the drift monitor trips past the 0.25 rolling
median relative-error threshold; a background refit from the observation
log is validated, registered and canary-check hot-swapped — with zero
dropped or failed requests — and the post-swap rolling error returns to
the pre-drift band.

The structured record lands in ``benchmarks/results/adaptive_loop.json``
(the same record ``repro adapt-bench --out`` writes); the CI
``adaptive-loop-smoke`` step asserts the identical checks through the CLI
exit code.  Opt-in like the other reproductions:
``pytest benchmarks/test_adaptive_loop.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.adaptive.bench import run_adapt_bench

#: Calibrated small-scale parameters (~10 s wall clock): enough pre-drift
#: traffic to fill the windows, enough drifted traffic to trip the monitor
#: and feed the refit corpus, enough post-swap traffic to re-measure.
_PARAMS = dict(
    train_queries=72,
    iterations=25,
    pool_size=24,
    pre_requests=64,
    drift_requests=128,
    post_requests=64,
    seed=29,
    trip_threshold=0.25,
)


def test_adaptive_loop_recovers_from_drift(benchmark, tmp_path):
    out = Path(__file__).parent / "results" / "adaptive_loop.json"
    record = benchmark.pedantic(
        run_adapt_bench,
        kwargs=dict(out_path=out, registry_root=tmp_path / "registry", **_PARAMS),
        iterations=1,
        rounds=1,
    )

    phases = record["phases"]
    checks = record["checks"]
    serving = record["serving"]
    print("\n" + "=" * 78)
    for name in ("pre_drift", "drifted", "post_swap"):
        errors = phases[name]["median_relative_error"]
        print(
            f"{name:>9}: {phases[name]['requests']} requests, "
            + ", ".join(f"{r}={v:.3f}" for r, v in sorted(errors.items()))
        )
    print(f"checks: {checks}")
    print("=" * 78)

    # The record on disk is the reproduction artefact CI smoke re-derives.
    assert json.loads(out.read_text(encoding="utf-8"))["passed"] == record["passed"]

    # Drift demonstrably tripped: the drifted error exceeded the threshold.
    assert checks["drift_tripped"], phases["drifted"]
    # Exactly one background refit was promoted and hot-swapped in.
    assert checks["retrain_promoted"], record["retrain"]
    assert checks["exactly_one_swap"], serving
    assert record["registry"]["active"] == "v0002"
    # Zero dropped or failed requests across the background retrain + swap.
    assert checks["zero_failed_requests"], serving
    # Post-swap error back inside the pre-drift band (<= clear threshold).
    assert checks["post_within_pre_drift_band"], {
        "pre": phases["pre_drift"]["median_relative_error"],
        "post": phases["post_swap"]["median_relative_error"],
    }
    assert record["passed"]
