"""Benchmark: compiled flat-array MART kernel vs the per-tree node walk.

The flat ensemble layout (:mod:`repro.ml.flat_ensemble`) compiles a fitted
MART into contiguous arrays and evaluates all rows x all trees with
vectorised index chasing.  This benchmark measures it against the reference
per-tree fold at paper scale (1000 boosting iterations x 10 leaves, the
configuration of the source paper) and asserts

* >= 5x rows/sec at serving-shape batch sizes (the per-(family, resource)
  groups a workload estimate actually feeds the models), and
* bit-identical predictions, and
* version-3 artifacts (flat arrays, mmap-ready) cold-start no slower than
  version-2 artifacts (per-tree node records re-walked at decode time).

Opt-in like the other reproductions: ``pytest benchmarks/test_flat_inference.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.service import EstimationService
from repro.catalog.statistics import StatisticsCatalog
from repro.core.estimator import ResourceEstimator
from repro.core.serialization import save_estimator
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload

#: Paper-scale boosting budget (Section 4: 1000 iterations, <= 10 leaves).
_PAPER_MART = MARTConfig(
    n_iterations=1000, max_leaves=10, learning_rate=0.1, subsample=0.7, random_seed=7
)

#: Reduced budget for the cold-start half (same as the other overhead
#: benchmarks) so the artifact round trip dominates, not training.
_BENCH_TRAINER = TrainerConfig(
    mart=MARTConfig(n_iterations=40, max_leaves=8, learning_rate=0.15, subsample=0.9)
)

_RESOURCES = ("cpu", "io")
_BATCH_SIZES = (128, 256, 512, 2048)
#: Serving-shape batches: the per-(family, resource) row groups a workload
#: estimate feeds each model are typically a few hundred rows.
_SERVING_BATCHES = (128, 256)
_MIN_SERVING_SPEEDUP = 5.0
_REPEATS = 7


def _interleaved_min_seconds(fn_a, fn_b, repeats: int = _REPEATS) -> tuple[float, float]:
    """Minimum wall-clock of two callables, interleaving their repeats."""
    functions = (fn_a, fn_b)
    best = [float("inf"), float("inf")]
    for round_index in range(repeats):
        order = (0, 1) if round_index % 2 == 0 else (1, 0)
        for which in order:
            started = time.perf_counter()
            functions[which]()
            best[which] = min(best[which], time.perf_counter() - started)
    return best[0], best[1]


def _fit_paper_scale_mart() -> tuple[MARTRegressor, np.ndarray]:
    rng = np.random.default_rng(41)
    n_rows, n_features = 1200, 12
    features = rng.uniform(0.0, 1e6, size=(n_rows, n_features))
    targets = (
        features[:, 0] * 2.5
        + np.sqrt(features[:, 1] * features[:, 2])
        + rng.normal(0.0, 1e4, n_rows)
    )
    model = MARTRegressor(_PAPER_MART).fit(features, targets)
    return model, features


def test_flat_kernel_speedup_at_paper_scale(printer):
    model, features = _fit_paper_scale_mart()
    forest = model.flat_forest()
    stats = forest.stats()
    assert stats.n_trees == _PAPER_MART.n_iterations

    table = ResultTable(
        experiment_id="Flat inference",
        title="Compiled flat-array kernel vs per-tree node walk (1000 trees x 10 leaves)",
        columns=["Batch rows", "Per-tree (ms)", "Flat (ms)", "Speedup (x)", "Flat rows/s"],
    )
    speedups: dict[int, float] = {}
    rng = np.random.default_rng(43)
    for batch in _BATCH_SIZES:
        x = features[rng.integers(0, features.shape[0], size=batch)]
        # Warm both paths (compile cache, allocator) and check bit-identity.
        assert np.array_equal(model.predict(x), model.predict_per_tree(x))
        per_tree_s, flat_s = _interleaved_min_seconds(
            lambda x=x: model.predict_per_tree(x), lambda x=x: model.predict(x)
        )
        speedups[batch] = per_tree_s / max(flat_s, 1e-12)
        table.add_row(**{
            "Batch rows": batch,
            "Per-tree (ms)": round(per_tree_s * 1e3, 2),
            "Flat (ms)": round(flat_s * 1e3, 2),
            "Speedup (x)": round(speedups[batch], 1),
            "Flat rows/s": int(batch / max(flat_s, 1e-12)),
        })
    table.notes = (
        f"Flat layout: {stats.n_nodes:,} nodes / {stats.array_bytes:,} bytes "
        f"({stats.dtype_summary}); min-of-{_REPEATS} interleaved timing; "
        "predictions bit-identical at every batch size."
    )
    printer(table)

    for batch in _SERVING_BATCHES:
        assert speedups[batch] >= _MIN_SERVING_SPEEDUP, (
            f"flat kernel speedup {speedups[batch]:.1f}x at {batch} rows is below "
            f"the {_MIN_SERVING_SPEEDUP:.0f}x floor"
        )


def test_v3_artifact_cold_start_beats_v2(experiment_config, printer, tmp_path):
    workload = cfg.tpch_workload(experiment_config)
    train, _ = split_workload(
        workload, experiment_config.train_fraction, seed=experiment_config.seed
    )
    training_data = build_training_data(train, FeatureMode.EXACT)
    estimator = ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=_RESOURCES, config=_BENCH_TRAINER
    )
    planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
    queries = tpch_template_set().generate(workload.catalog, 50, seed=37)
    plans = [planner.plan(query) for query in queries]

    v2_path = tmp_path / "model_v2.bin"
    v3_path = tmp_path / "model_v3.bin"
    save_estimator(estimator, v2_path, version=2)
    save_estimator(estimator, v3_path, version=3)

    def cold_start(path, mmap):
        service = EstimationService.from_artifact(path, mmap=mmap)
        return service.estimate_workload(plans, _RESOURCES)

    # Warm-up pass per variant (page cache, imports), then min-of-N.
    v2_estimate = cold_start(v2_path, mmap=False)
    v3_estimate = cold_start(v3_path, mmap=True)
    v2_s, v3_s = _interleaved_min_seconds(
        lambda: cold_start(v2_path, mmap=False), lambda: cold_start(v3_path, mmap=True)
    )

    table = ResultTable(
        experiment_id="Flat cold start",
        title="Artifact-to-first-estimate cold start: v2 node records vs v3 mmap",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Workload size (queries)", Value=len(plans))
    table.add_row(Quantity="v2 artifact (KB)", Value=round(v2_path.stat().st_size / 1024.0, 1))
    table.add_row(Quantity="v3 artifact (KB)", Value=round(v3_path.stat().st_size / 1024.0, 1))
    table.add_row(
        Quantity=f"v2 load+estimate, min of {_REPEATS} (ms)", Value=round(v2_s * 1e3, 2)
    )
    table.add_row(
        Quantity=f"v3 mmap load+estimate, min of {_REPEATS} (ms)",
        Value=round(v3_s * 1e3, 2),
    )
    table.add_row(Quantity="Cold-start speedup (x)", Value=round(v2_s / max(v3_s, 1e-12), 2))
    table.notes = (
        "v2 decode re-walks every tree node into objects and compiles on first "
        "predict; v3 frombuffers the flat arrays straight out of the mapped file."
    )
    printer(table)

    for resource in _RESOURCES:
        assert np.array_equal(
            v2_estimate.query_totals(resource), v3_estimate.query_totals(resource)
        )
    assert v3_s <= v2_s, (
        f"v3 mmap cold start ({v3_s * 1e3:.1f}ms) is slower than v2 decode "
        f"({v2_s * 1e3:.1f}ms)"
    )
