"""Benchmarks regenerating the paper's figures (1, 2, 3, 6, 7, 8).

Each benchmark measures the end-to-end cost of regenerating the figure
(workload reuse comes from the experiment-level caches, so repeated rounds
measure the evaluation cost, not workload construction) and asserts the
figure's qualitative claim.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def test_fig1_optimizer_error(benchmark, experiment_config, printer):
    """Figure 1: the (adjusted) optimizer cost model shows large CPU errors."""
    result = benchmark.pedantic(
        run_experiment, args=("figure_1", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    # A substantial fraction of queries is off by more than 2x even after the
    # per-operator adjustment factors are fitted.
    assert result.summary["fraction_ratio_gt_2"] > 0.1


def test_fig2_scaling_accuracy(benchmark, experiment_config, printer):
    """Figure 2: SCALING estimates hug the diagonal on in-distribution TPC-H."""
    result = benchmark.pedantic(
        run_experiment, args=("figure_2", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    assert result.summary["l1_error"] < 0.6
    # Far fewer large errors than the optimizer baseline of Figure 1.
    assert result.summary["fraction_ratio_gt_2"] < 0.35


def test_fig3_mart_extrapolation_failure(benchmark, experiment_config, printer):
    """Figure 3: plain MART systematically underestimates scans on larger data."""
    result = benchmark.pedantic(
        run_experiment, args=("figure_3", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    # On the largest quartile of test scans the estimates sit well below the
    # actual values (mean estimate/actual clearly below 1).
    assert result.summary["mean_ratio_on_largest_quartile"] < 0.75


def test_fig6_scaling_extrapolation(benchmark, experiment_config, printer):
    """Figure 6: MART + scaling removes the systematic underestimation."""
    figure_3 = run_experiment("figure_3", experiment_config)
    result = benchmark.pedantic(
        run_experiment, args=("figure_6", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    assert (
        result.summary["mean_ratio_on_largest_quartile"]
        > figure_3.summary["mean_ratio_on_largest_quartile"]
    )
    assert result.summary["l1_error"] < figure_3.summary["l1_error"]


def test_fig7_sort_scaling_function(benchmark, experiment_config, printer):
    """Figure 7: n·log n scaling fits the Sort CPU curve best."""
    result = benchmark.pedantic(
        run_experiment, args=("figure_7", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    assert result.summary["best_function_is_nlogn"] == 1.0


def test_fig8_nlj_scaling_function(benchmark, experiment_config, printer):
    """Figure 8: C_outer x log2(C_inner) fits the NLJ CPU curve best."""
    result = benchmark.pedantic(
        run_experiment, args=("figure_8", experiment_config), iterations=1, rounds=1
    )
    printer(result)
    assert result.summary["best_function_is_outer_log_inner"] == 1.0
