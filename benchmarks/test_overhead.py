"""Benchmarks for training time, prediction overhead and model memory (Section 7.3).

Every measurement is printed as a :class:`ResultTable` through the shared
``printer`` fixture, which persists a fixed-width ``.txt`` rendering AND a
machine-readable ``.json`` twin under ``benchmarks/results/`` (the
serve/guard/flat benchmark exchange format).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.overhead import _synthetic_training_set
from repro.experiments.registry import run_experiment
from repro.experiments.reporting import ResultTable
from repro.ml.mart import MARTConfig, MARTRegressor


def test_table13_training_time(benchmark, experiment_config, printer):
    """Table 13: MART training time as the number of examples grows."""
    table = benchmark.pedantic(
        run_experiment, args=("table_13", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    times = [row["Training Time (s)"] for row in table.rows]
    sizes = [row["Training Examples"] for row in table.rows]
    # Training time grows roughly linearly (clearly sub-quadratically) with
    # the number of examples, as in the paper.
    assert times[-1] >= times[0]
    growth = times[-1] / max(times[0], 1e-9)
    size_growth = sizes[-1] / sizes[0]
    assert growth <= size_growth * 3.0


def test_prediction_overhead(benchmark, experiment_config, printer):
    """Section 7.3: one MART invocation costs microseconds, optimization milliseconds."""
    table = benchmark.pedantic(
        run_experiment, args=("prediction_cost", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    values = {row["Quantity"]: row["Value"] for row in table.rows}
    per_call_us = float(values["MART model invocation (us/call)"])
    per_optimization_ms = float(values["Query optimization (ms/query)"])
    # The paper measures ~0.5us per call (native code) against >50ms per
    # optimization on SQL Server.  Neither side of that ratio carries over to
    # this substrate (pure-Python tree traversal vs a lightweight simulated
    # planner), so the assertion only pins the orders of magnitude involved:
    # a model invocation stays in the millisecond range and the measurement
    # itself is recorded in the result table for EXPERIMENTS.md.
    assert per_call_us < 50_000.0
    assert per_optimization_ms < 1_000.0


def test_single_model_call_latency(benchmark, printer):
    """Micro-benchmark of one model invocation (the paper's ~0.5 us claim).

    Pure-Python tree traversal is slower than the paper's C++ implementation;
    the claim that survives is the order of magnitude relative to query
    optimization, checked in test_prediction_overhead.
    """
    features, targets = _synthetic_training_set(2_000)
    model = MARTRegressor(MARTConfig(n_iterations=100)).fit(features, targets)
    single = features[0]
    result = benchmark(model.predict, single)
    assert np.isfinite(result).all()
    table = ResultTable(
        experiment_id="Single call latency",
        title="One MART model invocation on a single feature row",
        columns=["Quantity", "Value"],
        notes="Timed by pytest-benchmark; paper reports ~0.5 us in native code.",
    )
    stats = benchmark.stats.stats
    table.add_row(Quantity="mean (us/call)", Value=round(stats.mean * 1e6, 3))
    table.add_row(Quantity="min (us/call)", Value=round(stats.min * 1e6, 3))
    table.add_row(Quantity="max (us/call)", Value=round(stats.max * 1e6, 3))
    table.add_row(Quantity="rounds", Value=stats.rounds)
    printer(table)


def test_model_memory(benchmark, experiment_config, printer):
    """Section 7.3: compact model encoding stays within the paper's bounds."""
    table = benchmark.pedantic(
        run_experiment, args=("model_memory", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    values = {row["Quantity"]: row["Value"] for row in table.rows}
    assert int(values["Single 10-leaf tree (bytes)"]) <= 130
    assert int(values["Projected 1000-tree model (bytes)"]) <= 130 * 1024
    assert float(values["SCALING total size (KB)"]) < 8 * 1024
