"""Benchmark: batched workload estimation vs the per-operator scalar loop.

The batched :meth:`~repro.core.estimator.ResourceEstimator.estimate_workload`
path groups operator rows by (family, resource) into contiguous matrices and
runs one vectorised model-selection + MART evaluation per group; the scalar
path pays one Python-side selection and tree walk per operator.  On a
500-query workload the batched path must be at least an order of magnitude
faster — this is what makes the paper's "prediction overhead is negligible"
claim (Section 7.3) hold at production workload scale.

Both measurements are persisted by the ``printer`` fixture as a ``.txt``
rendering plus a machine-readable ``.json`` twin under
``benchmarks/results/`` (the serve/guard/flat benchmark exchange format).
"""

from __future__ import annotations

from repro.core.trainer import TrainerConfig
from repro.experiments.overhead import measure_batch_speedup
from repro.experiments.registry import run_experiment
from repro.experiments.reporting import ResultTable
from repro.ml.mart import MARTConfig

#: A reduced boosting budget keeps the *scalar* side of the comparison from
#: dominating benchmark wall-clock; the speedup ratio is what is measured.
_BENCH_TRAINER = TrainerConfig(
    mart=MARTConfig(n_iterations=40, max_leaves=8, learning_rate=0.15, subsample=0.9)
)


def test_batch_overhead_experiment(benchmark, experiment_config, printer):
    """The registered batch_overhead experiment (profile-sized workload)."""
    table = benchmark.pedantic(
        run_experiment, args=("batch_overhead", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    values = {row["Quantity"]: row["Value"] for row in table.rows}
    assert float(values["Speedup (x)"]) > 1.0
    # Scalar and batched paths share the same family-batch internals, so they
    # must agree to float tolerance.
    assert float(values["Max batch/scalar deviation"]) < 1e-9


def test_batch_speedup_at_least_10x_on_500_queries(benchmark, experiment_config, printer):
    """>=10x workload-estimation throughput on a >=500-query workload."""
    measured = benchmark.pedantic(
        measure_batch_speedup,
        kwargs={
            "config": experiment_config,
            "n_queries": max(500, experiment_config.batch_overhead_queries),
            "trainer_config": _BENCH_TRAINER,
        },
        iterations=1,
        rounds=1,
    )
    table = ResultTable(
        experiment_id="Batch speedup 500q",
        title="estimate_workload vs scalar loop on a 500+ query workload",
        columns=["Quantity", "Value"],
    )
    for key, value in measured.items():
        table.add_row(Quantity=key, Value=round(float(value), 4))
    printer(table)

    assert measured["n_queries"] >= 500
    assert measured["max_rel_deviation"] < 1e-9
    assert measured["speedup"] >= 10.0, (
        f"batched estimation only {measured['speedup']:.1f}x faster than the scalar loop"
    )
