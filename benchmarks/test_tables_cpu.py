"""Benchmarks regenerating the CPU-estimation tables (paper Tables 4-9).

The assertions check the paper's *qualitative* claims (who wins, who
collapses), not absolute numbers — the substrate here is a simulator, not
the paper's SQL Server testbed.
"""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def _rows_by_technique(table, test_set=None):
    rows = {}
    for row in table.rows:
        if test_set is not None and row["Test Set"] != test_set:
            continue
        rows.setdefault(row["Technique"], row)
    return rows


def test_table04_tpch_exact_features(benchmark, experiment_config, printer):
    """Table 4: CPU, exact features, train/test on TPC-H."""
    table = benchmark.pedantic(
        run_experiment, args=("table_4", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    rows = _rows_by_technique(table)
    assert set(rows) >= {"[8]", "LINEAR", "MART", "REGTREE", "SCALING"}
    # SCALING is the most accurate (or statistically tied) technique in-distribution.
    best_l1 = min(row["L1"] for row in rows.values())
    assert rows["SCALING"]["L1"] <= best_l1 * 2.0
    assert rows["SCALING"]["R<=1.5"] >= 60.0


def test_table05_data_size_generalisation_exact(benchmark, experiment_config, printer):
    """Table 5: CPU, exact features, train small data / test large and vice versa."""
    table = benchmark.pedantic(
        run_experiment, args=("table_5", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("Large", "Small"):
        rows = _rows_by_technique(table, test_set)
        # SCALING stays robust; plain MART degrades notably when the data
        # sizes differ between training and test.
        assert rows["SCALING"]["L1"] <= rows["MART"]["L1"]
        assert rows["SCALING"]["R<=1.5"] >= rows["MART"]["R<=1.5"] - 5.0


def test_table06_cross_workload_exact(benchmark, experiment_config, printer):
    """Table 6: CPU, exact features, train on TPC-H / test on TPC-DS, Real-1, Real-2."""
    table = benchmark.pedantic(
        run_experiment, args=("table_6", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("TPC-DS", "Real-1", "Real-2"):
        rows = _rows_by_technique(table, test_set)
        # The generalisation experiments are where scaling matters most:
        # SCALING must be at least as accurate as plain MART (small tolerance
        # for sampling noise on the L1 metric) and keep far fewer queries
        # beyond a 2x ratio error.
        assert rows["SCALING"]["L1"] <= rows["MART"]["L1"] * 1.25 + 0.05
        assert rows["SCALING"]["R>2"] <= rows["MART"]["R>2"] + 10.0


def test_table07_tpch_estimated_features(benchmark, experiment_config, printer):
    """Table 7: CPU, optimizer-estimated features, train/test on TPC-H (includes OPT)."""
    table = benchmark.pedantic(
        run_experiment, args=("table_7", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    rows = _rows_by_technique(table)
    assert "OPT" in rows
    # Learned techniques compensate for cardinality errors better than the
    # adjusted optimizer cost model.
    assert rows["SCALING"]["R<=1.5"] >= rows["OPT"]["R<=1.5"]


def test_table08_data_size_generalisation_estimated(benchmark, experiment_config, printer):
    """Table 8: CPU, optimizer-estimated features, small/large data-size split."""
    table = benchmark.pedantic(
        run_experiment, args=("table_8", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("Large", "Small"):
        rows = _rows_by_technique(table, test_set)
        assert rows["SCALING"]["L1"] <= rows["MART"]["L1"] * 1.5
        assert rows["SCALING"]["R<=1.5"] >= rows["OPT"]["R<=1.5"] - 5.0


def test_table09_cross_workload_estimated(benchmark, experiment_config, printer):
    """Table 9: CPU, optimizer-estimated features, cross-workload generalisation."""
    table = benchmark.pedantic(
        run_experiment, args=("table_9", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("TPC-DS", "Real-1", "Real-2"):
        rows = _rows_by_technique(table, test_set)
        assert rows["SCALING"]["L1"] <= rows["MART"]["L1"] * 1.25 + 0.05
        assert rows["SCALING"]["R<=1.5"] >= rows["MART"]["R<=1.5"] - 5.0
