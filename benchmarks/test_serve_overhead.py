"""Benchmark: cold-start training vs warm serving from a persisted artifact.

The train-once / serve-many redesign claims that keeping a trained model
amortises away almost all serving latency: loading an artifact and answering
an ``estimate_workload`` call must be orders of magnitude cheaper than the
retrain-every-time path the CLI used before.  This benchmark measures both
paths on the profile's TPC-H workload and asserts (a) a large speedup and
(b) bit-identical estimates — the warm path trades no accuracy whatsoever.

Opt-in like the other reproductions: ``pytest benchmarks/test_serve_overhead.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.service import EstimationService
from repro.catalog.statistics import StatisticsCatalog
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload

#: Same reduced boosting budget the batch-overhead benchmark uses, so the
#: cold side measures the *workflow* cost rather than paper-scale boosting.
_BENCH_TRAINER = TrainerConfig(
    mart=MARTConfig(n_iterations=40, max_leaves=8, learning_rate=0.15, subsample=0.9)
)

_RESOURCES = ("cpu", "io")


def _train(config) -> ResourceEstimator:
    workload = cfg.tpch_workload(config)
    train, _ = split_workload(workload, config.train_fraction, seed=config.seed)
    training_data = build_training_data(train, FeatureMode.EXACT)
    return ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=_RESOURCES, config=_BENCH_TRAINER
    )


def test_warm_serving_beats_cold_start(benchmark, experiment_config, printer, tmp_path):
    workload = cfg.tpch_workload(experiment_config)
    planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
    queries = tpch_template_set().generate(workload.catalog, 200, seed=29)
    plans = [planner.plan(query) for query in queries]

    # Cold start: train from scratch, then estimate (the pre-artifact path).
    started = time.perf_counter()
    estimator = _train(experiment_config)
    cold_estimate = estimator.estimate_workload(plans, _RESOURCES)
    cold_seconds = time.perf_counter() - started

    artifact = tmp_path / "model.bin"
    estimator.save(artifact)

    # Warm serve: load the artifact once, then estimate.
    def warm_serve():
        service = EstimationService.from_artifact(artifact)
        return service, service.estimate_workload(plans, _RESOURCES)

    started = time.perf_counter()
    service, warm_estimate = benchmark.pedantic(warm_serve, iterations=1, rounds=1)
    warm_seconds = time.perf_counter() - started

    # Re-serving from the resident session costs even less (features cached).
    started = time.perf_counter()
    resident_estimate = service.estimate_workload(plans, _RESOURCES)
    resident_seconds = time.perf_counter() - started

    table = ResultTable(
        experiment_id="Serve overhead",
        title="Cold-start training vs warm serving from a persisted artifact",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Workload size (queries)", Value=len(plans))
    table.add_row(Quantity="Artifact size (KB)", Value=round(artifact.stat().st_size / 1024.0, 1))
    table.add_row(Quantity="Cold start: train + estimate (s)", Value=round(cold_seconds, 3))
    table.add_row(Quantity="Warm serve: load + estimate (s)", Value=round(warm_seconds, 3))
    table.add_row(Quantity="Resident re-serve (s)", Value=round(resident_seconds, 4))
    table.add_row(Quantity="Warm speedup (x)", Value=round(cold_seconds / max(warm_seconds, 1e-9), 1))
    table.add_row(Quantity="Feature-cache hit rate", Value=round(service.stats.hit_rate, 3))
    table.notes = (
        "Persistence removes training from the serving path entirely; the warm "
        "numbers bound what a resident estimation service pays per workload."
    )
    printer(table)

    # The artifact path must trade zero accuracy: bit-identical estimates.
    for resource in _RESOURCES:
        assert np.array_equal(
            cold_estimate.query_totals(resource), warm_estimate.query_totals(resource)
        )
        assert np.array_equal(
            cold_estimate.query_totals(resource), resident_estimate.query_totals(resource)
        )
    # Loading a model must be far cheaper than training one.
    assert warm_seconds * 5 < cold_seconds, (
        f"warm serving ({warm_seconds:.2f}s) is not clearly cheaper than "
        f"cold start ({cold_seconds:.2f}s)"
    )
