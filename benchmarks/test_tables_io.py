"""Benchmarks regenerating the logical-I/O tables (paper Tables 10-12)."""

from __future__ import annotations

from repro.experiments.registry import run_experiment


def _rows_by_technique(table, test_set=None):
    rows = {}
    for row in table.rows:
        if test_set is not None and row["Test Set"] != test_set:
            continue
        rows.setdefault(row["Technique"], row)
    return rows


def test_table10_tpch_io(benchmark, experiment_config, printer):
    """Table 10: logical I/O, train/test on TPC-H (estimated features)."""
    table = benchmark.pedantic(
        run_experiment, args=("table_10", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    rows = _rows_by_technique(table)
    assert set(rows) == {"[8]", "LINEAR", "SVM(RBF)", "SCALING"}
    # The I/O task is comparatively easy in-distribution; every technique
    # should place a solid majority of queries within ratio 1.5.
    assert rows["SCALING"]["R<=1.5"] >= 60.0


def test_table11_data_size_io(benchmark, experiment_config, printer):
    """Table 11: logical I/O with different data sizes between train and test."""
    table = benchmark.pedantic(
        run_experiment, args=("table_11", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("Large", "Small"):
        rows = _rows_by_technique(table, test_set)
        # SCALING remains competitive with the best technique of the paper's
        # Table 11 line-up on both directions of the data-size shift.
        best = min(row["L1"] for row in rows.values())
        assert rows["SCALING"]["L1"] <= max(best * 3.0, 1.0)


def test_table12_cross_workload_io(benchmark, experiment_config, printer):
    """Table 12: logical I/O, cross-workload generalisation."""
    table = benchmark.pedantic(
        run_experiment, args=("table_12", experiment_config), iterations=1, rounds=1
    )
    printer(table)
    for test_set in ("TPC-DS", "Real-1", "Real-2"):
        rows = _rows_by_technique(table, test_set)
        # The paper's headline for I/O: SCALING degrades far less than the
        # SVM baseline when the workload changes.
        assert rows["SCALING"]["L1"] <= rows["SVM(RBF)"]["L1"] * 1.5
