"""Benchmark-suite fixtures and result printing.

Every benchmark regenerates one table or figure of the paper through the
experiment registry.  Running ``pytest benchmarks/ --benchmark-only`` prints
each regenerated table/figure so the output file doubles as the
reproduction record referenced by EXPERIMENTS.md.

Profiles: the ``REPRO_PROFILE`` environment variable selects ``fast``
(default, laptop-scale) or ``paper`` (paper-scale workloads and 1000-tree
MART models).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import get_config


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment configuration shared by every benchmark."""
    return get_config()


@pytest.fixture(scope="session")
def printer():
    """Print a result object and persist it under ``benchmarks/results/``.

    pytest captures stdout for passing tests, so the rendered tables are also
    written to one text file per experiment; those files are the artefacts
    EXPERIMENTS.md refers to.
    """
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)

    def _print(result) -> None:
        text = result.render()
        print("\n" + "=" * 78)
        print(text)
        print("=" * 78)
        name = result.experiment_id.lower().replace(" ", "_")
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _print
