"""Benchmark-suite fixtures and result printing.

Every benchmark regenerates one table or figure of the paper through the
experiment registry.  Running ``pytest benchmarks/ --benchmark-only`` prints
each regenerated table/figure so the output file doubles as the
reproduction record referenced by EXPERIMENTS.md.

Profiles: the ``REPRO_PROFILE`` environment variable selects ``fast``
(default, laptop-scale) or ``paper`` (paper-scale workloads and 1000-tree
MART models).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import get_config


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment configuration shared by every benchmark."""
    return get_config()


@pytest.fixture(scope="session")
def printer():
    """Print a result object and persist it under ``benchmarks/results/``.

    pytest captures stdout for passing tests, so the rendered tables are also
    written to one text file per experiment; those files are the artefacts
    EXPERIMENTS.md refers to.  A machine-readable ``<name>.json`` twin is
    written next to each ``.txt`` so downstream tooling (regression
    dashboards, the ROADMAP acceptance links) can consume the numbers
    without re-parsing the fixed-width rendering.
    """
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)

    def _print(result) -> None:
        text = result.render()
        print("\n" + "=" * 78)
        print(text)
        print("=" * 78)
        name = result.experiment_id.lower().replace(" ", "_")
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        (results_dir / f"{name}.json").write_text(
            json.dumps(_as_record(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    return _print


def _as_record(result) -> dict:
    """Structured form of a ResultTable or ResultSeries (duck-typed)."""
    record: dict[str, object] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": getattr(result, "notes", ""),
    }
    if hasattr(result, "columns"):  # ResultTable
        record["columns"] = list(result.columns)
        record["rows"] = [dict(row) for row in result.rows]
        if getattr(result, "reference", None):
            record["reference"] = [dict(row) for row in result.reference]
    else:  # ResultSeries
        record["x_label"] = result.x_label
        record["y_label"] = result.y_label
        record["series"] = {
            name: [[float(x), float(y)] for x, y in points]
            for name, points in result.series.items()
        }
        record["summary"] = {k: float(v) for k, v in result.summary.items()}
    return record
