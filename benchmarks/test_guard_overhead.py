"""Benchmark: guardrail overhead on the clean-input serving fast path.

The robustness layer promises that validation + sanitization are effectively
free when nothing is wrong: on clean inputs the guarded estimation path
takes one extra finiteness scan and prediction check per (family, resource)
batch and then returns the model output unchanged.  This benchmark measures
``estimate_extracted_workload`` with guardrails on (including
out-of-distribution scoring) against the ungated path over identical
pre-extracted features and asserts

* the guarded path costs at most 5% more wall-clock (min-of-N timing), and
* the two paths return bit-identical estimates.

Opt-in like the other reproductions: ``pytest benchmarks/test_guard_overhead.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.catalog.statistics import StatisticsCatalog
from repro.core.estimator import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.experiments.reporting import ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload

#: Same reduced boosting budget the other overhead benchmarks use.
_BENCH_TRAINER = TrainerConfig(
    mart=MARTConfig(n_iterations=40, max_leaves=8, learning_rate=0.15, subsample=0.9)
)

_RESOURCES = ("cpu", "io")
_N_QUERIES = 300
_REPEATS = 9
_MAX_OVERHEAD = 0.05


def _interleaved_min_seconds(fn_a, fn_b, repeats: int = _REPEATS) -> tuple[float, float]:
    """Minimum wall-clock of two callables, interleaving their repeats.

    Alternating the two paths within each round — and flipping which goes
    first every other round — keeps clock-frequency and allocator drift from
    systematically favouring either path.
    """
    functions = (fn_a, fn_b)
    best = [float("inf"), float("inf")]
    for round_index in range(repeats):
        order = (0, 1) if round_index % 2 == 0 else (1, 0)
        for which in order:
            started = time.perf_counter()
            functions[which]()
            best[which] = min(best[which], time.perf_counter() - started)
    return best[0], best[1]


def test_guardrails_cost_at_most_five_percent(experiment_config, printer):
    workload = cfg.tpch_workload(experiment_config)
    train, _ = split_workload(
        workload, experiment_config.train_fraction, seed=experiment_config.seed
    )
    training_data = build_training_data(train, FeatureMode.EXACT)
    estimator = ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=_RESOURCES, config=_BENCH_TRAINER
    )

    planner = Planner(workload.catalog, StatisticsCatalog(workload.catalog))
    queries = tpch_template_set().generate(workload.catalog, _N_QUERIES, seed=31)
    plans = [planner.plan(query) for query in queries]
    extracted = [estimator.extract_plan_features(plan) for plan in plans]

    def guarded():
        return estimator.estimate_extracted_workload(
            plans, extracted, _RESOURCES, guardrails=True, ood_threshold=1.0
        )

    def ungated():
        return estimator.estimate_extracted_workload(
            plans, extracted, _RESOURCES, guardrails=False
        )

    # Warm both paths once before timing (imports, allocator, caches).
    guarded_estimate = guarded()
    ungated_estimate = ungated()

    guarded_seconds, ungated_seconds = _interleaved_min_seconds(guarded, ungated)
    overhead = guarded_seconds / max(ungated_seconds, 1e-12) - 1.0

    table = ResultTable(
        experiment_id="Guard overhead",
        title="Guardrail overhead on the clean-input estimation path",
        columns=["Quantity", "Value"],
    )
    table.add_row(Quantity="Workload size (queries)", Value=len(plans))
    table.add_row(
        Quantity="Operators estimated",
        Value=sum(len(features) for features in extracted),
    )
    table.add_row(
        Quantity=f"Ungated path, min of {_REPEATS} (ms)",
        Value=round(ungated_seconds * 1e3, 2),
    )
    table.add_row(
        Quantity=f"Guarded path, min of {_REPEATS} (ms)",
        Value=round(guarded_seconds * 1e3, 2),
    )
    table.add_row(Quantity="Overhead (%)", Value=round(overhead * 100.0, 2))
    table.add_row(
        Quantity="Degraded operators", Value=guarded_estimate.degradation.count
    )
    table.notes = (
        "Guardrails include the finiteness scan, prediction sanitization and "
        "envelope OOD scoring; on clean inputs the guarded path returns the "
        "model's batch output unchanged, so estimates stay bit-identical."
    )
    printer(table)

    for resource in _RESOURCES:
        assert np.array_equal(
            guarded_estimate.query_totals(resource),
            ungated_estimate.query_totals(resource),
        )
    assert overhead <= _MAX_OVERHEAD, (
        f"guardrails cost {overhead * 100.0:.1f}% on clean inputs "
        f"(limit {_MAX_OVERHEAD * 100.0:.0f}%)"
    )
