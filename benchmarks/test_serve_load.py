"""Benchmark: coalesced concurrent serving vs the sequential single caller.

The acceptance benchmark of the concurrent serving layer
(:mod:`repro.serving`): a seeded closed-loop load over the standard TPC-H
scenario mix must sustain **at least 2x** the single-threaded sequential
request rate on the identical trace, with p99 latency inside the
``max_wait_ms`` + single-batch-service-time budget and zero request errors.

The full :class:`~repro.serving.bench.ServeBenchResult` record is persisted
as ``benchmarks/results/serve_load.json`` (flat key/value JSON, the same
record ``repro serve-bench --out`` writes) next to a ``serve_load.txt``
rendering.  Opt-in like the other reproductions:
``pytest benchmarks/test_serve_load.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import train_scaling_estimator
from repro.api.service import EstimationService
from repro.serving import LoadConfig, ServeBenchConfig, run_serve_bench, standard_scenarios

#: Reduced boosting budget (same spirit as the batch-overhead benchmark):
#: the serving layer's coalescing win is what is measured, not model size.
_TRAIN_QUERIES = 96
_ITERATIONS = 40


def test_serve_load_sustains_2x_under_latency_budget(benchmark, experiment_config):
    estimator = train_scaling_estimator(
        experiment_config,
        ("cpu", "io"),
        n_queries=_TRAIN_QUERIES,
        iterations=_ITERATIONS,
    )
    service = EstimationService(estimator)
    scenarios = standard_scenarios("tpch")
    config = ServeBenchConfig(
        load=LoadConfig(mode="closed", requests=1200, warmup=100, concurrency=8, seed=17),
        max_batch_size=96,
        max_wait_ms=2.0,
    )
    result = benchmark.pedantic(
        run_serve_bench, args=(service, scenarios, config), iterations=1, rounds=1
    )

    text = result.render()
    print("\n" + "=" * 78)
    print(text)
    print("=" * 78)
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "serve_load.txt").write_text(text + "\n", encoding="utf-8")
    (results_dir / "serve_load.json").write_text(
        json.dumps(result.to_record(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    assert result.report.errors == 0
    assert result.throughput_ratio >= 2.0, (
        f"coalesced serving only {result.throughput_ratio:.2f}x the sequential rate"
    )
    assert result.p99_within_budget, (
        f"p99 {result.report.latency.p99_ms:.2f} ms over the "
        f"{result.p99_budget_ms:.2f} ms budget"
    )
