"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: they isolate individual ingredients of
the SCALING technique (dependent-feature normalisation, the out_ratio model
selection heuristic, MART capacity) on the data-size generalisation setting,
which is where those ingredients matter.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ScalingTechnique
from repro.core.trainer import TrainerConfig
from repro.experiments import config as cfg
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.ml.metrics import ErrorSummary


def _small_large(experiment_config):
    return cfg.tpch_small_large(experiment_config)


def _evaluate(technique, test_queries, resource="cpu"):
    estimates = technique.predict_queries(test_queries)
    actuals = np.array([q.actual(resource) for q in test_queries])
    return ErrorSummary.from_predictions(estimates, actuals)


def test_ablation_pair_scaling(benchmark, experiment_config, printer):
    """Scaling by up to two features vs single-feature scaling only."""
    small, large = _small_large(experiment_config)

    def run():
        with_pairs = ScalingTechnique(
            trainer_config=TrainerConfig(mart=experiment_config.mart, max_pair_models=3)
        ).fit(small, "cpu", FeatureMode.EXACT)
        without_pairs = ScalingTechnique(
            trainer_config=TrainerConfig(mart=experiment_config.mart, enable_pair_scaling=False)
        ).fit(small, "cpu", FeatureMode.EXACT)
        return _evaluate(with_pairs, large), _evaluate(without_pairs, large)

    with_pairs, without_pairs = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nAblation (pair scaling):   with pairs    {with_pairs}")
    print(f"Ablation (pair scaling):   single only   {without_pairs}")
    # Pair scaling should never be catastrophically worse than single-feature
    # scaling; both must handle the data-size shift.
    assert with_pairs.l1_error <= without_pairs.l1_error * 3.0 + 0.5
    assert with_pairs.ratio_le_15 >= 0.3


def test_ablation_mart_capacity(benchmark, experiment_config, printer):
    """Boosting-iteration budget: a handful of trees is not enough."""
    small, large = _small_large(experiment_config)

    def run():
        tiny = ScalingTechnique(
            trainer_config=TrainerConfig(
                mart=MARTConfig(n_iterations=5, max_leaves=experiment_config.mart.max_leaves)
            )
        ).fit(small, "cpu", FeatureMode.EXACT)
        full = ScalingTechnique(trainer_config=TrainerConfig(mart=experiment_config.mart)).fit(
            small, "cpu", FeatureMode.EXACT
        )
        return _evaluate(tiny, large), _evaluate(full, large)

    tiny, full = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nAblation (capacity): 5 iterations   {tiny}")
    print(f"Ablation (capacity): full budget    {full}")
    assert full.l1_error <= tiny.l1_error * 1.2


def test_ablation_feature_mode(benchmark, experiment_config, printer):
    """Exact vs optimizer-estimated features for the same technique.

    Mirrors the Table 4 vs Table 7 comparison: estimated features can only
    degrade accuracy, since they add cardinality-estimation error on top of
    the modelling error.
    """
    from repro.workloads.datasets import split_workload

    workload = cfg.tpch_workload(experiment_config)
    train, test = split_workload(workload, experiment_config.train_fraction,
                                 seed=experiment_config.seed)

    def run():
        exact = ScalingTechnique(trainer_config=TrainerConfig(mart=experiment_config.mart)).fit(
            train, "cpu", FeatureMode.EXACT
        )
        estimated = ScalingTechnique(
            trainer_config=TrainerConfig(mart=experiment_config.mart)
        ).fit(train, "cpu", FeatureMode.ESTIMATED)
        return _evaluate(exact, test), _evaluate(estimated, test)

    exact, estimated = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nAblation (feature mode): exact      {exact}")
    print(f"Ablation (feature mode): estimated  {estimated}")
    # Exact features should be at least as good as estimated ones on the
    # fraction of well-estimated queries.
    assert exact.ratio_le_15 >= estimated.ratio_le_15 - 0.1
