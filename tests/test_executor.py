"""Tests for the execution simulator and pipeline decomposition."""

from __future__ import annotations

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.hardware import HardwareProfile
from repro.plan.operators import OperatorType


class TestExecutionResults:
    def test_every_operator_observed(self, executor, tpch_plans):
        for plan in tpch_plans:
            result = executor.execute(plan)
            assert len(result.observations) == plan.operator_count()

    def test_totals_are_sums_of_operators(self, executor, tpch_plans):
        for plan in tpch_plans:
            result = executor.execute(plan)
            assert result.total_cpu_us == pytest.approx(
                sum(o.actual_cpu_us for o in result.observations)
            )
            assert result.total_logical_io == pytest.approx(
                sum(o.actual_logical_io for o in result.observations)
            )

    def test_resources_positive(self, executor, tpch_plans):
        for plan in tpch_plans:
            result = executor.execute(plan)
            assert result.total_cpu_us > 0
            assert result.total_logical_io > 0
            for obs in result.observations:
                assert obs.actual_cpu_us >= 0
                assert obs.actual_logical_io >= 0

    def test_pipeline_totals_sum_to_query_total(self, executor, tpch_plans):
        for plan in tpch_plans:
            result = executor.execute(plan)
            for resource in ("cpu", "io"):
                assert sum(result.pipeline_totals(resource).values()) == pytest.approx(
                    result.total(resource)
                )

    def test_repeated_execution_is_deterministic(self, executor, tpch_plans):
        plan = tpch_plans[0]
        first = executor.execute(plan)
        second = executor.execute(plan)
        assert first.total_cpu_us == pytest.approx(second.total_cpu_us)

    def test_different_seed_changes_noise(self, executor, tpch_plans):
        plan = tpch_plans[0]
        a = executor.execute(plan, seed=1).total_cpu_us
        b = executor.execute(plan, seed=2).total_cpu_us
        assert a != b

    def test_noise_free_executor_matches_resource_model(self, tpch_plans):
        quiet = QueryExecutor(noise=False)
        plan = tpch_plans[0]
        result = quiet.execute(plan)
        expected = sum(
            quiet.resource_model.operator_resources(op).cpu_us for op in plan.operators()
        )
        assert result.total_cpu_us == pytest.approx(expected)

    def test_noise_is_bounded(self, tpch_plans):
        noisy = QueryExecutor(HardwareProfile(noise_sigma=0.05))
        quiet = QueryExecutor(noise=False)
        plan = tpch_plans[0]
        ratio = noisy.execute(plan).total_cpu_us / quiet.execute(plan).total_cpu_us
        assert 0.7 < ratio < 1.3

    def test_observation_lookup(self, executor, tpch_plans):
        plan = tpch_plans[0]
        result = executor.execute(plan)
        obs = result.observation_for(plan.root)
        assert obs.node_id == plan.root.node_id
        assert result.by_operator()[plan.root.node_id] is obs

    def test_unknown_resource_rejected(self, executor, tpch_plans):
        result = executor.execute(tpch_plans[0])
        with pytest.raises(ValueError):
            result.total("memory")


class TestPipelines:
    def test_every_operator_in_exactly_one_pipeline(self, tpch_plans):
        for plan in tpch_plans:
            seen: dict[int, int] = {}
            for pipeline in plan.pipelines():
                for op in pipeline.operators:
                    assert op.node_id not in seen
                    seen[op.node_id] = pipeline.index
            assert len(seen) == plan.operator_count()

    def test_sort_children_start_new_pipelines(self, tpch_plans):
        for plan in tpch_plans:
            for op in plan.operators():
                if op.op_type is OperatorType.SORT and op.children:
                    assert plan.pipeline_of(op) != plan.pipeline_of(op.children[0])

    def test_hash_join_probe_shares_pipeline_build_does_not(self, tpch_plans):
        checked = False
        for plan in tpch_plans:
            for op in plan.operators():
                if op.op_type is OperatorType.HASH_JOIN and len(op.children) == 2:
                    probe, build = op.children
                    assert plan.pipeline_of(op) == plan.pipeline_of(probe)
                    assert plan.pipeline_of(op) != plan.pipeline_of(build)
                    checked = True
        assert checked, "expected at least one hash join in the TPC-H plans"

    def test_blocking_operator_count_bounds_pipeline_count(self, tpch_plans):
        for plan in tpch_plans:
            blocking = sum(1 for op in plan.operators() if op.op_type.is_blocking)
            assert len(plan.pipelines()) <= blocking + 1
