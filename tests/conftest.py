"""Shared fixtures: small catalogs, workloads and trained estimators.

Everything expensive is session-scoped and deliberately tiny, so the whole
test suite stays fast while still exercising the full pipeline end to end.
"""

from __future__ import annotations

import pytest

from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.core import ResourceEstimator
from repro.core.trainer import TrainerConfig
from repro.engine.executor import QueryExecutor
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.optimizer.planner import Planner
from repro.query.tpch_templates import tpch_template_set
from repro.workloads.datasets import build_training_data, split_workload
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tpch import build_tpch_workload


@pytest.fixture(scope="session")
def tpch_catalog():
    """A small, skewed TPC-H catalog shared by most tests."""
    return build_tpch_catalog(scale_factor=0.05, skew_z=1.0)


@pytest.fixture(scope="session")
def statistics(tpch_catalog):
    return StatisticsCatalog(tpch_catalog)


@pytest.fixture(scope="session")
def planner(tpch_catalog, statistics):
    return Planner(tpch_catalog, statistics)


@pytest.fixture(scope="session")
def executor():
    return QueryExecutor()


@pytest.fixture(scope="session")
def tpch_queries(tpch_catalog):
    """A handful of concrete TPC-H query specs."""
    return tpch_template_set().generate(tpch_catalog, 18, seed=7)


@pytest.fixture(scope="session")
def tpch_plans(planner, tpch_queries):
    return [planner.plan(query) for query in tpch_queries]


@pytest.fixture(scope="session")
def small_workload():
    """A small observed TPC-H workload (planned + executed)."""
    return build_tpch_workload(scale_factor=0.05, skew_z=1.0, n_queries=72, seed=11)


@pytest.fixture(scope="session")
def workload_split(small_workload):
    return split_workload(small_workload, train_fraction=0.75, seed=3)


@pytest.fixture(scope="session")
def tiny_mart_config():
    return MARTConfig(n_iterations=25, max_leaves=8, learning_rate=0.15, subsample=0.9)


@pytest.fixture(scope="session")
def tiny_trainer_config(tiny_mart_config):
    return TrainerConfig(mart=tiny_mart_config, min_training_rows=10, max_pair_models=1)


@pytest.fixture(scope="session")
def trained_estimator(workload_split, tiny_trainer_config):
    """A SCALING estimator trained on the small workload (exact features)."""
    train, _ = workload_split
    training_data = build_training_data(train, FeatureMode.EXACT)
    return ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=("cpu", "io"), config=tiny_trainer_config
    )


@pytest.fixture(scope="session")
def workload_runner(tpch_catalog, statistics):
    return WorkloadRunner(tpch_catalog, statistics)
