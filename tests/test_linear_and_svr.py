"""Tests for linear regression, feature selection, kernels and kernel SVR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.kernels import NormalizedPolyKernel, PolyKernel, PukKernel, RBFKernel, make_kernel
from repro.ml.linear import LinearRegressor, greedy_feature_selection
from repro.ml.svr import KernelSVR


def linear_data(n: int = 300, seed: int = 2):
    rng = np.random.default_rng(seed)
    x = np.column_stack([rng.uniform(0, 100, n), rng.uniform(0, 10, n), rng.uniform(0, 1, n)])
    y = 4.0 * x[:, 0] + 20.0 * x[:, 1] + 3.0 + rng.normal(0, 0.5, n)
    return x, y


class TestLinearRegressor:
    def test_recovers_coefficients(self):
        x, y = linear_data()
        model = LinearRegressor(ridge=0.0).fit(x, y)
        assert model.coefficients_[0] == pytest.approx(4.0, abs=0.1)
        assert model.coefficients_[1] == pytest.approx(20.0, abs=0.3)
        assert model.intercept_ == pytest.approx(3.0, abs=1.0)

    def test_extrapolates_linearly(self):
        x, y = linear_data()
        model = LinearRegressor().fit(x, y)
        probe = np.array([[1000.0, 5.0, 0.5]])
        assert model.predict(probe)[0] == pytest.approx(4.0 * 1000 + 20 * 5 + 3, rel=0.05)

    def test_clip_negative(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 10.0, 20.0])
        clipped = LinearRegressor(clip_negative=True).fit(x, y)
        unclipped = LinearRegressor(clip_negative=False).fit(x, y)
        probe = np.array([[-5.0]])
        assert clipped.predict(probe)[0] == 0.0
        assert unclipped.predict(probe)[0] < 0.0

    def test_collinear_features_handled(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 1e6, size=(100, 1))
        x = np.hstack([base, base, base * 2.0])
        y = base[:, 0] * 3.0
        model = LinearRegressor().fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.zeros((1, 2)))


class TestFeatureSelection:
    def test_selects_informative_features(self):
        rng = np.random.default_rng(4)
        informative = rng.uniform(0, 10, size=(200, 2))
        noise = rng.uniform(0, 10, size=(200, 3))
        x = np.hstack([informative, noise])
        y = 5.0 * informative[:, 0] + 2.0 * informative[:, 1] + rng.normal(0, 0.1, 200)
        selected = greedy_feature_selection(x, y, max_features=3)
        assert 0 in selected
        assert 1 in selected

    def test_never_returns_empty(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(size=(50, 3))
        y = rng.uniform(size=50)
        assert greedy_feature_selection(x, y)

    def test_respects_max_features(self):
        x, y = linear_data()
        assert len(greedy_feature_selection(x, y, max_features=1)) == 1


class TestKernels:
    def test_poly_kernel_values(self):
        kernel = PolyKernel(2)
        a = np.array([[1.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert kernel(a, b)[0, 0] == pytest.approx((1.0 + 1.0) ** 2)

    def test_rbf_diagonal_is_one(self):
        kernel = RBFKernel(0.5)
        x = np.random.default_rng(0).uniform(size=(5, 3))
        gram = kernel(x, x)
        assert np.allclose(np.diagonal(gram), 1.0)

    def test_normalized_poly_bounded_by_one(self):
        kernel = NormalizedPolyKernel(3)
        x = np.random.default_rng(1).uniform(size=(6, 3))
        assert np.all(kernel(x, x) <= 1.0 + 1e-9)

    def test_puk_symmetric(self):
        kernel = PukKernel()
        x = np.random.default_rng(2).uniform(size=(5, 2))
        gram = kernel(x, x)
        assert np.allclose(gram, gram.T)

    def test_factory(self):
        assert isinstance(make_kernel("poly", degree=3), PolyKernel)
        assert isinstance(make_kernel("rbf", gamma=0.1), RBFKernel)
        assert isinstance(make_kernel("normalized_poly"), NormalizedPolyKernel)
        assert isinstance(make_kernel("puk"), PukKernel)
        with pytest.raises(ValueError):
            make_kernel("linear_kernel")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RBFKernel(0.0)
        with pytest.raises(ValueError):
            PolyKernel(0)


class TestKernelSVR:
    def test_fits_nonlinear_data(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 10, size=(400, 2))
        y = x[:, 0] ** 2 + 3.0 * x[:, 1] + rng.normal(0, 0.2, 400)
        model = KernelSVR(kernel=PolyKernel(2)).fit(x[:300], y[:300])
        pred = model.predict(x[300:])
        relative = np.abs(pred - y[300:]) / np.maximum(np.abs(y[300:]), 1e-9)
        assert float(np.median(relative)) < 0.1

    def test_subsamples_large_training_sets(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(size=(3000, 2))
        y = x[:, 0] + x[:, 1]
        model = KernelSVR(max_train_points=500).fit(x, y)
        assert model.support_points_.shape[0] == 500

    def test_epsilon_refinement_does_not_destroy_fit(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(0, 10, size=(300, 2))
        y = 2.0 * x[:, 0] + x[:, 1]
        plain = KernelSVR(epsilon=0.0).fit(x, y).predict(x)
        refined = KernelSVR(epsilon=0.05, refine_iterations=50).fit(x, y).predict(x)
        plain_err = float(np.mean(np.abs(plain - y)))
        refined_err = float(np.mean(np.abs(refined - y)))
        assert refined_err <= plain_err * 5 + 1.0

    def test_clip_negative_default(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 2.0, 3.0])
        model = KernelSVR(kernel=RBFKernel(1.0)).fit(x, y)
        assert np.all(model.predict(np.array([[-10.0]])) >= 0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KernelSVR().predict(np.zeros((1, 2)))
