"""Batch/scalar parity of the end-to-end estimation path, plus the fallback fix.

The scalar estimation API is a one-row wrapper over the batched one, so these
tests pin the remaining nontrivial batch machinery: the per-family grouping
and scatter of ``estimate_workload``, the vectorised model selector, and the
cross-query grouping of ``ScalingTechnique.predict_queries`` — across TPC-H
and TPC-DS sample workloads and both resources.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ResourceEstimator
from repro.core.combined_model import CombinedModel
from repro.core.estimator import _FallbackModel
from repro.core.model_selection import ModelSelector
from repro.core.scaled_model import (
    MIN_DIVISOR,
    ScalingStep,
    transform_feature_dict,
    transform_targets,
)
from repro.core.scaling import SCALING_FUNCTIONS
from repro.core.trainer import ScalingModelTrainer, TrainerConfig
from repro.baselines import ScalingTechnique
from repro.features.definitions import FeatureMode, OperatorFamily
from repro.ml.mart import MARTConfig
from repro.workloads.datasets import build_training_data, split_workload
from repro.workloads.tpcds import build_tpcds_workload

RESOURCES = ("cpu", "io")

FEATURES = ("COUT", "SOUTAVG", "SOUTTOT", "CIN1", "SINAVG1", "SINTOT1",
            "CIN2", "SINAVG2", "SINTOT2", "OUTPUTUSAGE", "CPREDICATES")


def synthetic_rows(n: int = 300, seed: int = 0, max_rows: float = 10_000.0):
    """Filter-like training rows: CPU = 0.05 * CIN1 * (1 + width/200)."""
    rng = np.random.default_rng(seed)
    rows, targets = [], []
    for _ in range(n):
        cin = float(rng.uniform(100, max_rows))
        width = float(rng.uniform(10, 200))
        cout = cin * float(rng.uniform(0.1, 0.9))
        rows.append({
            "COUT": cout, "SOUTAVG": width, "SOUTTOT": cout * width,
            "CIN1": cin, "SINAVG1": width, "SINTOT1": cin * width,
            "CIN2": 0.0, "SINAVG2": 0.0, "SINTOT2": 0.0,
            "OUTPUTUSAGE": 3.0, "CPREDICATES": 1.0,
        })
        targets.append(0.05 * cin * (1.0 + width / 200.0))
    return rows, np.array(targets)


def tiny_mart() -> MARTConfig:
    return MARTConfig(n_iterations=30, max_leaves=8, learning_rate=0.2, subsample=1.0)


@pytest.fixture(scope="module")
def tpcds_split():
    workload = build_tpcds_workload(scale_factor=0.1, skew_z=0.8, n_queries=36, seed=13)
    return split_workload(workload, train_fraction=0.75, seed=5)


@pytest.fixture(scope="module")
def tpcds_estimator(tpcds_split, tiny_trainer_config):
    train, _ = tpcds_split
    training_data = build_training_data(train, FeatureMode.EXACT)
    return ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=RESOURCES, config=tiny_trainer_config
    )


def _assert_workload_matches_scalar(estimator, plans):
    estimate = estimator.estimate_workload(plans, RESOURCES)
    assert estimate.n_plans == len(plans)
    for resource in RESOURCES:
        totals = estimate.query_totals(resource)
        assert totals.shape == (len(plans),)
        for index, plan in enumerate(plans):
            scalar_ops = estimator.estimate_operators(plan, resource)
            assert estimate.operators(index, resource) == pytest.approx(scalar_ops, rel=1e-9)
            assert estimate.pipelines(index, resource) == pytest.approx(
                estimator.estimate_pipelines(plan, resource), rel=1e-9
            )
            assert estimate.query(index, resource) == pytest.approx(
                estimator.estimate_plan(plan, resource), rel=1e-9
            )
            assert totals[index] == pytest.approx(estimate.query(index, resource), rel=1e-12)


class TestEstimateWorkloadParity:
    def test_tpch_batch_matches_scalar(self, trained_estimator, workload_split):
        _, test = workload_split
        _assert_workload_matches_scalar(trained_estimator, [q.plan for q in test])

    def test_tpcds_batch_matches_scalar(self, tpcds_estimator, tpcds_split):
        _, test = tpcds_split
        _assert_workload_matches_scalar(tpcds_estimator, [q.plan for q in test])

    def test_unknown_resource_rejected(self, trained_estimator, workload_split):
        _, test = workload_split
        with pytest.raises(ValueError):
            trained_estimator.estimate_workload([test[0].plan], ("memory",))
        estimate = trained_estimator.estimate_workload([test[0].plan], ("cpu",))
        with pytest.raises(ValueError):
            estimate.query_totals("io")

    def test_empty_workload(self, trained_estimator):
        estimate = trained_estimator.estimate_workload([])
        assert estimate.n_plans == 0
        assert estimate.query_totals("cpu").shape == (0,)


class TestScalingTechniqueBatch:
    def test_predict_queries_matches_per_query(self, workload_split, tiny_trainer_config):
        train, test = workload_split
        technique = ScalingTechnique(trainer_config=tiny_trainer_config)
        technique.fit(train, "cpu", FeatureMode.EXACT)
        batched = technique.predict_queries(test)
        singles = np.array([technique.predict_query(query) for query in test])
        assert batched == pytest.approx(singles, rel=1e-9)

    def test_empty_query_list(self, workload_split, tiny_trainer_config):
        train, _ = workload_split
        technique = ScalingTechnique(trainer_config=tiny_trainer_config)
        technique.fit(train, "cpu", FeatureMode.EXACT)
        assert technique.predict_queries([]).shape == (0,)


class TestCombinedModelBatch:
    def _outlier_rows(self, n: int = 64):
        """Training-range rows mixed with far-out-of-range outliers."""
        rows, _ = synthetic_rows(n, seed=42)
        for i, row in enumerate(rows):
            if i % 3 == 0:
                row["CIN1"] = 1_000_000.0 * (1 + i)
                row["SINTOT1"] = row["CIN1"] * row["SINAVG1"]
        return rows

    def test_predict_batch_matches_scalar(self):
        rows, targets = synthetic_rows(max_rows=5_000.0)
        for steps in (
            (),
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),),
            (
                ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),
                ScalingStep("SINAVG1", SCALING_FUNCTIONS["linear"]),
            ),
        ):
            model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, steps, tiny_mart())
            model.fit(rows, targets)
            probe = self._outlier_rows()
            batched = model.predict_batch(model.feature_matrix(probe))
            singles = np.array([model.predict(row) for row in probe])
            assert batched == pytest.approx(singles, rel=1e-12)

    def test_predict_batch_rejects_wrong_width(self):
        rows, targets = synthetic_rows(50)
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        model.fit(rows, targets)
        with pytest.raises(ValueError):
            model.predict_batch(np.zeros((3, len(FEATURES) + 1)))

    def test_trained_model_set_batch_matches_scalar(self):
        rows, targets = synthetic_rows(300, max_rows=5_000.0)
        from repro.core.trainer import FamilyTrainingData

        data = FamilyTrainingData(family=OperatorFamily.FILTER)
        for row, target in zip(rows, targets):
            data.add(row, {"cpu": float(target)})
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart(), max_pair_models=1))
        model_set = trainer.train_family(data, "cpu")
        assert model_set is not None

        probe = self._outlier_rows()
        matrix = model_set.feature_matrix(probe)
        batched = model_set.predict_batch(matrix)
        singles = np.array([model_set.predict(row) for row in probe])
        assert batched == pytest.approx(singles, rel=1e-12)

    def test_model_set_batch_routes_rows_to_different_models(self):
        from repro.core.trainer import OperatorModelSet

        rows, targets = synthetic_rows(max_rows=5_000.0)
        plain = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        plain.fit(rows, targets)
        scaled = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        )
        scaled.fit(rows, targets)
        model_set = OperatorModelSet(
            family=OperatorFamily.FILTER, resource="cpu",
            models=[plain, scaled], default_model=plain,
        )
        probe = self._outlier_rows()
        matrix = model_set.feature_matrix(probe)
        selection = model_set.select_batch(matrix)
        # In-range rows keep the plain default; CIN1 outliers switch to the
        # scaled model — the scatter path must handle both groups in one call.
        assert len(np.unique(selection.indices)) == 2
        batched = model_set.predict_batch(matrix)
        singles = np.array([model_set.predict(row) for row in probe])
        assert batched == pytest.approx(singles, rel=1e-12)

    def test_transform_matrix_matches_reference_dict_transform(self):
        """transform_matrix must agree with the scalar reference in scaled_model.

        The dict functions are the Section 6.1 specification; the matrix path
        is the production implementation — this pins them together so neither
        can drift silently.
        """
        rows = self._outlier_rows(32)
        targets = np.linspace(1.0, 500.0, len(rows))
        for steps in (
            (),
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),),
            (ScalingStep("CIN1", SCALING_FUNCTIONS["nlogn"]),),
            (
                ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),
                ScalingStep("SINAVG1", SCALING_FUNCTIONS["linear"]),
            ),
        ):
            model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, steps, tiny_mart())
            matrix = model.transform_matrix(model.feature_matrix(rows))
            reference = np.array(
                [
                    [transform_feature_dict(row, steps).get(n, 0.0) for n in model.input_features_]
                    for row in rows
                ]
            )
            assert matrix == pytest.approx(reference, rel=1e-12)
            scaled = model._step_factors(model.feature_matrix(rows), floor=MIN_DIVISOR)
            assert targets / scaled == pytest.approx(
                transform_targets(rows, targets, steps), rel=1e-12
            )

    def test_selector_batch_matches_scalar(self):
        rows, targets = synthetic_rows(max_rows=5_000.0)
        plain = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        plain.fit(rows, targets)
        scaled = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        )
        scaled.fit(rows, targets)
        probe = self._outlier_rows()
        selector = ModelSelector()
        batch = selector.select_batch(plain, [plain, scaled], plain.feature_matrix(probe))
        for i, row in enumerate(probe):
            decision = selector.select(plain, [plain, scaled], row)
            assert batch.model_for(i) is decision.model
            assert batch.max_out_ratios[i] == pytest.approx(decision.max_out_ratio)
            assert bool(batch.used_default[i]) == decision.used_default


class TestFallbackModel:
    """Regression tests for the fallback constant bug (estimator.py).

    The seed computed ``constant = median(targets) * 0.0`` — a dead term that
    was always 0.  The chosen fix drops the constant entirely: the fallback
    predicts the median per-output-tuple rate times the instance's
    cardinality, exactly as its docstring always claimed.
    """

    def test_no_constant_offset(self, trained_estimator):
        fallback = trained_estimator.fallbacks["cpu"]
        assert fallback.predict({"COUT": 0.0, "CIN1": 0.0}) == 0.0
        assert not hasattr(fallback, "constant")

    def test_prediction_is_per_tuple_rate_times_rows(self, trained_estimator):
        fallback = trained_estimator.fallbacks["cpu"]
        assert fallback.per_tuple > 0.0
        assert fallback.predict({"COUT": 1_000.0}) == pytest.approx(
            fallback.per_tuple * 1_000.0
        )
        # max(COUT, CIN1) drives the estimate.
        assert fallback.predict({"COUT": 10.0, "CIN1": 5_000.0}) == pytest.approx(
            fallback.per_tuple * 5_000.0
        )

    def test_batch_matches_scalar(self):
        fallback = _FallbackModel(per_tuple=0.25)
        cout = np.array([0.0, 10.0, 1_000.0])
        cin1 = np.array([5.0, 0.0, 2_000.0])
        batched = fallback.predict_batch(cout, cin1)
        singles = [
            fallback.predict({"COUT": c, "CIN1": i}) for c, i in zip(cout, cin1)
        ]
        assert batched == pytest.approx(singles)

    def test_unseen_family_routed_through_fallback(self, trained_estimator):
        families = trained_estimator.families("cpu")
        unseen = next(f for f in OperatorFamily if f not in families)
        estimates = trained_estimator.estimate_feature_rows(
            unseen, [{"COUT": 100.0}, {"COUT": 200.0}], "cpu"
        )
        assert estimates[1] == pytest.approx(2 * estimates[0])


def test_mart_config_used_for_batch_suite_is_small():
    """Guard: the parity suite must stay fast (tiny boosting budgets only)."""
    assert tiny_mart().n_iterations <= 50
    assert MARTConfig().n_iterations >= 100
