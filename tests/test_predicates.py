"""Tests for predicates and predicate conjunctions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.query.predicates import ColumnRef, Predicate, PredicateConjunction


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(scale_factor=0.05, skew_z=1.5)


@pytest.fixture(scope="module")
def statistics(catalog):
    return StatisticsCatalog(catalog)


def range_pred(fraction: float, anchor: str = "head") -> Predicate:
    return Predicate(
        column=ColumnRef("lineitem", "l_shipdate"),
        kind="range",
        domain_fraction=fraction,
        anchor=anchor,
    )


class TestPredicate:
    def test_eq_selectivity_uses_value_rank(self, catalog):
        frequent = Predicate(ColumnRef("lineitem", "l_quantity"), kind="eq", value_rank=0)
        rare = Predicate(ColumnRef("lineitem", "l_quantity"), kind="eq", value_rank=40)
        assert frequent.true_selectivity(catalog) > rare.true_selectivity(catalog)

    def test_in_predicate_sums_head_values(self, catalog):
        one = Predicate(ColumnRef("lineitem", "l_shipmode"), kind="in", value_count=1)
        three = Predicate(ColumnRef("lineitem", "l_shipmode"), kind="in", value_count=3)
        assert three.true_selectivity(catalog) > one.true_selectivity(catalog)

    def test_head_range_amplified_by_skew(self, catalog):
        pred = range_pred(0.1, anchor="head")
        assert pred.true_selectivity(catalog) > 0.1

    def test_estimated_selectivity_within_bounds(self, catalog, statistics):
        pred = range_pred(0.3)
        assert 0.0 <= pred.estimated_selectivity(statistics) <= 1.0

    def test_estimate_differs_from_truth_under_skew(self, catalog, statistics):
        """The optimizer view loses part of the skew information."""
        pred = Predicate(ColumnRef("orders", "o_orderdate"), kind="eq", value_rank=0)
        truth = pred.true_selectivity(catalog)
        estimate = pred.estimated_selectivity(statistics)
        assert truth > estimate  # the most frequent value is underestimated

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Predicate(ColumnRef("a", "b"), kind="between")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Predicate(ColumnRef("a", "b"), domain_fraction=1.5)

    def test_sargable_check(self):
        pred = range_pred(0.1)
        assert pred.is_sargable_on("l_shipdate")
        assert not pred.is_sargable_on("l_orderkey")


class TestPredicateConjunction:
    def test_empty_conjunction_selects_everything(self, catalog, statistics):
        conj = PredicateConjunction()
        assert conj.true_selectivity(catalog) == 1.0
        assert conj.estimated_selectivity(statistics) == 1.0
        assert not conj

    def test_independent_predicates_multiply(self, catalog):
        a, b = range_pred(0.4), range_pred(0.3, anchor="tail")
        conj = PredicateConjunction([a, b], correlation=0.0)
        expected = a.true_selectivity(catalog) * b.true_selectivity(catalog)
        assert conj.true_selectivity(catalog) == pytest.approx(expected)

    def test_fully_correlated_predicates_take_minimum(self, catalog):
        a, b = range_pred(0.4), range_pred(0.3, anchor="tail")
        conj = PredicateConjunction([a, b], correlation=1.0)
        expected = min(a.true_selectivity(catalog), b.true_selectivity(catalog))
        assert conj.true_selectivity(catalog) == pytest.approx(expected)

    def test_optimizer_always_assumes_independence(self, catalog, statistics):
        a, b = range_pred(0.4), range_pred(0.3, anchor="tail")
        independent = PredicateConjunction([a, b], correlation=0.0)
        correlated = PredicateConjunction([a, b], correlation=0.9)
        assert independent.estimated_selectivity(statistics) == pytest.approx(
            correlated.estimated_selectivity(statistics)
        )
        # ... which makes correlated conjunctions underestimated.
        assert correlated.estimated_selectivity(statistics) < correlated.true_selectivity(catalog)

    def test_residual_removes_predicate(self):
        a, b = range_pred(0.4), range_pred(0.3)
        conj = PredicateConjunction([a, b])
        residual = conj.residual(a)
        assert len(residual) == 1
        assert residual.predicates[0] is b
        assert len(conj.residual(None)) == 2

    def test_sargable_lookup(self):
        a = range_pred(0.4)
        b = Predicate(ColumnRef("lineitem", "l_quantity"), kind="eq")
        conj = PredicateConjunction([a, b])
        assert conj.sargable_predicate("l_quantity") is b
        assert conj.sargable_predicate("l_partkey") is None

    def test_total_complexity(self):
        conj = PredicateConjunction([range_pred(0.1), range_pred(0.2)])
        assert conj.total_complexity == 2

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            PredicateConjunction([], correlation=1.5)


@settings(max_examples=25, deadline=None)
@given(correlation=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_correlation_interpolates_between_product_and_minimum(correlation):
    """Property: the true combined selectivity always lies between the
    independence product and the most selective member."""
    catalog = build_tpch_catalog(scale_factor=0.01, skew_z=1.0)
    a, b = range_pred(0.5), range_pred(0.4, anchor="tail")
    conj = PredicateConjunction([a, b], correlation=correlation)
    combined = conj.true_selectivity(catalog)
    product = a.true_selectivity(catalog) * b.true_selectivity(catalog)
    minimum = min(a.true_selectivity(catalog), b.true_selectivity(catalog))
    assert product - 1e-12 <= combined <= minimum + 1e-12
