"""Tests for the experiment harness, configuration and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LinearBaseline, OptimizerBaseline
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.harness import TechniqueCache, evaluate_techniques
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import ResultSeries, ResultTable
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig


class TestConfig:
    def test_default_profile_is_fast(self):
        assert get_config().profile == "fast"

    def test_paper_profile_scales_up(self):
        fast, paper = get_config("fast"), get_config("paper")
        assert paper.mart.n_iterations > fast.mart.n_iterations
        assert sum(n for _, n in paper.tpch_scales) > sum(n for _, n in fast.tpch_scales)
        assert paper.real2_queries == 887

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_config("huge")

    def test_config_is_frozen(self):
        config = get_config()
        with pytest.raises(Exception):
            config.profile = "other"  # type: ignore[misc]


class TestReporting:
    def test_result_table_render_contains_rows(self):
        table = ResultTable("Table X", "demo", ["Technique", "L1"])
        table.add_row(Technique="SCALING", L1=0.13)
        table.add_row(Technique="MART", L1=0.57)
        text = table.render()
        assert "SCALING" in text and "0.13" in text and "Table X" in text

    def test_result_series_render_and_summary(self):
        series = ResultSeries("Figure X", "demo", "x", "y")
        for i in range(20):
            series.add_point("obs", float(i), float(i * 2))
        series.summary["slope"] = 2.0
        text = series.render(max_points=5)
        assert "Figure X" in text and "slope" in text and "more" in text


class TestHarness:
    def test_evaluate_techniques_produces_rows(self, workload_split):
        train, test = workload_split
        results = evaluate_techniques(
            [LinearBaseline(), OptimizerBaseline()],
            train,
            {"TPC-H": test},
            resource="cpu",
            mode=FeatureMode.ESTIMATED,
            train_name="unit-test-train",
            cache=TechniqueCache(),
        )
        assert len(results) == 2
        for result in results:
            row = result.as_row()
            assert row["Test Set"] == "TPC-H"
            assert np.isfinite(row["L1"])
            buckets = row["R<=1.5"] + row["R in [1.5,2]"] + row["R>2"]
            assert buckets == pytest.approx(100.0, abs=0.5)

    def test_cache_reuses_fitted_techniques(self, workload_split):
        train, test = workload_split
        cache = TechniqueCache()
        technique = LinearBaseline()
        evaluate_techniques([technique], train, {"a": test}, "cpu",
                            FeatureMode.EXACT, "cached-train", cache)
        assert len(cache.entries) == 1
        fitted_before = next(iter(cache.entries.values()))
        evaluate_techniques([LinearBaseline()], train, {"b": test}, "cpu",
                            FeatureMode.EXACT, "cached-train", cache)
        assert len(cache.entries) == 1
        assert next(iter(cache.entries.values())) is fitted_before


class TestRegistry:
    def test_all_paper_tables_and_figures_registered(self):
        expected = {
            "figure_1", "figure_2", "figure_3", "figure_6", "figure_7", "figure_8",
            "table_4", "table_5", "table_6", "table_7", "table_8", "table_9",
            "table_10", "table_11", "table_12", "table_13",
            "prediction_cost", "model_memory",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table_99")


class TestCheapExperiments:
    """Experiments that need no workload execution run as part of the tests."""

    def test_figure_7_selects_nlogn_for_sort(self):
        result = run_experiment("figure_7")
        assert result.summary["best_function_is_nlogn"] == 1.0
        assert result.summary["l2_error:nlogn"] < result.summary["l2_error:quadratic"]
        assert result.summary["l2_error:nlogn"] < result.summary["l2_error:linear"]

    def test_figure_8_selects_outer_log_inner_for_nlj(self):
        result = run_experiment("figure_8")
        assert result.summary["best_function_is_outer_log_inner"] == 1.0

    def test_table_13_training_times_grow_with_examples(self):
        tiny = ExperimentConfig(
            profile="fast",
            tpch_scales=((0.05, 18),),
            small_scale_limit=0.05,
            tpch_skew=1.0,
            tpcds_queries=12,
            real1_queries=12,
            real2_queries=12,
            mart=MARTConfig(n_iterations=10),
            training_time_sizes=(1_000, 4_000),
            training_time_iterations=15,
        )
        result = run_experiment("table_13", tiny)
        times = [row["Training Time (s)"] for row in result.rows]
        sizes = [row["Training Examples"] for row in result.rows]
        assert sizes == [1_000, 4_000]
        assert times[1] > times[0] * 0.8  # larger sets are not cheaper
