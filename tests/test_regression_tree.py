"""Tests for the CART regression tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.regression_tree import RegressionTree, TreeNode
from repro.ml.regression_tree import _SplitCandidate


def test_split_candidate_requires_row_partitions():
    """A candidate can never be constructed without its left/right row sets."""
    with pytest.raises(TypeError):
        _SplitCandidate(  # type: ignore[call-arg]
            neg_gain=-1.0,
            tie_breaker=0,
            node=TreeNode(value=0.0),
            rows=np.arange(4),
        )


def step_data(n: int = 400, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, size=(n, 2))
    y = np.where(x[:, 0] > 5.0, 100.0, 10.0) + rng.normal(0, 0.5, n)
    return x, y


class TestFitting:
    def test_learns_a_step_function(self):
        x, y = step_data()
        tree = RegressionTree(max_leaves=4).fit(x, y)
        low = tree.predict(np.array([[2.0, 5.0]]))[0]
        high = tree.predict(np.array([[8.0, 5.0]]))[0]
        assert low == pytest.approx(10.0, abs=2.0)
        assert high == pytest.approx(100.0, abs=2.0)

    def test_max_leaves_respected(self):
        x, y = step_data()
        for max_leaves in (2, 5, 10):
            tree = RegressionTree(max_leaves=max_leaves).fit(x, y)
            assert tree.n_leaves <= max_leaves

    def test_min_samples_leaf_respected(self):
        x, y = step_data(60)
        tree = RegressionTree(max_leaves=10, min_samples_leaf=10).fit(x, y)
        assert all(leaf.n_samples >= 10 for leaf in tree.root.leaves())

    def test_constant_target_gives_single_leaf(self):
        x = np.random.default_rng(0).uniform(size=(50, 3))
        y = np.full(50, 7.0)
        tree = RegressionTree().fit(x, y)
        assert tree.n_leaves == 1
        assert tree.predict(x)[0] == pytest.approx(7.0)

    def test_single_row_dataset(self):
        tree = RegressionTree().fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        assert tree.predict(np.array([[9.0, 9.0]]))[0] == pytest.approx(5.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            RegressionTree(max_leaves=1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))


class TestPrediction:
    def test_vectorised_prediction_matches_scalar_routing(self):
        x, y = step_data()
        tree = RegressionTree(max_leaves=8).fit(x, y)
        batch = tree.predict(x[:20])
        single = np.array([tree._predict_one(row) for row in x[:20]])
        assert np.allclose(batch, single)

    def test_one_dimensional_input_accepted(self):
        x, y = step_data()
        tree = RegressionTree().fit(x, y)
        assert tree.predict(x[0]).shape == (1,)

    def test_depth_reported(self):
        x, y = step_data()
        tree = RegressionTree(max_leaves=6).fit(x, y)
        assert tree.depth >= 2


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_predictions_bounded_by_training_targets(seed):
    """Property: a regression tree can never predict outside the range of its
    training targets — the formal statement of 'trees do not extrapolate'."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 100, size=(80, 3))
    y = rng.uniform(-50, 50, size=80)
    tree = RegressionTree(max_leaves=10).fit(x, y)
    probe = rng.uniform(-1000, 1000, size=(40, 3))
    predictions = tree.predict(probe)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9
