"""Tests for the REGTREE stand-in (transform regression) and the error metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import ErrorSummary, l1_relative_error, ratio_error, ratio_error_buckets
from repro.ml.regression_tree import RegressionTree
from repro.ml.transform_regression import TransformConfig, TransformRegressor


class TestTransformRegressor:
    def test_fits_piecewise_linear_data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, size=(500, 2))
        y = np.where(x[:, 0] > 50, 5.0 * x[:, 0], 2.0 * x[:, 0]) + rng.normal(0, 1.0, 500)
        model = TransformRegressor(TransformConfig(n_iterations=40)).fit(x[:400], y[:400])
        pred = model.predict(x[400:])
        relative = np.abs(pred - y[400:]) / np.maximum(np.abs(y[400:]), 1e-9)
        assert float(np.median(relative)) < 0.15

    def test_extrapolates_better_than_a_plain_tree(self):
        """Leaf-level linear models extrapolate within their region; a plain
        tree cannot exceed its training maximum at all."""
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 100, size=(400, 1))
        y = 4.0 * x[:, 0]
        transform = TransformRegressor(TransformConfig(n_iterations=30)).fit(x, y)
        tree = RegressionTree(max_leaves=10).fit(x, y)
        probe = np.array([[200.0]])
        truth = 800.0
        assert abs(transform.predict(probe)[0] - truth) < abs(tree.predict(probe)[0] - truth)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformRegressor().fit(np.empty((0, 1)), np.empty(0))
        with pytest.raises(RuntimeError):
            TransformRegressor().predict(np.zeros((1, 1)))

    def test_constant_target(self):
        x = np.random.default_rng(2).uniform(size=(40, 2))
        model = TransformRegressor().fit(x, np.full(40, 9.0))
        assert model.predict(x)[0] == pytest.approx(9.0)


class TestMetrics:
    def test_l1_error_perfect_predictions(self):
        values = np.array([1.0, 5.0, 10.0])
        assert l1_relative_error(values, values) == 0.0

    def test_l1_error_normalises_by_estimate(self):
        estimates = np.array([10.0])
        actuals = np.array([20.0])
        assert l1_relative_error(estimates, actuals) == pytest.approx(1.0)

    def test_ratio_error_symmetric(self):
        assert ratio_error(np.array([10.0]), np.array([20.0]))[0] == pytest.approx(2.0)
        assert ratio_error(np.array([20.0]), np.array([10.0]))[0] == pytest.approx(2.0)

    def test_buckets_sum_to_one(self):
        rng = np.random.default_rng(3)
        estimates = rng.uniform(1, 100, 50)
        actuals = rng.uniform(1, 100, 50)
        buckets = ratio_error_buckets(estimates, actuals)
        assert sum(buckets) == pytest.approx(1.0)

    def test_bucket_assignment(self):
        estimates = np.array([10.0, 10.0, 10.0])
        actuals = np.array([10.0, 17.0, 30.0])  # ratios 1.0, 1.7, 3.0
        small, medium, large = ratio_error_buckets(estimates, actuals)
        assert small == pytest.approx(1 / 3)
        assert medium == pytest.approx(1 / 3)
        assert large == pytest.approx(1 / 3)

    def test_empty_inputs(self):
        assert l1_relative_error(np.array([]), np.array([])) == 0.0
        assert ratio_error_buckets(np.array([]), np.array([])) == (1.0, 0.0, 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            l1_relative_error(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            ratio_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_error_summary_row(self):
        summary = ErrorSummary.from_predictions(np.array([1.0, 2.0]), np.array([1.0, 5.0]))
        row = summary.as_row()
        assert set(row) == {"L1", "R<=1.5", "R in [1.5,2]", "R>2"}
        assert summary.n_queries == 2


@settings(max_examples=50, deadline=None)
@given(
    estimate=st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
    actual=st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
)
def test_ratio_error_is_at_least_one(estimate, actual):
    assert ratio_error(np.array([estimate]), np.array([actual]))[0] >= 1.0 - 1e-12
