"""Tests for query specifications and their validation."""

from __future__ import annotations

import pytest

from repro.query.spec import AggregateSpec, JoinEdge, OrderBySpec, QuerySpec, TableRef


def two_table_query() -> QuerySpec:
    return QuerySpec(
        name="q",
        tables=[TableRef("orders"), TableRef("lineitem")],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )


class TestJoinEdge:
    def test_touches_and_other(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.touches("a") and edge.touches("b") and not edge.touches("c")
        assert edge.other("a") == "b"
        assert edge.column_for("b") == "y"
        with pytest.raises(ValueError):
            edge.other("c")


class TestAggregateSpec:
    def test_scalar_detection(self):
        assert AggregateSpec(group_by={}).is_scalar
        assert not AggregateSpec(group_by={"t": ["a"]}).is_scalar

    def test_grouping_columns_flatten(self):
        agg = AggregateSpec(group_by={"t": ["a", "b"], "s": ["c"]})
        assert set(agg.grouping_columns) == {("t", "a"), ("t", "b"), ("s", "c")}


class TestQuerySpecValidation:
    def test_valid_query_passes(self):
        two_table_query().validate()

    def test_missing_tables_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", tables=[]).validate()

    def test_duplicate_aliases_rejected(self):
        spec = QuerySpec(name="q", tables=[TableRef("orders"), TableRef("orders")])
        with pytest.raises(ValueError):
            spec.validate()

    def test_self_join_with_aliases_allowed(self):
        spec = QuerySpec(
            name="q",
            tables=[TableRef("orders", alias="o1"), TableRef("orders", alias="o2")],
            joins=[JoinEdge("o1", "o_orderkey", "o2", "o_orderkey")],
        )
        spec.validate()

    def test_unknown_join_alias_rejected(self):
        spec = QuerySpec(
            name="q",
            tables=[TableRef("orders"), TableRef("lineitem")],
            joins=[JoinEdge("orders", "o_orderkey", "missing", "x")],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_disconnected_join_graph_rejected(self):
        spec = QuerySpec(
            name="q",
            tables=[TableRef("orders"), TableRef("lineitem"), TableRef("part")],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_multi_table_without_joins_rejected(self):
        spec = QuerySpec(name="q", tables=[TableRef("orders"), TableRef("lineitem")])
        with pytest.raises(ValueError):
            spec.validate()

    def test_unknown_group_by_alias_rejected(self):
        spec = two_table_query()
        spec.aggregate = AggregateSpec(group_by={"missing": ["x"]})
        with pytest.raises(ValueError):
            spec.validate()

    def test_unknown_order_by_alias_rejected(self):
        spec = two_table_query()
        spec.order_by = OrderBySpec([("missing", "x")])
        with pytest.raises(ValueError):
            spec.validate()

    def test_non_positive_limit_rejected(self):
        spec = two_table_query()
        spec.limit = 0
        with pytest.raises(ValueError):
            spec.validate()

    def test_lookup_helpers(self):
        spec = two_table_query()
        assert spec.table_ref("orders").table == "orders"
        with pytest.raises(KeyError):
            spec.table_ref("missing")
        assert spec.n_joins == 1
        assert len(spec.joins_touching("lineitem")) == 1
